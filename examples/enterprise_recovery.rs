//! Enterprise disaster recovery — the paper's second motivating scenario
//! (§1).
//!
//! A data centre backs up application groups to tape nightly. After a
//! failure, the applications must be restored in priority order: losing a
//! trading platform costs more per minute than losing a build farm. Each
//! application group restores as a unit (one request), and the restore
//! priority plays the role of access probability — "an access probability
//! can represent any manually assigned weight or priority" (§3).
//!
//! The example measures the **time-to-recover the top-priority tier** and
//! the overall restore bandwidth under all three placement schemes.
//!
//! ```text
//! cargo run --release -p tapesim-experiments --example enterprise_recovery
//! ```

use tapesim_model::specs::paper_table1;
use tapesim_model::{Bytes, ObjectId};
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement,
    PlacementPolicy,
};
use tapesim_sim::Simulator;
use tapesim_workload::{ObjectRecord, Request, Workload};

struct AppGroup {
    /// Shown in the scenario description (and handy when debugging).
    #[allow(dead_code)]
    name: &'static str,
    /// Restore priority weight (higher = restore sooner/more often).
    priority: f64,
    /// Database/file-set sizes in GB.
    files: Vec<u64>,
}

fn groups() -> Vec<AppGroup> {
    let spread = |base: u64, n: usize| -> Vec<u64> {
        (0..n)
            .map(|i| base + (i as u64 * 7) % base.max(2))
            .collect()
    };
    // ~80 restore units of a couple hundred GB each (one per application
    // service), ≈19 TB total — far more than the 9.1 TB of startup-mounted
    // capacity, so placement (not raw drive count) decides recovery time.
    let mut gs = vec![
        AppGroup {
            name: "trading-core",
            priority: 10.0,
            files: spread(8, 30),
        },
        AppGroup {
            name: "payments",
            priority: 8.0,
            files: spread(7, 28),
        },
        AppGroup {
            name: "crm",
            priority: 4.0,
            files: spread(6, 32),
        },
        AppGroup {
            name: "data-warehouse",
            priority: 2.0,
            files: spread(10, 30),
        },
        AppGroup {
            name: "mail-archive",
            priority: 1.5,
            files: spread(5, 40),
        },
        AppGroup {
            name: "build-farm",
            priority: 1.0,
            files: spread(4, 36),
        },
        AppGroup {
            name: "log-retention",
            priority: 0.8,
            files: spread(8, 30),
        },
        AppGroup {
            name: "vm-images",
            priority: 0.8,
            files: spread(12, 24),
        },
    ];
    // Long tail of departmental services with decaying priority.
    for i in 0..72u32 {
        gs.push(AppGroup {
            name: [
                "dept-service-a",
                "dept-service-b",
                "dept-service-c",
                "dept-service-d",
            ][(i % 4) as usize],
            priority: 0.6 / (1.0 + i as f64 * 0.1),
            files: spread(5 + (i as u64 % 6), 24 + (i as usize % 12)),
        });
    }
    gs
}

fn build_workload(groups: &[AppGroup]) -> Workload {
    let mut objects = Vec::new();
    let mut requests = Vec::new();
    let total_w: f64 = groups.iter().map(|g| g.priority).sum();
    let mut next = 0u32;
    for (rank, g) in groups.iter().enumerate() {
        let mut members = Vec::new();
        for &gb in &g.files {
            objects.push(ObjectRecord {
                id: ObjectId(next),
                size: Bytes::gb(gb),
            });
            members.push(ObjectId(next));
            next += 1;
        }
        requests.push(Request {
            rank: rank as u32,
            probability: g.priority / total_w,
            objects: members,
        });
    }
    Workload::new(objects, requests)
}

fn main() {
    let system = paper_table1();
    let gs = groups();
    let workload = build_workload(&gs);
    println!(
        "{} application groups, {} backup files, {:.1} TB",
        gs.len(),
        workload.objects().len(),
        workload.total_bytes().as_gb() / 1000.0
    );
    println!();
    println!(
        "{:<28} {:>18} {:>18} {:>14}",
        "scheme", "trading RTO (s)", "avg restore (s)", "bw (MB/s)"
    );

    let schemes: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
        (
            "parallel batch (paper)",
            Box::new(ParallelBatchPlacement::with_m(4)),
        ),
        (
            "object probability [11]",
            Box::new(ObjectProbabilityPlacement::default()),
        ),
        (
            "cluster probability [20]",
            Box::new(ClusterProbabilityPlacement::default()),
        ),
    ];
    for (name, scheme) in schemes {
        let placement = scheme.place(&workload, &system).expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, 4);
        // Recovery-time objective of the top tier: serve it first from the
        // startup state — the disaster-recovery case.
        let rto = sim.serve(&workload.requests()[0].objects).response;
        sim.reset();
        let run = sim.run_sampled(&workload, 100, 3);
        println!(
            "{:<28} {:>18.1} {:>18.1} {:>14.1}",
            name,
            rto,
            run.avg_response(),
            run.avg_bandwidth_mbs()
        );
    }
    println!();
    println!(
        "Priority-as-probability steers the hottest application groups onto\n\
         the always-mounted batch, so the highest business tier restores\n\
         without a single tape exchange."
    );
}
