//! Capacity planning: how many switch drives and libraries does a target
//! restore SLA need?
//!
//! The paper's Figure 5 shows `m` (switch drives per library) has an
//! interior optimum, and Figure 8 shows bandwidth scales with libraries
//! for parallelism-aware placement. An operator sizing a system works
//! those two knobs against a service-level objective; this example runs
//! the sweep for a given workload and prints the cheapest configuration
//! meeting the SLA.
//!
//! ```text
//! cargo run --release -p tapesim-experiments --example capacity_planning
//! ```

use tapesim_model::specs::{lto3_drive, lto3_tape, stk_l80_library};
use tapesim_model::SystemConfig;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sim::Simulator;
use tapesim_workload::WorkloadSpec;

fn main() {
    // SLA: average restore must finish within 20 minutes.
    const SLA_SECONDS: f64 = 1200.0;

    let workload = WorkloadSpec {
        objects: 4_000,
        ..WorkloadSpec::default()
    }
    .generate();
    println!(
        "workload: {:.1} TB across {} objects; SLA: avg restore ≤ {SLA_SECONDS} s",
        workload.total_bytes().as_gb() / 1000.0,
        workload.objects().len()
    );
    println!();
    println!(
        "{:>10} {:>4} {:>16} {:>16} {:>8}",
        "libraries", "m", "avg restore (s)", "bw (MB/s)", "SLA"
    );

    let mut cheapest: Option<(u16, u8, f64)> = None;
    for libraries in 1..=4u16 {
        let mut lib = stk_l80_library(lto3_drive(), lto3_tape());
        // Enough cells for the workload even in a single library.
        lib.tapes = 160;
        let system = SystemConfig::new(libraries, lib).expect("config");
        for m in [2u8, 4, 6] {
            let placement = match ParallelBatchPlacement::with_m(m).place(&workload, &system) {
                Ok(p) => p,
                Err(e) => {
                    println!("{libraries:>10} {m:>4}   placement infeasible: {e}");
                    continue;
                }
            };
            let mut sim = Simulator::with_natural_policy(placement, m);
            let run = sim.run_sampled(&workload, 60, 17);
            let ok = run.avg_response() <= SLA_SECONDS;
            println!(
                "{:>10} {:>4} {:>16.1} {:>16.1} {:>8}",
                libraries,
                m,
                run.avg_response(),
                run.avg_bandwidth_mbs(),
                if ok { "meets" } else { "-" }
            );
            if ok && cheapest.is_none() {
                cheapest = Some((libraries, m, run.avg_response()));
            }
        }
    }
    println!();
    match cheapest {
        Some((n, m, resp)) => println!(
            "cheapest configuration meeting the SLA: {n} libraries with m = {m} \
             (avg restore {resp:.0} s)"
        ),
        None => println!("no swept configuration meets the SLA — add libraries or drives"),
    }
}
