//! Quickstart: place a workload on a parallel tape storage system and
//! measure one restore request.
//!
//! ```text
//! cargo run --release -p tapesim-experiments --example quickstart
//! ```

use tapesim_model::specs::paper_table1;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sim::Simulator;
use tapesim_workload::WorkloadSpec;

fn main() {
    // 1. A parallel tape storage system: 3 StorageTek L80 libraries with
    //    IBM LTO-3 drives (the paper's Table 1 hardware).
    let system = paper_table1();
    println!(
        "system: {} libraries × {} drives, {} total capacity",
        system.libraries,
        system.library.drives,
        system.total_capacity()
    );

    // 2. A synthetic workload: objects with power-law sizes, pre-defined
    //    requests with Zipf popularity (the paper's §6 settings, shrunk
    //    8× so this example runs in a couple of seconds).
    let workload = WorkloadSpec {
        objects: 4_000,
        ..WorkloadSpec::default()
    }
    .generate();
    println!(
        "workload: {} objects, {} requests, avg request {:.0} GB",
        workload.objects().len(),
        workload.requests().len(),
        workload.avg_request_bytes().as_gb()
    );

    // 3. Place every object with the paper's parallel batch placement
    //    (m = 4 switch drives per library).
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&workload, &system)
        .expect("placement");
    println!(
        "placement: {} tapes in use, {} pinned",
        placement.n_used_tapes(),
        placement.pinned_tapes().len()
    );

    // 4. Serve the most popular request and inspect the response-time
    //    decomposition.
    let mut sim = Simulator::with_natural_policy(placement, 4);
    let request = &workload.requests()[0];
    let metrics = sim.serve(&request.objects);
    println!(
        "request 0 ({} objects, {:.0} GB): response {:.1} s = switch {:.1} + seek {:.1} + transfer {:.1}",
        request.objects.len(),
        metrics.bytes.as_gb(),
        metrics.response,
        metrics.switch,
        metrics.seek,
        metrics.transfer,
    );
    println!(
        "effective bandwidth: {:.1} MB/s across {} tapes ({} exchanges)",
        metrics.bandwidth_mbs(),
        metrics.n_tapes,
        metrics.n_switches
    );

    // 5. Average over a popularity-sampled request stream (the paper's
    //    measurement loop).
    let run = sim.run_sampled(&workload, 100, 42);
    println!(
        "100 sampled requests: avg response {:.1} s, avg bandwidth {:.1} MB/s",
        run.avg_response(),
        run.avg_bandwidth_mbs()
    );
}
