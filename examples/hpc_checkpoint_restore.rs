//! HPC checkpoint restore — the paper's first motivating scenario (§1).
//!
//! A computing cluster runs long simulation campaigns. When a user's time
//! slot ends, the campaign's working set (checkpoints plus input decks) is
//! migrated to tape; when the slot comes around again, the whole set must
//! be restored before work can resume. Each campaign's files are therefore
//! retrieved *together* — exactly the co-access structure parallel batch
//! placement exploits.
//!
//! This example hand-builds such a workload (one request per campaign,
//! recent campaigns more likely to return), places it with all three
//! schemes, and compares how long a user waits for their campaign to come
//! back.
//!
//! ```text
//! cargo run --release -p tapesim-experiments --example hpc_checkpoint_restore
//! ```

use tapesim_model::specs::paper_table1;
use tapesim_model::{Bytes, ObjectId};
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement,
    PlacementPolicy,
};
use tapesim_sim::Simulator;
use tapesim_workload::{ObjectRecord, Request, Workload};

/// One campaign: a handful of large checkpoints plus many small inputs.
struct Campaign {
    checkpoints: u32,
    checkpoint_gb: u64,
    inputs: u32,
    input_gb: u64,
}

fn build_workload(campaigns: &[Campaign]) -> Workload {
    let mut objects = Vec::new();
    let mut requests = Vec::new();
    let mut next_id = 0u32;
    // Recency-weighted return probability: campaign i (0 = most recent).
    let weights: Vec<f64> = (0..campaigns.len())
        .map(|i| 1.0 / (i as f64 + 1.0))
        .collect();
    let total_w: f64 = weights.iter().sum();
    for (i, c) in campaigns.iter().enumerate() {
        let mut members = Vec::new();
        for _ in 0..c.checkpoints {
            objects.push(ObjectRecord {
                id: ObjectId(next_id),
                size: Bytes::gb(c.checkpoint_gb),
            });
            members.push(ObjectId(next_id));
            next_id += 1;
        }
        for _ in 0..c.inputs {
            objects.push(ObjectRecord {
                id: ObjectId(next_id),
                size: Bytes::gb(c.input_gb),
            });
            members.push(ObjectId(next_id));
            next_id += 1;
        }
        requests.push(Request {
            rank: i as u32,
            probability: weights[i] / total_w,
            objects: members,
        });
    }
    Workload::new(objects, requests)
}

fn main() {
    let system = paper_table1();
    // 40 campaigns; each ~25 checkpoints × 8 GB + 60 inputs × 1 GB ≈ 260 GB.
    let campaigns: Vec<Campaign> = (0..40)
        .map(|i| Campaign {
            checkpoints: 20 + (i % 10),
            checkpoint_gb: 8,
            inputs: 50 + (i % 20),
            input_gb: 1,
        })
        .collect();
    let workload = build_workload(&campaigns);
    println!(
        "{} campaigns, {} files, {:.1} TB total; most recent campaign {:.0} GB",
        campaigns.len(),
        workload.objects().len(),
        workload.total_bytes().as_gb() / 1000.0,
        workload.request_bytes(&workload.requests()[0]).as_gb()
    );
    println!();
    println!(
        "{:<28} {:>14} {:>16} {:>12}",
        "scheme", "restore (s)", "bandwidth (MB/s)", "exchanges"
    );

    let schemes: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
        (
            "parallel batch (paper)",
            Box::new(ParallelBatchPlacement::with_m(4)),
        ),
        (
            "object probability [11]",
            Box::new(ObjectProbabilityPlacement::default()),
        ),
        (
            "cluster probability [20]",
            Box::new(ClusterProbabilityPlacement::default()),
        ),
    ];
    for (name, scheme) in schemes {
        let placement = scheme.place(&workload, &system).expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, 4);
        let run = sim.run_sampled(&workload, 120, 7);
        println!(
            "{:<28} {:>14.1} {:>16.1} {:>12.1}",
            name,
            run.avg_response(),
            run.avg_bandwidth_mbs(),
            run.avg_switches()
        );
    }
    println!();
    println!(
        "A returning user's wait is the restore response time: co-locating a\n\
         campaign within one tape batch and striping it across libraries is\n\
         what cuts the wait versus the two prior schemes."
    );
}
