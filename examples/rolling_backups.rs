//! Rolling backups — the paper's §7 future work in action.
//!
//! A tape archive lives for years: every backup epoch new data arrives and
//! restore patterns drift, but data already written to tape stays put.
//! This example runs a six-epoch campaign with the incremental placer and
//! prints, per epoch, how far the no-migration system drifts from a full
//! re-placement oracle — the quantified cost of the paper's open problem.
//!
//! ```text
//! cargo run --release -p tapesim-experiments --example rolling_backups
//! ```

use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{
    IncrementalPlacer, ParallelBatchParams, ParallelBatchPlacement, PlacementPolicy,
};
use tapesim_sim::Simulator;
use tapesim_workload::{EvolutionSpec, ObjectSizeSpec, RequestSpec, WorkloadSpec};

fn main() {
    let system = paper_table1();
    let params = ParallelBatchParams::default();
    let sizes = ObjectSizeSpec::default().calibrated(Bytes::gb(5));
    let requests = RequestSpec {
        count: 60,
        min_objects: 20,
        max_objects: 30,
        count_shape: 1.0,
        alpha: 0.3,
    };
    let mut workload = WorkloadSpec {
        objects: 3_000,
        sizes,
        requests,
        seed: 2_026,
    }
    .generate();

    let mut placer = IncrementalPlacer::bootstrap(&workload, &system, params).expect("bootstrap");
    println!(
        "{:>5} {:>9} {:>12} {:>14} {:>14} {:>7}",
        "epoch", "objects", "data (TB)", "incr (MB/s)", "oracle (MB/s)", "gap"
    );

    for epoch in 0..6u64 {
        if epoch > 0 {
            workload = EvolutionSpec {
                growth: 0.05,
                churn: 0.25,
                new_sizes: sizes,
                new_requests: requests,
                seed: 9_000 + epoch,
            }
            .advance(&workload);
        }
        let incremental = placer.advance(&workload).expect("incremental placement");
        let bw_incr = Simulator::with_natural_policy(incremental, params.m)
            .run_sampled(&workload, 60, epoch)
            .avg_bandwidth_mbs();
        let oracle_placement = ParallelBatchPlacement::new(params)
            .place(&workload, &system)
            .expect("oracle placement");
        let bw_oracle = Simulator::with_natural_policy(oracle_placement, params.m)
            .run_sampled(&workload, 60, epoch)
            .avg_bandwidth_mbs();
        println!(
            "{epoch:>5} {:>9} {:>12.1} {:>14.1} {:>14.1} {:>6.0}%",
            workload.objects().len(),
            workload.total_bytes().as_gb() / 1000.0,
            bw_incr,
            bw_oracle,
            (bw_oracle - bw_incr) / bw_oracle * 100.0
        );
    }
    println!(
        "\nThe widening gap is §7's open problem: without migrating data that\n\
         is already on tape, the pinned batch keeps serving yesterday's\n\
         favourites while today's hot data sits in late switch batches."
    );
}
