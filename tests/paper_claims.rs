//! Qualitative reproduction of the paper's evaluation claims on a
//! moderate-size instance (the full-scale numbers live in EXPERIMENTS.md;
//! these tests pin the *shapes* so regressions are caught by `cargo test`).

use tapesim_experiments::figures::quick_settings;
use tapesim_experiments::{evaluate, ExperimentSettings, Scheme};

fn settings() -> ExperimentSettings {
    let mut s = quick_settings();
    s.samples = 60;
    s
}

#[test]
fn headline_claim_parallel_batch_wins() {
    // §6: "our scheme consistently provides the best performance out of
    // the three schemes" (at the default α = 0.3 operating point).
    let s = settings();
    let system = s.system();
    let w = s.generate_workload();
    let bw: Vec<f64> = Scheme::ALL
        .iter()
        .map(|&sch| evaluate(&s, &system, &w, sch).avg_bandwidth_mbs())
        .collect();
    assert!(
        bw[0] > bw[1] && bw[0] > bw[2],
        "pbp {:.1} vs opp {:.1} / cpp {:.1}",
        bw[0],
        bw[1],
        bw[2]
    );
}

#[test]
fn figure9_component_profile() {
    // OPP: switch-dominated, best transfer. CPP: transfer-dominated.
    // Seek: minor for everyone.
    let s = settings();
    let system = s.system();
    let w = s.generate_workload();
    let runs: Vec<_> = Scheme::ALL
        .iter()
        .map(|&sch| evaluate(&s, &system, &w, sch))
        .collect();
    let (pbp, opp, cpp) = (&runs[0], &runs[1], &runs[2]);

    assert!(
        opp.avg_switch() > pbp.avg_switch() && opp.avg_switch() > cpp.avg_switch(),
        "OPP switch time must be the worst"
    );
    assert!(
        opp.avg_switch() > opp.avg_transfer(),
        "OPP switch must dominate its own transfer"
    );
    assert!(
        opp.avg_transfer() < pbp.avg_transfer() && opp.avg_transfer() < cpp.avg_transfer(),
        "OPP transfer time must be the best"
    );
    assert!(
        cpp.avg_transfer() > cpp.avg_switch() + cpp.avg_seek(),
        "CPP must be transfer-dominated"
    );
    for r in &runs {
        assert!(
            r.avg_seek() < 0.3 * r.avg_response(),
            "seek must stay minor"
        );
    }
}

#[test]
fn figure5_m_has_an_interior_optimum() {
    let s = settings();
    let system = s.system();
    let w = s.generate_workload();
    let bw: Vec<f64> = (1..8u8)
        .map(|m| {
            let s = s.with_m(m);
            evaluate(&s, &system, &w, Scheme::ParallelBatch).avg_bandwidth_mbs()
        })
        .collect();
    // Some m >= 2 clearly beats m = 1 (single switch drive serialises
    // misses), and the optimum is interior: never the extreme m = d-1,
    // which exhausts the always-mounted capacity.
    let (best, best_val) = bw
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, &v)| (i, v))
        .unwrap();
    assert!(
        best >= 1 && best_val > bw[0] * 1.05,
        "no m clearly beats m=1: {bw:?}"
    );
    assert!(best < 6, "optimum must be interior: {bw:?}");
    assert!(bw[6] < best_val, "no decline at the extreme m: {bw:?}");
}

#[test]
fn figure6_alpha_trends() {
    // Skew helps PBP; CPP stays flat-ish.
    let s = settings();
    let system = s.system();
    let eval = |alpha: f64, sch: Scheme| {
        let s = s.with_alpha(alpha);
        let w = s.generate_workload();
        evaluate(&s, &system, &w, sch).avg_bandwidth_mbs()
    };
    let pbp_lo = eval(0.0, Scheme::ParallelBatch);
    let pbp_hi = eval(1.0, Scheme::ParallelBatch);
    assert!(
        pbp_hi > pbp_lo,
        "PBP must gain from skew: {pbp_lo} → {pbp_hi}"
    );

    let cpp_lo = eval(0.0, Scheme::ClusterProbability);
    let cpp_hi = eval(1.0, Scheme::ClusterProbability);
    let cpp_gain = cpp_hi / cpp_lo;
    let pbp_gain = pbp_hi / pbp_lo;
    assert!(
        pbp_gain > cpp_gain,
        "skew must favour PBP ({pbp_gain:.2}×) over CPP ({cpp_gain:.2}×)"
    );
}

#[test]
fn figure8_library_scaling() {
    let base = settings().with_tapes_per_library(240);
    let eval = |n: u16, sch: Scheme| {
        let s = base.with_libraries(n);
        let system = s.system();
        let w = s.generate_workload();
        evaluate(&s, &system, &w, sch).avg_bandwidth_mbs()
    };
    let pbp1 = eval(1, Scheme::ParallelBatch);
    let pbp4 = eval(4, Scheme::ParallelBatch);
    assert!(
        pbp4 > pbp1 * 1.4,
        "PBP must scale with libraries: {pbp1} → {pbp4}"
    );

    let cpp1 = eval(1, Scheme::ClusterProbability);
    let cpp4 = eval(4, Scheme::ClusterProbability);
    assert!(
        (cpp4 / cpp1) < (pbp4 / pbp1),
        "CPP scaling ({:.2}×) must trail PBP scaling ({:.2}×)",
        cpp4 / cpp1,
        pbp4 / pbp1
    );
}

#[test]
fn extreme_all_mounted_case() {
    // §6: when everything fits the startup-mounted tapes, OPP has the
    // lowest response (pure seek optimisation) and no scheme exchanges a
    // single tape.
    let mut s = settings();
    let system = s.system();
    // Shrink objects until the n×d startup-mounted tapes hold everything.
    let nd_bytes = system.library.tape.capacity.get() * system.total_drives() as u64;
    let per_request = (nd_bytes as f64 * 0.85 / s.workload.objects as f64
        * ((s.workload.requests.min_objects + s.workload.requests.max_objects) as f64 / 2.0))
        as u64;
    s.workload = s
        .workload
        .with_target_request_size(tapesim_model::Bytes(per_request));
    let w = s.generate_workload();
    let runs: Vec<_> = Scheme::ALL
        .iter()
        .map(|&sch| evaluate(&s, &system, &w, sch))
        .collect();
    for (scheme, r) in Scheme::ALL.iter().zip(&runs) {
        assert!(
            r.avg_switches() < 0.5,
            "{}: {} exchanges in the all-mounted case",
            scheme.label(),
            r.avg_switches()
        );
    }
    let (pbp, opp, cpp) = (&runs[0], &runs[1], &runs[2]);
    assert!(
        opp.avg_response() <= pbp.avg_response() && opp.avg_response() <= cpp.avg_response(),
        "OPP must have the lowest all-mounted response: opp {:.1} pbp {:.1} cpp {:.1}",
        opp.avg_response(),
        pbp.avg_response(),
        cpp.avg_response()
    );
    // Transfer share contrast (paper: ≈62% CPP vs ≈19% PBP).
    let share = |r: &tapesim_sim::RunMetrics| r.avg_transfer() / r.avg_response();
    assert!(
        share(cpp) > 1.3 * share(pbp),
        "CPP transfer share {:.2} must dwarf PBP {:.2}",
        share(cpp),
        share(pbp)
    );
}
