//! Cross-crate integration tests: workload generation → clustering →
//! placement → simulation, for every scheme.

use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement,
    PlacementPolicy, TapeRole,
};
use tapesim_sim::{Simulator, SwitchPolicy};
use tapesim_workload::{ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

fn workload() -> Workload {
    // The *requested* working set (≈13 TB of distinct requested objects)
    // must exceed the 9.1 TB of startup-mounted tape capacity, so that
    // tape switching — the behaviour under test — actually occurs.
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(6)),
        requests: RequestSpec {
            count: 80,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 20_260_708,
    }
    .generate()
}

fn schemes() -> Vec<(&'static str, Box<dyn PlacementPolicy>)> {
    vec![
        (
            "parallel_batch",
            Box::new(ParallelBatchPlacement::with_m(4)),
        ),
        (
            "object_prob",
            Box::new(ObjectProbabilityPlacement::default()),
        ),
        (
            "cluster_prob",
            Box::new(ClusterProbabilityPlacement::default()),
        ),
    ]
}

#[test]
fn every_scheme_places_and_simulates() {
    let system = paper_table1();
    let w = workload();
    for (name, scheme) in schemes() {
        let placement = scheme.place(&w, &system).unwrap();
        placement.verify_against(&w).unwrap();
        assert!(placement.n_used_tapes() > 0, "{name}");

        let mut sim = Simulator::with_natural_policy(placement, 4);
        let run = sim.run_sampled(&w, 50, 1);
        assert_eq!(run.count(), 50, "{name}");

        // Physical invariants.
        let peak = system.total_drives() as f64 * system.library.drive.native_rate.get() / 1e6;
        assert!(
            run.avg_bandwidth_mbs() > 0.0 && run.avg_bandwidth_mbs() <= peak,
            "{name}: bandwidth {} outside (0, {peak}]",
            run.avg_bandwidth_mbs()
        );
        assert!(
            (run.avg_switch() + run.avg_seek() + run.avg_transfer() - run.avg_response()).abs()
                < 1e-6,
            "{name}: decomposition broken"
        );
    }
}

#[test]
fn response_never_beats_the_physics() {
    // Response of any request is at least (its bytes / aggregate drive
    // rate) and at least the largest single extent's transfer time.
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    let mut sim = Simulator::with_natural_policy(placement, 4);
    let rate = system.library.drive.native_rate.get();
    for r in w.requests().iter().take(20) {
        let m = sim.serve(&r.objects);
        let aggregate_floor = m.bytes.get() as f64 / (rate * system.total_drives() as f64);
        assert!(
            m.response >= aggregate_floor - 1e-9,
            "response {} under the aggregate floor {aggregate_floor}",
            m.response
        );
        let biggest = r
            .objects
            .iter()
            .map(|&o| w.size_of(o).get())
            .max()
            .unwrap_or(0) as f64
            / rate;
        assert!(m.response >= biggest - 1e-9);
    }
}

#[test]
fn pinned_tapes_stay_mounted_forever() {
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    let pinned = placement.pinned_tapes();
    assert!(!pinned.is_empty());
    let mut sim = Simulator::with_natural_policy(placement, 4);
    assert_eq!(sim.policy(), SwitchPolicy::Batch { m: 4 });
    sim.run_sampled(&w, 80, 9);
    for t in pinned {
        assert!(
            sim.state().drive_of(t).is_some(),
            "pinned tape {t} was unmounted"
        );
    }
}

#[test]
fn switch_drives_actually_rotate() {
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    let initial_switch_tapes = placement.switch_batch(1);
    let mut sim = Simulator::with_natural_policy(placement, 4);
    sim.run_sampled(&w, 80, 9);
    // At least one of the startup switch tapes has been swapped out by now
    // (the workload spans several batches).
    let still_mounted = initial_switch_tapes
        .iter()
        .filter(|&&t| sim.state().drive_of(t).is_some())
        .count();
    assert!(
        still_mounted < initial_switch_tapes.len(),
        "no switch tape ever rotated"
    );
}

#[test]
fn mount_state_warms_up_repeat_requests() {
    // Serving the same request twice in a row: the second service finds
    // its tapes mounted, so it performs zero exchanges. Its *response* may
    // exceed the cold one by up to a full tape pass (98 s): the cold pass
    // left each head at its last object's end, and the warm pass pays the
    // seek back — while the cold mounts were partly off the critical path.
    let system = paper_table1();
    let w = workload();
    let full_pass = system.library.drive.full_pass_time;
    for (name, scheme) in schemes() {
        let placement = scheme.place(&w, &system).unwrap();
        let mut sim = Simulator::with_natural_policy(placement, 4);
        // Pick a mid-popularity request so its tapes are not pre-mounted.
        let r = &w.requests()[20];
        let cold = sim.serve(&r.objects);
        let warm = sim.serve(&r.objects);
        // Zero warm exchanges only holds when the request fits the
        // library's drives; scatter-happy schemes (OPP) touch more tapes
        // than drives, so the honest claim is monotonicity.
        assert!(
            warm.n_switches <= cold.n_switches,
            "{name}: warm exchanged more ({} > {})",
            warm.n_switches,
            cold.n_switches
        );
        assert!(
            warm.response <= cold.response + full_pass + 1e-9,
            "{name}: warm {} way over cold {}",
            warm.response,
            cold.response
        );
    }
}

#[test]
fn roles_partition_used_tapes() {
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    for t in placement.used_tapes() {
        assert_ne!(
            placement.role(t),
            TapeRole::Unused,
            "used tape {t} has no role"
        );
    }
    // Pinned + all switch batches = used tapes.
    let mut counted = placement.pinned_tapes().len();
    for b in 1..=placement.max_switch_batch() {
        counted += placement.switch_batch(b).len();
    }
    assert_eq!(counted, placement.n_used_tapes());
}

#[test]
fn simulation_is_reproducible_across_fresh_builds() {
    let system = paper_table1();
    let w = workload();
    let run = |seed: u64| {
        let placement = ParallelBatchPlacement::with_m(4)
            .place(&w, &system)
            .unwrap();
        Simulator::with_natural_policy(placement, 4)
            .run_sampled(&w, 40, seed)
            .avg_response()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6), "different sample streams must differ");
}
