//! Integration tests for the extension features: striping, incremental
//! placement, request queueing and multi-arm robots — each through the
//! whole pipeline against paper-shaped (shrunken) workloads.

use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{
    IncrementalPlacer, ObjectProbabilityPlacement, ParallelBatchParams, ParallelBatchPlacement,
    PlacementPolicy,
};
use tapesim_sim::queue::{run_queued, ArrivalSpec};
use tapesim_sim::Simulator;
use tapesim_workload::{
    stripe_workload, EvolutionSpec, ObjectSizeSpec, RequestSpec, StripeSpec, Workload, WorkloadSpec,
};

fn workload() -> Workload {
    WorkloadSpec {
        objects: 3_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(5)),
        requests: RequestSpec {
            count: 60,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 77,
    }
    .generate()
}

#[test]
fn striped_workload_places_simulates_and_conserves_bytes() {
    let system = paper_table1();
    let original = workload();
    let (striped, map) = stripe_workload(
        &original,
        StripeSpec {
            width: 4,
            min_object: Bytes::gb(1),
        },
    );
    assert_eq!(striped.total_bytes(), original.total_bytes());
    assert_eq!(map.n_originals(), original.objects().len());

    let placement = ParallelBatchPlacement::with_m(4)
        .place(&striped, &system)
        .unwrap();
    placement.verify_against(&striped).unwrap();

    // Serving the striped form of a request moves exactly the original's
    // bytes.
    let mut sim = Simulator::with_natural_policy(placement, 4);
    let metrics = sim.serve(&striped.requests()[0].objects);
    assert_eq!(
        metrics.bytes,
        original.request_bytes(&original.requests()[0])
    );
    assert!(metrics.response > 0.0);
}

#[test]
fn incremental_placement_survives_a_five_epoch_campaign() {
    let system = paper_table1();
    let params = ParallelBatchParams::default();
    let mut w = workload();
    let mut placer = IncrementalPlacer::bootstrap(&w, &system, params).unwrap();
    for epoch in 1..=5u64 {
        w = EvolutionSpec {
            growth: 0.05,
            churn: 0.2,
            new_sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(5)),
            new_requests: RequestSpec {
                count: 60,
                min_objects: 20,
                max_objects: 30,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 1000 + epoch,
        }
        .advance(&w);
        let placement = placer.advance(&w).unwrap();
        placement.verify_against(&w).unwrap();
        // The evolved workload is servable end to end.
        let mut sim = Simulator::with_natural_policy(placement, 4);
        let run = sim.run_sampled(&w, 20, epoch);
        assert!(run.avg_bandwidth_mbs() > 0.0, "epoch {epoch}");
    }
}

#[test]
fn queueing_preserves_service_metrics_and_orders_waits() {
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();

    // Mean service time under queueing equals the plain sampled mean for
    // the same seed structure (the queue changes waits, not services).
    let mut sim = Simulator::with_natural_policy(placement.clone(), 4);
    let sparse = run_queued(
        &mut sim,
        &w,
        40,
        ArrivalSpec {
            per_hour: 0.01,
            seed: 5,
        },
    );
    let mut sim2 = Simulator::with_natural_policy(placement, 4);
    let dense = run_queued(
        &mut sim2,
        &w,
        40,
        ArrivalSpec {
            per_hour: 20.0,
            seed: 5,
        },
    );
    assert!(sparse.avg_wait() < 1e-9);
    assert!(dense.avg_wait() > sparse.avg_wait());
    assert!(dense.avg_sojourn() >= dense.avg_service());
    assert_eq!(sparse.served(), 40);
}

#[test]
fn second_robot_arm_only_helps() {
    let w = workload();
    let place = |arms: u8| {
        let mut system = paper_table1();
        system.library.robot.arms = arms;
        let p = ObjectProbabilityPlacement::default()
            .place(&w, &system)
            .unwrap();
        Simulator::with_natural_policy(p, 4)
            .run_sampled(&w, 40, 9)
            .avg_response()
    };
    let single = place(1);
    let dual = place(2);
    assert!(
        dual <= single,
        "dual-arm response {dual:.1} should not exceed single-arm {single:.1}"
    );
}
