//! Golden-trace snapshot wall.
//!
//! Every placement scheme runs the engine modes — the sequential FCFS
//! gear (`queued`), the concurrent batching scheduler (`sched`), the
//! same scheduler under the exact-DP seek policy (`sched-exact`) and the
//! faulty concurrent gear under a seeded moderate fault plan
//! (`faults-smoke`) — with the trace auditor enabled. Each run's audit
//! verdict and event-count fingerprint (entries, jobs, transfers,
//! exchanges, faults, losses, failovers) is compared against a committed
//! snapshot under `tests/golden/`.
//!
//! These snapshots pin the *shape* of the trace, not floating-point
//! metrics: a refactor that reorders events, drops an exchange, or emits
//! a duplicate transfer changes a count here even when every sojourn
//! average stays bit-identical. The auditor verdict additionally pins
//! that the trace still satisfies every DES invariant.
//!
//! To re-bless after an intentional engine change:
//!
//! ```text
//! TAPESIM_BLESS=1 cargo test -p tapesim-experiments --test golden
//! ```
//!
//! then review the diff of `tests/golden/*.json` like any other code.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use tapesim_experiments::figures::quick_settings;
use tapesim_experiments::Scheme;
use tapesim_faults::{ChaosPlan, ChaosSpec, FaultPlan, FaultSpec};
use tapesim_sched::{run_scheduled, run_scheduled_faulty, BatchByTape, Fcfs, SchedConfig};
use tapesim_serve::{supervisor_run, ServeConfig, SuperviseConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::{SeekPolicy, Simulator};

/// The audited shape of one deterministic run.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Fingerprint {
    scheme: String,
    mode: String,
    served: u64,
    events: u64,
    /// Auditor verdict: every invariant held over the whole trace.
    clean: bool,
    entries: u64,
    jobs: u64,
    transfers: u64,
    exchanges: u64,
    faults: u64,
    losses: u64,
    failovers: u64,
    /// Supervised-runtime legs (`serve-chaos` mode only; default 0 so
    /// the pre-supervision snapshots parse unchanged).
    #[serde(default)]
    shed: u64,
    #[serde(default)]
    restarts: u64,
    #[serde(default)]
    shard_failures: u64,
}

/// Short scheme tag used in snapshot file names.
fn tag(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::ParallelBatch => "pbp",
        Scheme::ObjectProbability => "opp",
        Scheme::ClusterProbability => "cpp",
    }
}

/// Runs one (scheme, mode) cell with auditing on and fingerprints it.
fn fingerprint(scheme: Scheme, mode: &str) -> Fingerprint {
    let s = quick_settings();
    let system = s.system();
    let w = s.generate_workload();
    let placement = scheme.policy(s.m).place(&w, &system).expect("placement");
    let mut sim = Simulator::with_natural_policy(placement, s.m);
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: 16.0,
            seed: s.sim_seed,
        },
        s.samples,
    )
    .with_audit(true);
    if mode == "serve-chaos" {
        return serve_chaos_fingerprint(scheme, sim, &w, &system);
    }
    let out = match mode {
        "queued" => run_scheduled(&mut sim, &w, &Fcfs, &cfg),
        "sched" => run_scheduled(&mut sim, &w, &BatchByTape, &cfg),
        // The exact-DP policy gets its own wall: same stream, optimal
        // in-tape order. Mount and exchange counts must match `sched`
        // (the policy is per-tape-local); only within-tape transfer
        // shape may move.
        "sched-exact" => {
            let cfg = cfg.with_seek(SeekPolicy::ExactDp);
            run_scheduled(&mut sim, &w, &BatchByTape, &cfg)
        }
        "faults-smoke" => {
            let plan = FaultPlan::generate(&FaultSpec::moderate(29), &system);
            run_scheduled_faulty(&mut sim, &w, &BatchByTape, &cfg, &plan, &BTreeMap::new())
        }
        other => panic!("unknown golden mode {other:?}"),
    };
    let mut fp = Fingerprint {
        scheme: tag(scheme).to_string(),
        mode: mode.to_string(),
        served: out.metrics.served(),
        events: out.metrics.events(),
        clean: out.is_clean(),
        entries: 0,
        jobs: 0,
        transfers: 0,
        exchanges: 0,
        faults: 0,
        losses: 0,
        failovers: 0,
        shed: 0,
        restarts: 0,
        shard_failures: 0,
    };
    assert!(
        !out.reports.is_empty(),
        "auditing was on; the golden fingerprint needs audit reports"
    );
    for r in &out.reports {
        fp.entries += r.entries as u64;
        fp.jobs += r.jobs as u64;
        fp.transfers += r.transfers as u64;
        fp.exchanges += r.exchanges as u64;
        fp.faults += r.faults as u64;
        fp.losses += r.losses as u64;
        fp.failovers += r.failovers as u64;
    }
    fp
}

/// The `serve-chaos` cell: a faulty multi-shard **supervised** serve run
/// — hardware faults plus seeded shard kills and stalls, shards
/// restarted from checkpoint replay. The fingerprint additionally pins
/// the supervision ledger (shed, restarts, failures); determinism of
/// the underlying runtime makes the shape stable across machines.
fn serve_chaos_fingerprint(
    scheme: Scheme,
    sim: Simulator,
    w: &tapesim_workload::Workload,
    system: &tapesim_model::SystemConfig,
) -> Fingerprint {
    let s = quick_settings();
    let shards = system.libraries as usize;
    let cfg = ServeConfig::new(
        ArrivalSpec {
            per_hour: 16.0,
            seed: s.sim_seed,
        },
        s.samples,
    )
    .with_shards(shards)
    .with_audit(true)
    .with_channel_bound(4)
    .with_snapshot_every((s.samples / 4).max(1));
    let plan = FaultPlan::generate(&FaultSpec::moderate(29), system);
    let chaos = ChaosPlan::generate(
        &ChaosSpec {
            seed: 7,
            kills_per_shard: 1.5,
            stalls_per_shard: 1.0,
            horizon_submissions: (s.samples / shards.max(1)).max(1) as u64,
            restart_base_draws: 1,
            restart_cap_draws: 4,
        },
        shards,
    );
    let report = supervisor_run(
        &sim,
        w,
        tapesim_sched::PolicyKind::BatchByTape,
        &cfg,
        &plan,
        &BTreeMap::new(),
        &chaos,
        &SuperviseConfig::new().with_watchdog_ms(1_000),
    );
    assert!(
        !report.reports.is_empty(),
        "auditing was on; the golden fingerprint needs audit reports"
    );
    let mut fp = Fingerprint {
        scheme: tag(scheme).to_string(),
        mode: "serve-chaos".to_string(),
        served: report.served,
        events: report.metrics.events(),
        clean: report.is_clean(),
        entries: 0,
        jobs: 0,
        transfers: 0,
        exchanges: 0,
        faults: 0,
        losses: 0,
        failovers: 0,
        shed: report.shed,
        restarts: report.restarts,
        shard_failures: report.failures.len() as u64,
    };
    for r in &report.reports {
        fp.entries += r.entries as u64;
        fp.jobs += r.jobs as u64;
        fp.transfers += r.transfers as u64;
        fp.exchanges += r.exchanges as u64;
        fp.faults += r.faults as u64;
        fp.losses += r.losses as u64;
        fp.failovers += r.failovers as u64;
    }
    fp
}

fn golden_path(scheme: Scheme, mode: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{}_{}.json", tag(scheme), mode))
}

/// Compares one cell against its snapshot; returns a description of the
/// mismatch (or of a missing snapshot). `TAPESIM_BLESS=1` rewrites the
/// snapshot instead and never fails.
fn check(scheme: Scheme, mode: &str) -> Option<String> {
    let fp = fingerprint(scheme, mode);
    let path = golden_path(scheme, mode);
    if std::env::var_os("TAPESIM_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&fp).expect("serialize fingerprint");
        std::fs::write(&path, json + "\n").expect("write golden snapshot");
        return None;
    }
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            return Some(format!(
                "{}: cannot read snapshot ({e}); run with TAPESIM_BLESS=1 to create it",
                path.display()
            ))
        }
    };
    let want: Fingerprint = match serde_json::from_str(&committed) {
        Ok(fp) => fp,
        Err(e) => return Some(format!("{}: cannot parse snapshot: {e}", path.display())),
    };
    (fp != want).then(|| {
        format!(
            "{}: trace shape drifted\n  committed: {want:?}\n  current:   {fp:?}\n  \
             (re-bless with TAPESIM_BLESS=1 if the change is intentional)",
            path.display()
        )
    })
}

fn run_mode(mode: &str) {
    let diffs: Vec<String> = Scheme::ALL
        .iter()
        .filter_map(|&scheme| check(scheme, mode))
        .collect();
    assert!(diffs.is_empty(), "{}", diffs.join("\n"));
}

#[test]
fn golden_queued_traces_match() {
    run_mode("queued");
}

#[test]
fn golden_sched_traces_match() {
    run_mode("sched");
}

#[test]
fn golden_sched_exact_traces_match() {
    run_mode("sched-exact");
}

#[test]
fn golden_faulty_traces_match() {
    run_mode("faults-smoke");
}

#[test]
fn golden_supervised_chaos_traces_match() {
    run_mode("serve-chaos");
}
