//! Golden-trace snapshot wall.
//!
//! Every placement scheme runs three engine modes — the sequential FCFS
//! gear (`queued`), the concurrent batching scheduler (`sched`) and the
//! faulty concurrent gear under a seeded moderate fault plan
//! (`faults-smoke`) — with the trace auditor enabled. Each run's audit
//! verdict and event-count fingerprint (entries, jobs, transfers,
//! exchanges, faults, losses, failovers) is compared against a committed
//! snapshot under `tests/golden/`.
//!
//! These snapshots pin the *shape* of the trace, not floating-point
//! metrics: a refactor that reorders events, drops an exchange, or emits
//! a duplicate transfer changes a count here even when every sojourn
//! average stays bit-identical. The auditor verdict additionally pins
//! that the trace still satisfies every DES invariant.
//!
//! To re-bless after an intentional engine change:
//!
//! ```text
//! TAPESIM_BLESS=1 cargo test -p tapesim-experiments --test golden
//! ```
//!
//! then review the diff of `tests/golden/*.json` like any other code.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use tapesim_experiments::figures::quick_settings;
use tapesim_experiments::Scheme;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_sched::{run_scheduled, run_scheduled_faulty, BatchByTape, Fcfs, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::Simulator;

/// The audited shape of one deterministic run.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Fingerprint {
    scheme: String,
    mode: String,
    served: u64,
    events: u64,
    /// Auditor verdict: every invariant held over the whole trace.
    clean: bool,
    entries: u64,
    jobs: u64,
    transfers: u64,
    exchanges: u64,
    faults: u64,
    losses: u64,
    failovers: u64,
}

/// Short scheme tag used in snapshot file names.
fn tag(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::ParallelBatch => "pbp",
        Scheme::ObjectProbability => "opp",
        Scheme::ClusterProbability => "cpp",
    }
}

/// Runs one (scheme, mode) cell with auditing on and fingerprints it.
fn fingerprint(scheme: Scheme, mode: &str) -> Fingerprint {
    let s = quick_settings();
    let system = s.system();
    let w = s.generate_workload();
    let placement = scheme.policy(s.m).place(&w, &system).expect("placement");
    let mut sim = Simulator::with_natural_policy(placement, s.m);
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: 16.0,
            seed: s.sim_seed,
        },
        s.samples,
    )
    .with_audit(true);
    let out = match mode {
        "queued" => run_scheduled(&mut sim, &w, &Fcfs, &cfg),
        "sched" => run_scheduled(&mut sim, &w, &BatchByTape, &cfg),
        "faults-smoke" => {
            let plan = FaultPlan::generate(&FaultSpec::moderate(29), &system);
            run_scheduled_faulty(&mut sim, &w, &BatchByTape, &cfg, &plan, &BTreeMap::new())
        }
        other => panic!("unknown golden mode {other:?}"),
    };
    let mut fp = Fingerprint {
        scheme: tag(scheme).to_string(),
        mode: mode.to_string(),
        served: out.metrics.served(),
        events: out.metrics.events(),
        clean: out.is_clean(),
        entries: 0,
        jobs: 0,
        transfers: 0,
        exchanges: 0,
        faults: 0,
        losses: 0,
        failovers: 0,
    };
    assert!(
        !out.reports.is_empty(),
        "auditing was on; the golden fingerprint needs audit reports"
    );
    for r in &out.reports {
        fp.entries += r.entries as u64;
        fp.jobs += r.jobs as u64;
        fp.transfers += r.transfers as u64;
        fp.exchanges += r.exchanges as u64;
        fp.faults += r.faults as u64;
        fp.losses += r.losses as u64;
        fp.failovers += r.failovers as u64;
    }
    fp
}

fn golden_path(scheme: Scheme, mode: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{}_{}.json", tag(scheme), mode))
}

/// Compares one cell against its snapshot; returns a description of the
/// mismatch (or of a missing snapshot). `TAPESIM_BLESS=1` rewrites the
/// snapshot instead and never fails.
fn check(scheme: Scheme, mode: &str) -> Option<String> {
    let fp = fingerprint(scheme, mode);
    let path = golden_path(scheme, mode);
    if std::env::var_os("TAPESIM_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&fp).expect("serialize fingerprint");
        std::fs::write(&path, json + "\n").expect("write golden snapshot");
        return None;
    }
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            return Some(format!(
                "{}: cannot read snapshot ({e}); run with TAPESIM_BLESS=1 to create it",
                path.display()
            ))
        }
    };
    let want: Fingerprint = match serde_json::from_str(&committed) {
        Ok(fp) => fp,
        Err(e) => return Some(format!("{}: cannot parse snapshot: {e}", path.display())),
    };
    (fp != want).then(|| {
        format!(
            "{}: trace shape drifted\n  committed: {want:?}\n  current:   {fp:?}\n  \
             (re-bless with TAPESIM_BLESS=1 if the change is intentional)",
            path.display()
        )
    })
}

fn run_mode(mode: &str) {
    let diffs: Vec<String> = Scheme::ALL
        .iter()
        .filter_map(|&scheme| check(scheme, mode))
        .collect();
    assert!(diffs.is_empty(), "{}", diffs.join("\n"));
}

#[test]
fn golden_queued_traces_match() {
    run_mode("queued");
}

#[test]
fn golden_sched_traces_match() {
    run_mode("sched");
}

#[test]
fn golden_faulty_traces_match() {
    run_mode("faults-smoke");
}
