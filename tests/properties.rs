//! Property-based integration tests (proptest): randomized workloads and
//! configurations through the whole pipeline.

use proptest::prelude::*;
use tapesim_model::specs::{lto3_drive, lto3_tape, stk_l80_library};
use tapesim_model::{Bytes, ObjectId, SystemConfig};
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement,
    PlacementPolicy,
};
use tapesim_sim::Simulator;
use tapesim_workload::{ObjectRecord, Request, Workload};

/// Strategy: a random small workload (objects with random sizes, random
/// overlapping requests with normalised probabilities).
fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        20usize..120,
        2usize..10,
        proptest::collection::vec(1u64..64, 20..120),
    )
        .prop_flat_map(|(n_obj, n_req, mut sizes)| {
            sizes.truncate(n_obj);
            while sizes.len() < n_obj {
                sizes.push(8);
            }
            let members = proptest::collection::vec(
                proptest::collection::vec(0u32..n_obj as u32, 2..12),
                n_req..=n_req,
            );
            let weights = proptest::collection::vec(0.01f64..1.0, n_req..=n_req);
            (Just(sizes), members, weights).prop_map(|(sizes, members, weights)| {
                let objects: Vec<ObjectRecord> = sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &gb)| ObjectRecord {
                        id: ObjectId(i as u32),
                        size: Bytes::gb(gb),
                    })
                    .collect();
                let total_w: f64 = weights.iter().sum();
                let requests: Vec<Request> = members
                    .into_iter()
                    .enumerate()
                    .map(|(rank, mut objs)| {
                        objs.sort_unstable();
                        objs.dedup();
                        Request {
                            rank: rank as u32,
                            probability: weights[rank] / total_w,
                            objects: objs.into_iter().map(ObjectId).collect(),
                        }
                    })
                    .collect();
                Workload::new(objects, requests)
            })
        })
}

fn system(libraries: u16) -> SystemConfig {
    SystemConfig::new(libraries, stk_l80_library(lto3_drive(), lto3_tape())).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheme produces a complete, valid placement on arbitrary
    /// workloads and library counts.
    #[test]
    fn placements_are_always_complete(w in arb_workload(), libs in 1u16..4, m in 1u8..8) {
        let sys = system(libs);
        let schemes: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(ParallelBatchPlacement::with_m(m)),
            Box::new(ObjectProbabilityPlacement::default()),
            Box::new(ClusterProbabilityPlacement::default()),
        ];
        for scheme in schemes {
            let p = scheme.place(&w, &sys).unwrap();
            p.verify_against(&w).unwrap();
            // Every tape layout is within hard capacity (validated by the
            // builder; re-check the public view).
            for t in p.used_tapes() {
                prop_assert!(p.tape_layout(t).used() <= sys.library.tape.capacity);
            }
        }
    }

    /// Simulator invariants hold for arbitrary request subsets: the
    /// decomposition adds up, bandwidth respects the hardware ceiling, and
    /// per-request results are deterministic.
    #[test]
    fn simulation_invariants(w in arb_workload(), m in 1u8..8, pick in 0usize..100) {
        let sys = system(2);
        let p = ParallelBatchPlacement::with_m(m).place(&w, &sys).unwrap();
        let mut sim = Simulator::with_natural_policy(p, m);
        let r = &w.requests()[pick % w.requests().len()];
        let metrics = sim.serve(&r.objects);

        prop_assert!(metrics.response >= 0.0);
        prop_assert!((metrics.switch + metrics.seek + metrics.transfer - metrics.response).abs() < 1e-6);
        let ceiling = sys.total_drives() as f64 * 80.0;
        prop_assert!(metrics.bandwidth_mbs() <= ceiling + 1e-6);
        // Serving again from a fresh simulator reproduces the result.
        let p2 = ParallelBatchPlacement::with_m(m).place(&w, &sys).unwrap();
        let mut sim2 = Simulator::with_natural_policy(p2, m);
        let again = sim2.serve(&r.objects);
        prop_assert_eq!(metrics, again);
    }

    /// A warm repeat of the same request never exchanges more tapes than
    /// the cold pass, and its response exceeds the cold one by at most a
    /// full tape pass (the seek back from where the cold pass parked the
    /// heads).
    #[test]
    fn warm_requests_are_monotone(w in arb_workload(), pick in 0usize..100) {
        let sys = system(2);
        let p = ObjectProbabilityPlacement::default().place(&w, &sys).unwrap();
        let mut sim = Simulator::with_natural_policy(p, 4);
        let r = &w.requests()[pick % w.requests().len()];
        let cold = sim.serve(&r.objects);
        let warm = sim.serve(&r.objects);
        prop_assert!(warm.n_switches <= cold.n_switches);
        let full_pass = sys.library.drive.full_pass_time;
        prop_assert!(warm.response <= cold.response + full_pass + 1e-9);
    }

    /// Object probabilities derived from requests are consistent: the
    /// popularity-weighted sum of request sizes equals the probability
    /// mass seen by placement.
    #[test]
    fn probability_accounting(w in arb_workload()) {
        let probs = w.object_probabilities();
        let total: f64 = probs.iter().sum();
        let expected: f64 = w
            .requests()
            .iter()
            .map(|r| r.probability * r.objects.len() as f64)
            .sum();
        prop_assert!((total - expected).abs() < 1e-9);
    }

    /// The per-tape probability accounting of a placement matches the
    /// workload-derived object probabilities.
    #[test]
    fn tape_probability_accounting(w in arb_workload()) {
        let sys = system(2);
        let p = ClusterProbabilityPlacement::default().place(&w, &sys).unwrap();
        let probs = w.object_probabilities();
        let from_tapes: f64 = p
            .used_tapes()
            .iter()
            .map(|&t| p.tape_probability(t))
            .sum();
        let from_objects: f64 = probs.iter().sum();
        prop_assert!((from_tapes - from_objects).abs() < 1e-6);
    }
}
