//! Structural analysis over the token stream: the [`FileModel`].
//!
//! One parse per file produces everything the rules need:
//!
//! * **line masks** — which lines sit under `#[cfg(test)]`/`#[test]`
//!   items and which sit inside loop bodies, derived from real attribute
//!   tokens and matched delimiter pairs (replacing the old per-line
//!   brace-counting heuristics);
//! * **fn items** — name, visibility, parsed parameters, return-type
//!   tokens and body extent, for the unit-safety rule and the
//!   panic-reachability call graph;
//! * **expression sites** — method calls, free/path calls, macro
//!   invocations, index expressions and `match` arms, each with a
//!   line/column span.
//!
//! Everything here is resolution-free (no type inference, no imports):
//! rules that need "is this an iterator over a `HashMap`" work from
//! binding-site heuristics, and the call graph matches by name, which
//! over-approximates reachability — the safe direction for a lint.

use crate::ast::{Tok, TokenFile};

/// A parsed function parameter with a simple `name: Type` shape.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// The type, rendered token-by-token (e.g. `["&", "mut", "f64"]`).
    pub ty: Vec<String>,
    pub line: usize,
    pub col: usize,
}

/// A `fn` item (free function or method; nested fns included).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub line: usize,
    pub col: usize,
    /// Any `pub` visibility, including restricted (`pub(crate)`).
    pub is_pub: bool,
    pub params: Vec<Param>,
    /// Token range `[start, end)` of the return type, if any.
    pub ret: Option<(usize, usize)>,
    /// Token indexes of the body's `{` and `}`, if the fn has a body.
    pub body: Option<(usize, usize)>,
    /// True if the `fn` keyword sits under a `#[cfg(test)]`/`#[test]`
    /// item.
    pub in_test: bool,
}

/// A `.name(...)` method call.
#[derive(Debug, Clone, Copy)]
pub struct MethodCall {
    /// Token index of the `.`.
    pub dot: usize,
    /// Token index of the method name.
    pub name_idx: usize,
    /// Token index of the argument list's `(`.
    pub args_open: usize,
}

/// A `name(...)` free or path call.
#[derive(Debug, Clone, Copy)]
pub struct FreeCall {
    pub name_idx: usize,
}

/// A `name!(...)` / `name![...]` / `name! {...}` macro invocation.
#[derive(Debug, Clone, Copy)]
pub struct MacroCall {
    pub name_idx: usize,
}

/// One arm of a `match`.
#[derive(Debug, Clone, Copy)]
pub struct MatchArm {
    /// Token range `[start, end)` of the pattern (guard excluded).
    pub pat: (usize, usize),
}

/// A `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// Token index of the `match` keyword.
    pub kw: usize,
    /// Token range `[start, end)` of the scrutinee.
    pub scrutinee: (usize, usize),
    pub arms: Vec<MatchArm>,
}

/// The fully analyzed file.
pub struct FileModel {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw source lines, for excerpts.
    pub lines: Vec<String>,
    pub tf: TokenFile,
    /// Per-line (0-based index): under a test-guarded item?
    pub test_mask: Vec<bool>,
    /// Per-line (0-based index): inside a loop header/body?
    pub loop_mask: Vec<bool>,
    pub fns: Vec<FnItem>,
    /// Names bound to `HashMap`/`HashSet` outside test code.
    pub hash_names: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match",
    "mod", "move", "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait",
    "true", "type", "unsafe", "use", "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

impl FileModel {
    /// Parses `src` (workspace-relative path `rel`) into a model.
    pub fn build(rel: &str, src: &str) -> Result<FileModel, crate::ast::LexError> {
        let tf = TokenFile::lex(src)?;
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let test_mask = derive_test_mask(&tf);
        let loop_mask = derive_loop_mask(&tf);
        let fns = extract_fns(&tf, &test_mask);
        let hash_names = hash_bindings(&tf, &test_mask);
        Ok(FileModel {
            rel: rel.to_string(),
            lines,
            tf,
            test_mask,
            loop_mask,
            fns,
            hash_names,
        })
    }

    /// True if 1-based `line` is inside test-guarded code.
    pub fn line_in_test(&self, line: usize) -> bool {
        line >= 1 && self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// True if 1-based `line` is inside a loop header or body.
    pub fn line_in_loop(&self, line: usize) -> bool {
        line >= 1 && self.loop_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The trimmed source text of 1-based `line`.
    pub fn excerpt(&self, line: usize) -> String {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// All `.name(...)` method calls, in token order.
    pub fn method_calls(&self) -> Vec<MethodCall> {
        let t = &self.tf;
        let mut out = Vec::new();
        let mut i = 0;
        while i + 2 < t.tokens.len() {
            if t.tokens[i].tok.is_punct('.') && matches!(t.tokens[i + 1].tok, Tok::Ident(_)) {
                let name_idx = i + 1;
                let mut j = i + 2;
                // Optional turbofish: `.collect::<T>()`.
                if t.tokens[j].tok.is_punct(':')
                    && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(j + 2).is_some_and(|x| x.is_punct('<'))
                {
                    j = t.skip_angles(j + 2);
                }
                if matches!(t.get(j), Some(Tok::Open('('))) {
                    out.push(MethodCall {
                        dot: i,
                        name_idx,
                        args_open: j,
                    });
                }
            }
            i += 1;
        }
        out
    }

    /// All `name(...)` free or path calls (method calls excluded).
    pub fn free_calls(&self) -> Vec<FreeCall> {
        let t = &self.tf;
        let mut out = Vec::new();
        for i in 0..t.tokens.len() {
            let Tok::Ident(name) = &t.tokens[i].tok else {
                continue;
            };
            if is_keyword(name) {
                continue;
            }
            if !matches!(t.get(i + 1), Some(Tok::Open('('))) {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &t.tokens[p].tok);
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            let is_decl = prev.is_some_and(|p| p.is_ident("fn"));
            if !after_dot && !is_decl {
                out.push(FreeCall { name_idx: i });
            }
        }
        out
    }

    /// All macro invocations.
    pub fn macro_calls(&self) -> Vec<MacroCall> {
        let t = &self.tf;
        let mut out = Vec::new();
        for i in 0..t.tokens.len() {
            if matches!(t.tokens[i].tok, Tok::Ident(_))
                && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
                && matches!(t.get(i + 2), Some(Tok::Open(_)))
            {
                out.push(MacroCall { name_idx: i });
            }
        }
        out
    }

    /// Token indexes of `[` delimiters that index an expression
    /// (`xs[i]`, `f(x)[0]`, `a[i][j]`) — array literals, attributes,
    /// types, macro delimiters and slice patterns excluded.
    pub fn index_sites(&self) -> Vec<usize> {
        let t = &self.tf;
        let mut out = Vec::new();
        for i in 1..t.tokens.len() {
            if !matches!(t.tokens[i].tok, Tok::Open('[')) {
                continue;
            }
            match &t.tokens[i - 1].tok {
                Tok::Ident(name) if !is_keyword(name) => out.push(i),
                Tok::Close(')') | Tok::Close(']') => out.push(i),
                _ => {}
            }
        }
        out
    }

    /// All `match` expressions with parsed arms.
    pub fn match_exprs(&self) -> Vec<MatchExpr> {
        let t = &self.tf;
        let mut out = Vec::new();
        for i in 0..t.tokens.len() {
            if !t.tokens[i].tok.is_ident("match") {
                continue;
            }
            // `match` directly after `.` is impossible (reserved word);
            // after `=` / `(` / statement start it's the expression form.
            let Some(body_open) = find_block_start(t, i + 1) else {
                continue;
            };
            let scrutinee = (i + 1, body_open);
            let arms = parse_arms(t, body_open);
            out.push(MatchExpr {
                kw: i,
                scrutinee,
                arms,
            });
        }
        out
    }

    /// Walks the postfix chain containing the method call whose `.` is at
    /// `dot` back to its first token (the chain root). Steps over
    /// argument lists, index groups, turbofish, `?` and path segments.
    pub fn chain_start(&self, dot: usize) -> usize {
        let t = &self.tf;
        let mut i = dot;
        loop {
            let Some(pi) = i.checked_sub(1) else {
                return i;
            };
            match &t.tokens[pi].tok {
                Tok::Close(_) => {
                    let open = t.match_of[pi];
                    // Include the callee/indexed expression before the
                    // group, handled on the next iteration.
                    i = open;
                }
                Tok::Ident(name) if !is_keyword(name) => {
                    i = pi;
                    // Continue through `.`, `::` or `!` linkage.
                    let Some(ppi) = i.checked_sub(1) else {
                        return i;
                    };
                    match &t.tokens[ppi].tok {
                        Tok::Punct('.') => i = ppi,
                        Tok::Punct('!') => i = ppi,
                        Tok::Punct(':') if ppi >= 1 && t.tokens[ppi - 1].tok.is_punct(':') => {
                            i = ppi - 1;
                        }
                        _ => return i,
                    }
                }
                Tok::Punct('?') => i = pi,
                Tok::Punct('>') => {
                    // End of a turbofish: walk back to its `<`.
                    let mut depth = 1i64;
                    let mut j = pi;
                    while depth > 0 && j > 0 {
                        j -= 1;
                        match &t.tokens[j].tok {
                            Tok::Punct('>') => depth += 1,
                            Tok::Punct('<') => depth -= 1,
                            Tok::Close(_) => j = t.match_of[j],
                            _ => {}
                        }
                    }
                    i = j;
                }
                Tok::Punct('.') => i = pi,
                _ => return i,
            }
        }
    }

    /// The identifier tokens of the chain `[start, end)`.
    pub fn chain_idents(&self, start: usize, end: usize) -> Vec<&str> {
        self.tf.tokens[start..end]
            .iter()
            .filter_map(|t| t.tok.ident())
            .collect()
    }

    /// The innermost fn whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span, fn index)
        for (fi, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if idx > open && idx < close {
                    let span = close - open;
                    if best.is_none_or(|(s, _)| span < s) {
                        best = Some((span, fi));
                    }
                }
            }
        }
        best.map(|(_, fi)| fi)
    }
}

/// Marks lines covered by `#[cfg(test)]`- or `#[test]`-guarded items:
/// from the attribute line through the end of the annotated item (its
/// body's closing brace, or a terminating `;`).
fn derive_test_mask(tf: &TokenFile) -> Vec<bool> {
    let mut mask = vec![false; tf.n_lines];
    let mut i = 0;
    while i + 1 < tf.tokens.len() {
        if !(tf.tokens[i].tok.is_punct('#') && matches!(tf.tokens[i + 1].tok, Tok::Open('['))) {
            i += 1;
            continue;
        }
        let attr_close = tf.match_of[i + 1];
        if !attr_is_test(tf, i + 1, attr_close) {
            i = attr_close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_close + 1;
        while j + 1 < tf.tokens.len()
            && tf.tokens[j].tok.is_punct('#')
            && matches!(tf.tokens[j + 1].tok, Tok::Open('['))
        {
            j = tf.match_of[j + 1] + 1;
        }
        // The item ends at the first top-level `;` or the close of the
        // first top-level `{...}` group.
        let mut end_line = tf.line(attr_close);
        let mut k = j;
        while k < tf.tokens.len() {
            match &tf.tokens[k].tok {
                Tok::Punct(';') => {
                    end_line = tf.line(k);
                    break;
                }
                Tok::Open('{') => {
                    end_line = tf.line(tf.match_of[k]);
                    break;
                }
                Tok::Open(_) => k = tf.skip_group(k),
                Tok::Close(_) => {
                    // Enclosing scope ended before the item did (guarded
                    // trailing expression); stop here.
                    end_line = tf.line(k);
                    break;
                }
                _ => k += 1,
            }
        }
        mark(&mut mask, tf.line(i), end_line);
        i += 1;
    }
    mask
}

/// Is the attribute group `[open..close]` a test guard: `#[test]`,
/// `#[cfg(test)]`, or `#[cfg(any(test, ...))]`/`#[cfg(all(test, ...))]`
/// — with `test` under `not(...)` explicitly NOT counting?
fn attr_is_test(tf: &TokenFile, open: usize, close: usize) -> bool {
    let inner: Vec<usize> = (open + 1..close).collect();
    match inner.as_slice() {
        [single] => tf.tokens[*single].tok.is_ident("test"),
        _ => {
            if !tf.tokens[open + 1].tok.is_ident("cfg") {
                return false;
            }
            let Some(Tok::Open('(')) = tf.get(open + 2) else {
                return false;
            };
            cfg_has_test(tf, open + 2, tf.match_of[open + 2])
        }
    }
}

/// Searches a `cfg(...)` argument group for the predicate `test`,
/// recursing into `any(...)`/`all(...)` but skipping `not(...)`.
fn cfg_has_test(tf: &TokenFile, open: usize, close: usize) -> bool {
    let mut i = open + 1;
    while i < close {
        match &tf.tokens[i].tok {
            Tok::Ident(name) if name == "not" => {
                if let Some(Tok::Open('(')) = tf.get(i + 1) {
                    i = tf.match_of[i + 1] + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(name) if name == "any" || name == "all" => {
                if let Some(Tok::Open('(')) = tf.get(i + 1) {
                    if cfg_has_test(tf, i + 1, tf.match_of[i + 1]) {
                        return true;
                    }
                    i = tf.match_of[i + 1] + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(name) if name == "test" => return true,
            Tok::Open(_) => i = tf.skip_group(i),
            _ => i += 1,
        }
    }
    false
}

/// Marks lines inside `for`/`while`/`loop` headers and bodies.
fn derive_loop_mask(tf: &TokenFile) -> Vec<bool> {
    let mut mask = vec![false; tf.n_lines];
    for i in 0..tf.tokens.len() {
        let Tok::Ident(kw) = &tf.tokens[i].tok else {
            continue;
        };
        let body = match kw.as_str() {
            "loop" => match tf.get(i + 1) {
                Some(Tok::Open('{')) => Some(i + 1),
                _ => None,
            },
            "while" => find_block_start(tf, i + 1),
            "for" if for_is_loop(tf, i) => find_block_start(tf, i + 1),
            _ => None,
        };
        if let Some(open) = body {
            mark(&mut mask, tf.line(i), tf.line(tf.match_of[open]));
        }
    }
    mask
}

/// Distinguishes loop-`for` from `impl Trait for Type` and `for<'a>`
/// bounds: a loop has a top-level `in` between `for` and its `{`.
fn for_is_loop(tf: &TokenFile, for_idx: usize) -> bool {
    if tf.get(for_idx + 1).is_some_and(|t| t.is_punct('<')) {
        return false; // `for<'a>` higher-ranked bound
    }
    let mut j = for_idx + 1;
    while j < tf.tokens.len() {
        match &tf.tokens[j].tok {
            Tok::Ident(name) if name == "in" => return true,
            Tok::Open('{') | Tok::Close(_) => return false,
            Tok::Punct(';') => return false,
            Tok::Open(_) => j = tf.skip_group(j),
            _ => j += 1,
        }
    }
    false
}

/// Finds the `{` opening the block that follows a `while`/`for`/`match`
/// header starting at `from`: the first top-level `{` that is not a
/// closure body (`|x| { ... }`).
fn find_block_start(tf: &TokenFile, from: usize) -> Option<usize> {
    let mut j = from;
    while j < tf.tokens.len() {
        match &tf.tokens[j].tok {
            Tok::Open('{') => {
                if j > 0 && tf.tokens[j - 1].tok.is_punct('|') {
                    // Closure body inside the header expression.
                    j = tf.skip_group(j);
                    continue;
                }
                return Some(j);
            }
            Tok::Open(_) => j = tf.skip_group(j),
            Tok::Punct(';') | Tok::Close(_) => return None,
            _ => j += 1,
        }
    }
    None
}

/// Extracts every `fn` item (fn-pointer types `fn(...)` excluded: those
/// have no name identifier after the keyword).
fn extract_fns(tf: &TokenFile, test_mask: &[bool]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..tf.tokens.len() {
        if !tf.tokens[i].tok.is_ident("fn") {
            continue;
        }
        let Some(Tok::Ident(name)) = tf.get(i + 1) else {
            continue;
        };
        let name = name.clone();
        let mut j = i + 2;
        if tf.get(j).is_some_and(|t| t.is_punct('<')) {
            j = tf.skip_angles(j);
        }
        let Some(Tok::Open('(')) = tf.get(j) else {
            continue;
        };
        let params_open = j;
        let params_close = tf.match_of[j];
        let mut k = params_close + 1;
        let mut ret = None;
        if tf.get(k).is_some_and(|t| t.is_punct('-'))
            && tf.get(k + 1).is_some_and(|t| t.is_punct('>'))
        {
            let rs = k + 2;
            let mut re = rs;
            while re < tf.tokens.len() {
                match &tf.tokens[re].tok {
                    Tok::Open('{') | Tok::Punct(';') => break,
                    Tok::Ident(w) if w == "where" => break,
                    Tok::Punct('<') => re = tf.skip_angles(re),
                    Tok::Open(_) => re = tf.skip_group(re),
                    _ => re += 1,
                }
            }
            ret = Some((rs, re));
            k = re;
        }
        // Step over a where clause to the body (or the terminating `;`).
        let mut body = None;
        while k < tf.tokens.len() {
            match &tf.tokens[k].tok {
                Tok::Open('{') => {
                    body = Some((k, tf.match_of[k]));
                    break;
                }
                Tok::Punct(';') | Tok::Close(_) => break,
                Tok::Punct('<') => k = tf.skip_angles(k),
                Tok::Open(_) => k = tf.skip_group(k),
                _ => k += 1,
            }
        }
        // Visibility: walk back over `const`/`unsafe`/`async`/`extern`
        // "C" and a possible `pub` / `pub(crate)`.
        let mut b = i;
        let mut is_pub = false;
        while let Some(pb) = b.checked_sub(1) {
            match &tf.tokens[pb].tok {
                Tok::Ident(m) if matches!(m.as_str(), "const" | "unsafe" | "async" | "extern") => {
                    b = pb;
                }
                Tok::Str => b = pb, // the "C" in `extern "C"`
                Tok::Close(')') => {
                    let open = tf.match_of[pb];
                    if open >= 1 && tf.tokens[open - 1].tok.is_ident("pub") {
                        is_pub = true;
                        b = open - 1;
                    } else {
                        break;
                    }
                }
                Tok::Ident(m) if m == "pub" => {
                    is_pub = true;
                    b = pb;
                }
                _ => break,
            }
        }
        let line = tf.line(i);
        out.push(FnItem {
            name,
            line,
            col: tf.col(i),
            is_pub,
            params: parse_params(tf, params_open, params_close),
            ret,
            body,
            in_test: line >= 1 && test_mask.get(line - 1).copied().unwrap_or(false),
        });
    }
    out
}

/// Parses simple `name: Type` parameters; `self` receivers and complex
/// patterns (tuples, destructuring) are skipped.
fn parse_params(tf: &TokenFile, open: usize, close: usize) -> Vec<Param> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i <= close {
        let end_of_param = i == close
            || (tf.tokens[i].tok.is_punct(',') && {
                true // top-level: groups are skipped below
            });
        if !end_of_param {
            match &tf.tokens[i].tok {
                Tok::Open(_) => i = tf.skip_group(i),
                Tok::Punct('<') => i = tf.skip_angles(i),
                _ => i += 1,
            }
            continue;
        }
        if start < i {
            parse_one_param(tf, start, i, &mut out);
        }
        i += 1;
        start = i;
    }
    out
}

fn parse_one_param(tf: &TokenFile, start: usize, end: usize, out: &mut Vec<Param>) {
    let mut i = start;
    if tf.tokens[i].tok.is_ident("mut") {
        i += 1;
    }
    let Tok::Ident(name) = &tf.tokens[i].tok else {
        return;
    };
    if name == "self" || is_keyword(name) {
        return;
    }
    if !tf.get(i + 1).is_some_and(|t| t.is_punct(':')) {
        return;
    }
    let ty: Vec<String> = tf.tokens[i + 2..end]
        .iter()
        .map(|t| match &t.tok {
            Tok::Ident(s) => s.clone(),
            Tok::Lifetime(l) => format!("'{l}"),
            Tok::Punct(c) => c.to_string(),
            Tok::Open(c) => c.to_string(),
            Tok::Close(c) => c.to_string(),
            Tok::Num { text, .. } => text.clone(),
            Tok::Str => "\"\"".into(),
            Tok::Char => "''".into(),
        })
        .collect();
    out.push(Param {
        name: name.clone(),
        ty,
        line: tf.line(i),
        col: tf.col(i),
    });
}

/// Parses the arms of a match body group.
fn parse_arms(tf: &TokenFile, body_open: usize) -> Vec<MatchArm> {
    let close = tf.match_of[body_open];
    let mut arms = Vec::new();
    let mut j = body_open + 1;
    while j < close {
        let pat_start = j;
        // Scan to the top-level `=>`.
        let mut fat_arrow = None;
        let mut k = j;
        while k < close {
            if tf.tokens[k].tok.is_punct('=') && tf.get(k + 1).is_some_and(|t| t.is_punct('>')) {
                fat_arrow = Some(k);
                break;
            }
            match &tf.tokens[k].tok {
                Tok::Open(_) => k = tf.skip_group(k),
                _ => k += 1,
            }
        }
        let Some(arrow) = fat_arrow else { break };
        // Guard: pattern proper ends at a top-level `if`.
        let mut pat_end = arrow;
        let mut g = pat_start;
        while g < arrow {
            match &tf.tokens[g].tok {
                Tok::Ident(w) if w == "if" => {
                    pat_end = g;
                    break;
                }
                Tok::Open(_) => g = tf.skip_group(g),
                _ => g += 1,
            }
        }
        arms.push(MatchArm {
            pat: (pat_start, pat_end),
        });
        // Arm body: a block, or an expression up to the top-level comma.
        let mut b = arrow + 2;
        if let Some(Tok::Open('{')) = tf.get(b) {
            b = tf.skip_group(b);
            if tf.get(b).is_some_and(|t| t.is_punct(',')) {
                b += 1;
            }
        } else {
            while b < close {
                match &tf.tokens[b].tok {
                    Tok::Punct(',') => {
                        b += 1;
                        break;
                    }
                    Tok::Open(_) => b = tf.skip_group(b),
                    _ => b += 1,
                }
            }
        }
        j = b;
    }
    arms
}

/// Is the arm pattern a bare wildcard — `_`, or an or-pattern with a
/// bare `_` alternative?
pub fn arm_is_wildcard(tf: &TokenFile, arm: &MatchArm) -> bool {
    let (start, end) = arm.pat;
    if end == start + 1 {
        return tf.tokens[start].tok.is_ident("_");
    }
    // Split on top-level `|`.
    let mut seg_start = start;
    let mut i = start;
    while i <= end {
        let boundary = i == end || tf.tokens[i].tok.is_punct('|');
        if !boundary {
            match &tf.tokens[i].tok {
                Tok::Open(_) => i = tf.skip_group(i),
                _ => i += 1,
            }
            continue;
        }
        if i - seg_start == 1 && tf.tokens[seg_start].tok.is_ident("_") {
            return true;
        }
        i += 1;
        seg_start = i;
    }
    false
}

/// Names bound to `HashMap`/`HashSet` outside test code: `let` bindings
/// and struct fields, matched on the binding line.
fn hash_bindings(tf: &TokenFile, test_mask: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tf.tokens.iter().enumerate() {
        let is_hash = t.tok.is_ident("HashMap") || t.tok.is_ident("HashSet");
        if !is_hash || test_mask.get(t.line - 1).copied().unwrap_or(false) {
            continue;
        }
        // Tokens on the same line, up to this one.
        let line = t.line;
        let first = (0..=i).rev().take_while(|&j| tf.line(j) == line).last();
        let Some(first) = first else { continue };
        if tf.tokens[first].tok.is_ident("let") {
            let mut n = first + 1;
            if tf.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if let Some(Tok::Ident(name)) = tf.get(n) {
                names.push(name.clone());
            }
        } else if let (Some(Tok::Ident(name)), Some(colon)) = (tf.get(first), tf.get(first + 1)) {
            if colon.is_punct(':') && !is_keyword(name) {
                names.push(name.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn mark(mask: &mut [bool], from_line: usize, to_line: usize) {
    if from_line == 0 {
        return;
    }
    for l in from_line..=to_line.min(mask.len()) {
        mask[l - 1] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/sim/src/x.rs", src).unwrap()
    }

    #[test]
    fn test_mask_covers_attr_through_item_end() {
        let m = model(
            "fn a() { if x { y() } }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { z() }\n\
             }\n\
             fn b() {}\n",
        );
        assert_eq!(m.test_mask, vec![false, true, true, true, true, false],);
    }

    #[test]
    fn test_mask_handles_single_item_guards_and_attr_stacks() {
        let m = model(
            "#[cfg(test)]\nuse foo::bar;\n\
             #[cfg(test)]\n#[derive(Debug)]\nstruct T {\n    x: u32,\n}\n",
        );
        assert_eq!(m.test_mask, vec![true; 7]);
    }

    #[test]
    fn test_mask_respects_not_and_any() {
        let m = model("#[cfg(not(test))]\nfn a() {\n    b();\n}\n");
        assert_eq!(m.test_mask, vec![false; 4]);
        let m2 = model("#[cfg(any(test, feature = \"x\"))]\nfn a() {\n    b();\n}\n");
        assert_eq!(m2.test_mask, vec![true; 4]);
    }

    #[test]
    fn loop_mask_nesting_and_one_liners() {
        let m = model(
            "fn a() {\n\
                 let x = 1;\n\
                 for i in 0..x { f(i) }\n\
                 let y = 2;\n\
                 while y > 0 {\n\
                     loop {\n\
                         g();\n\
                     }\n\
                 }\n\
                 h();\n\
             }\n",
        );
        assert_eq!(
            m.loop_mask,
            vec![false, false, true, false, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn loop_mask_ignores_impl_for_and_hrtb() {
        let m = model(
            "impl Display\nfor Foo {\n    fn fmt(&self) {}\n}\n\
             fn g<F: for<'a> Fn(&'a u32)>(f: F) {\n    f(&1);\n}\n",
        );
        assert_eq!(m.loop_mask, vec![false; 7]);
    }

    #[test]
    fn loop_mask_skips_closure_braces_in_headers() {
        let m = model(
            "fn a(xs: &[u32]) {\n\
                 for x in xs.iter().map(|y| { y }) {\n\
                     f(x);\n\
                 }\n\
             }\n",
        );
        assert_eq!(m.loop_mask, vec![false, true, true, true, false]);
    }

    #[test]
    fn fn_extraction_names_visibility_params() {
        let m = model(
            "pub fn alpha(secs: f64, size: Bytes) -> f64 { secs }\n\
             pub(crate) fn beta(&self) {}\n\
             fn gamma<T: Clone>(x: T) -> T where T: Default { x }\n\
             trait T { fn decl(&self, n: u64); }\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma", "decl"]);
        assert!(m.fns[0].is_pub && m.fns[1].is_pub && !m.fns[2].is_pub);
        assert_eq!(m.fns[0].params.len(), 2);
        assert_eq!(m.fns[0].params[0].name, "secs");
        assert_eq!(m.fns[0].params[0].ty, vec!["f64"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[3].body.is_none(), "trait decl has no body");
        assert!(m.fns[2].body.is_some(), "where clause is stepped over");
        let ret = m.fns[0].ret.unwrap();
        assert!(m.tf.tokens[ret.0].tok.is_ident("f64"));
    }

    #[test]
    fn call_and_index_sites() {
        let m = model(
            "fn f(xs: &[u32], i: usize) -> u32 {\n\
                 helper(xs);\n\
                 xs.iter().count();\n\
                 vec![1, 2];\n\
                 #[allow(dead_code)]\n\
                 let a = [1, 2];\n\
                 xs[i] + a[0]\n\
             }\n",
        );
        let frees: Vec<&str> = m
            .free_calls()
            .iter()
            .map(|c| m.tf.tokens[c.name_idx].tok.ident().unwrap())
            .collect();
        assert!(frees.contains(&"helper"));
        let methods: Vec<&str> = m
            .method_calls()
            .iter()
            .map(|c| m.tf.tokens[c.name_idx].tok.ident().unwrap())
            .collect();
        assert_eq!(methods, vec!["iter", "count"]);
        let macros: Vec<&str> = m
            .macro_calls()
            .iter()
            .map(|c| m.tf.tokens[c.name_idx].tok.ident().unwrap())
            .collect();
        assert_eq!(macros, vec!["vec"]);
        // Exactly the two expression indexings; the attribute, the array
        // literal and the macro brackets don't count.
        assert_eq!(m.index_sites().len(), 2);
    }

    #[test]
    fn match_arms_and_wildcards() {
        let m = model(
            "fn f(e: E) -> u32 {\n\
                 match e {\n\
                     E::A { x } => x,\n\
                     E::B(..) if cond() => 2,\n\
                     E::C | _ => 0,\n\
                 }\n\
             }\n",
        );
        let ms = m.match_exprs();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
        assert!(!arm_is_wildcard(&m.tf, &ms[0].arms[0]));
        assert!(!arm_is_wildcard(&m.tf, &ms[0].arms[1]), "guard excluded");
        assert!(arm_is_wildcard(&m.tf, &ms[0].arms[2]), "or-pattern `_`");
    }

    #[test]
    fn chain_walk_reaches_root() {
        let m = model("fn f(m: M) -> f64 { m.values().map(|v| v.x).sum::<f64>() }\n");
        let calls = m.method_calls();
        let sum = calls
            .iter()
            .find(|c| m.tf.tokens[c.name_idx].tok.is_ident("sum"))
            .unwrap();
        let start = m.chain_start(sum.dot);
        assert!(m.tf.tokens[start].tok.is_ident("m"));
        let idents = m.chain_idents(start, sum.dot);
        assert!(idents.contains(&"values") && idents.contains(&"map"));
    }

    #[test]
    fn hash_bindings_found_outside_tests_only() {
        let m = model(
            "struct S {\n    index: HashMap<u32, u32>,\n}\n\
             fn f() {\n    let mut seen = HashSet::new();\n    seen.insert(1);\n}\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { let local = HashMap::new(); }\n}\n",
        );
        assert_eq!(m.hash_names, vec!["index", "seen"]);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let m = model(
            "fn outer() {\n\
                 fn inner() {\n\
                     target();\n\
                 }\n\
                 inner();\n\
             }\n",
        );
        let call = m
            .free_calls()
            .into_iter()
            .find(|c| m.tf.tokens[c.name_idx].tok.is_ident("target"))
            .unwrap();
        let fi = m.enclosing_fn(call.name_idx).unwrap();
        assert_eq!(m.fns[fi].name, "inner");
    }
}
