//! Custom static checks over `crates/*/src`.
//!
//! Ten rules guard the invariants the type system cannot express. They
//! run over a real token-level AST ([`crate::analyzer::FileModel`]):
//! each file is lexed once, test/loop masks are derived from actual
//! `#[cfg(test)]` attributes and loop expressions with matched
//! delimiters, and every rule matches token structure — not line
//! regexes. See `DESIGN.md` §13 for the architecture.
//!
//! * **L1 — typed time**: no `.as_secs()` escape from `SimTime` outside
//!   `crates/des/src/time.rs` and the allowlisted metrics boundary. Raw
//!   f64-seconds arithmetic is how unit bugs and catastrophic cancellation
//!   sneak into a DES; all clock math must stay behind the newtype.
//! * **L2 — determinism**: no `std::time::Instant`, `SystemTime` or
//!   `thread_rng` in the deterministic crates (`des`, `sim`, `core`,
//!   `sched`, `faults`, `obs`, `serve`). The simulator must be a pure
//!   function of (config, placement, workload, seed); wall-clock reads
//!   or OS entropy silently break replayability.
//! * **L3 — iteration order**: no iteration over `HashMap`/`HashSet` in
//!   simulation-order-sensitive code. Unordered iteration reorders
//!   tie-broken events between runs and platforms; use `Vec`, `BTreeMap`
//!   or sort before iterating.
//! * **L4 — no panic shortcuts**: no `.unwrap()`/`.expect(...)` in
//!   non-test code of the `des`/`sim`/`sched`/`faults`/`obs`/`serve`
//!   hot paths.
//! * **L5 — no dropped results**: no `let _ = f(...)` in non-test code
//!   of the hot paths — a discarded call result is almost always a
//!   swallowed `Result` or an audit-relevant value.
//! * **L6 — no hot-loop state copies**: no `.state().clone()` and no
//!   `.entries().to_vec()` inside loop bodies in non-test hot-path code.
//! * **L7 — float-reduction determinism**: no non-associative `f64`
//!   reduction (`.sum()`, `.product()`, `fold(.. + ..)`) over an
//!   iterator that is not provably order-stable (parallel iterators,
//!   `HashMap`/`HashSet` sources) in the deterministic crates. `f64`
//!   addition does not associate; an order-unstable reduction makes the
//!   golden fingerprints platform-dependent.
//! * **L8 — unit safety**: no public `fn` in `model`/`core`/`des`/
//!   `sim`/`sched` taking or returning a raw `f64`/`u64` whose name
//!   says seconds/bytes/position — those must cross APIs as `SimTime`
//!   or the `model::units` newtypes. The conversion boundaries
//!   (`des::time`, `model::units`) are exempt by construction.
//! * **L9 — TraceEvent exhaustiveness**: no wildcard `_` arm in a
//!   `match` over `TraceEvent` inside `des::audit` and `obs::spans`, so
//!   adding an event variant is a compile-visible obligation on the
//!   auditor and the time accountant.
//! * **L10 — panic reachability**: no `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` and no direct slice indexing in any function
//!   reachable (over the intra-workspace call graph, matched by name —
//!   a deliberate over-approximation) from the engine entry points
//!   (`run_queued*`, `run_scheduled*`, the sched/faults `dispatch*`
//!   loops, the serve crate's `serve_run` and `supervisor_run`, and the
//!   sim crate's `plan_with` seek-policy dispatcher — the exact-DP and
//!   approx planners must be panic-free on any input).
//!
//! Findings can be suppressed via `xtask/lint.allow`: one
//! `RULE path-substring` pair per line, `#` comments allowed. An
//! allowlist entry that suppresses **zero** findings is itself reported
//! (rule `ALLOW`): stale suppressions hide future regressions. Each rule
//! has a negative self-test below that seeds a violation into a temp
//! tree and asserts the lint fires, and a differential test proves the
//! AST-derived masks are a superset-or-equal of the old brace-counting
//! masks over the live workspace.

use crate::analyzer::{arm_is_wildcard, FileModel};
use crate::ast::Tok;
use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`L1`..`L10`, or `ALLOW` for a stale suppression).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
    /// Extra context (e.g. the L10 reachability chain); empty if none.
    pub note: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{}:{}: {}",
            self.rule, self.file, self.line, self.column, self.excerpt
        )?;
        if !self.note.is_empty() {
            write!(f, "  [{}]", self.note)?;
        }
        Ok(())
    }
}

/// One `RULE path-substring` suppression.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    path: String,
    /// 1-based line in `lint.allow`.
    line: usize,
}

/// Parsed `lint.allow`.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one `RULE path-substring` per line,
    /// blank lines and `#` comments ignored.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .enumerate()
            .filter_map(|(i, l)| {
                let l = l.trim();
                if l.is_empty() || l.starts_with('#') {
                    return None;
                }
                let (rule, path) = l.split_once(char::is_whitespace)?;
                Some(AllowEntry {
                    rule: rule.to_string(),
                    path: path.trim().to_string(),
                    line: i + 1,
                })
            })
            .collect();
        Allowlist { entries }
    }

    /// Index of the first entry suppressing (`rule`, `file`).
    fn match_idx(&self, rule: &str, file: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.rule == rule && file.contains(e.path.as_str()))
    }
}

/// Output format for `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

/// Entry point for `cargo xtask lint [--format human|json]`.
pub fn run(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format expects `human` or `json` (got {other:?})");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let allow_path = root.join("xtask/lint.allow");
    let allow = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let findings = match scan_workspace(&root, &allow) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    match format {
        Format::Json => println!("{}", to_json(&findings)),
        Format::Human => {
            if findings.is_empty() {
                eprintln!("xtask lint: clean (rules L1-L10 over crates/*/src)");
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!(
                    "xtask lint: {} finding(s). Fix them or add a justified entry to \
                     xtask/lint.allow.",
                    findings.len()
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders findings as a JSON array (hand-rolled: xtask stays
/// dependency-free, and the shim `serde_json` is a consumer-side shim).
fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"column\":{},\
                 \"excerpt\":\"{}\",\"note\":\"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                f.column,
                esc(&f.excerpt),
                esc(&f.note)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn workspace_root() -> PathBuf {
    // xtask lives directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Scans every `crates/*/src/**/*.rs` under `root`: per-file rules
/// L1–L9, the cross-file L10 reachability rule, allowlist filtering and
/// stale-allowlist detection.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<Vec<Finding>> {
    let models = build_models(root)?;
    let deps = crate_deps(root);
    let mut findings = Vec::new();
    for m in &models {
        findings.extend(per_file_findings(m));
    }
    findings.extend(l10_findings(&models, &deps));
    dedupe_sort(&mut findings);

    // Allowlist filtering, tracking which entries actually fire.
    let mut used = vec![0usize; allow.entries.len()];
    findings.retain(|f| match allow.match_idx(f.rule, &f.file) {
        Some(i) => {
            used[i] += 1;
            false
        }
        None => true,
    });
    for (i, entry) in allow.entries.iter().enumerate() {
        if used[i] == 0 {
            findings.push(Finding {
                rule: "ALLOW",
                file: "xtask/lint.allow".to_string(),
                line: entry.line,
                column: 1,
                excerpt: format!("stale allowlist entry: {} {}", entry.rule, entry.path),
                note: "suppresses zero findings; remove it".to_string(),
            });
        }
    }
    Ok(findings)
}

/// Parses every workspace source file into a [`FileModel`].
fn build_models(root: &Path) -> std::io::Result<Vec<FileModel>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut models = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        let model = FileModel::build(&rel, &content)
            .map_err(|e| std::io::Error::other(format!("{rel}: {e}")))?;
        models.push(model);
    }
    Ok(models)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Which rule families apply to a file, by crate.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

const DETERMINISTIC: &[&str] = &["des", "sim", "core", "sched", "faults", "obs", "serve"];
const HOT_PATH: &[&str] = &["des", "sim", "sched", "faults", "obs", "serve"];
/// Crates whose public APIs must use `SimTime` / `model::units` newtypes.
const UNIT_CRATES: &[&str] = &["model", "core", "des", "sim", "sched"];
/// The sanctioned conversion boundaries: these files *define* the
/// newtype↔raw conversions, so raw seconds/bytes in their signatures are
/// the point, not a leak.
const UNIT_BOUNDARY_FILES: &[&str] = &["crates/des/src/time.rs", "crates/model/src/units.rs"];

/// Iteration verbs whose receiver order becomes observable.
const ITER_VERBS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];
/// Rayon-style adapters whose reduction order is scheduling-dependent.
const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
];
/// Identifier segments that name seconds, bytes or tape positions.
const UNIT_SEGMENTS: &[&str] = &[
    "sec", "secs", "second", "seconds", "byte", "bytes", "track", "pos", "position", "offset",
    "duration", "latency", "elapsed",
];

fn dedupe_sort(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    findings.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.column == b.column
    });
}

/// L1–L9 over one parsed file.
fn per_file_findings(m: &FileModel) -> Vec<Finding> {
    let Some(krate) = crate_of(&m.rel) else {
        return Vec::new();
    };
    let deterministic = DETERMINISTIC.contains(&krate);
    let hot = HOT_PATH.contains(&krate);
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line: usize, column: usize, note: String| {
        out.push(Finding {
            rule,
            file: m.rel.clone(),
            line,
            column,
            excerpt: m.excerpt(line),
            note,
        });
    };

    let methods = m.method_calls();

    // L1: typed time — `.as_secs()` escapes outside des::time (test code
    // converting for assertions is fine).
    if m.rel != "crates/des/src/time.rs" {
        for c in &methods {
            let line = m.tf.line(c.name_idx);
            if m.tf.tokens[c.name_idx].tok.is_ident("as_secs") && !m.line_in_test(line) {
                push("L1", line, m.tf.col(c.name_idx), String::new());
            }
        }
    }

    // L2: determinism — wall clocks and OS entropy, anywhere in the file
    // (even tests: a time- or entropy-dependent test is a flaky test).
    if deterministic {
        for (i, t) in m.tf.tokens.iter().enumerate() {
            if ["Instant", "SystemTime", "thread_rng"]
                .iter()
                .any(|p| t.tok.is_ident(p))
            {
                push("L2", m.tf.line(i), m.tf.col(i), String::new());
            }
        }
    }

    // L3: unordered iteration — an iteration verb whose receiver chain
    // roots in a HashMap/HashSet binding or constructs one inline, and
    // `for` loops over such a binding.
    if deterministic {
        for c in &methods {
            let name = &m.tf.tokens[c.name_idx].tok;
            let line = m.tf.line(c.name_idx);
            if m.line_in_test(line) || !ITER_VERBS.iter().any(|v| name.is_ident(v)) {
                continue;
            }
            let start = m.chain_start(c.dot);
            if chain_touches_hash(m, start, c.dot) {
                push("L3", line, m.tf.col(c.name_idx), String::new());
            }
        }
        for (for_idx, expr) in for_loop_exprs(m) {
            let line = m.tf.line(for_idx);
            if m.line_in_test(line) {
                continue;
            }
            if chain_touches_hash(m, expr.0, expr.1) {
                push("L3", line, m.tf.col(for_idx), String::new());
            }
        }
    }

    // L4: panic shortcuts in hot paths (non-test code only).
    if hot {
        for c in &methods {
            let name = &m.tf.tokens[c.name_idx].tok;
            let line = m.tf.line(c.name_idx);
            if (name.is_ident("unwrap") || name.is_ident("expect")) && !m.line_in_test(line) {
                push("L4", line, m.tf.col(c.name_idx), String::new());
            }
        }
    }

    // L5: dropped call results in hot paths (non-test code only). A bare
    // `let _ = name;` rebinding is fine; `let _ =` on anything that
    // calls is a silently swallowed result.
    if hot {
        let t = &m.tf;
        for i in 0..t.tokens.len() {
            if !(t.tokens[i].tok.is_ident("let")
                && t.get(i + 1).is_some_and(|x| x.is_ident("_"))
                && t.get(i + 2).is_some_and(|x| x.is_punct('=')))
            {
                continue;
            }
            let line = t.line(i);
            if m.line_in_test(line) {
                continue;
            }
            let mut j = i + 3;
            let mut has_call = false;
            while j < t.tokens.len() {
                match &t.tokens[j].tok {
                    Tok::Punct(';') => break,
                    Tok::Open('(') => {
                        has_call = true;
                        break;
                    }
                    Tok::Open(_) => j = t.skip_group(j),
                    _ => j += 1,
                }
            }
            if has_call {
                push("L5", line, t.col(i), String::new());
            }
        }
    }

    // L6: per-iteration state copies in hot paths (non-test code only).
    if hot {
        for c in &methods {
            let line = m.tf.line(c.name_idx);
            if m.line_in_test(line) || !m.line_in_loop(line) {
                continue;
            }
            let pairs: &[(&str, &str)] = &[("state", "clone"), ("entries", "to_vec")];
            for (recv, call) in pairs {
                if m.tf.tokens[c.name_idx].tok.is_ident(call) && receiver_is_call_of(m, c.dot, recv)
                {
                    push("L6", line, m.tf.col(c.name_idx), String::new());
                }
            }
        }
    }

    // L7: non-associative f64 reductions over order-unstable iterators.
    if deterministic {
        for c in &methods {
            let name = &m.tf.tokens[c.name_idx].tok;
            let line = m.tf.line(c.name_idx);
            if m.line_in_test(line) {
                continue;
            }
            let is_fold = name.is_ident("fold");
            if !(is_fold || name.is_ident("sum") || name.is_ident("product")) {
                continue;
            }
            let start = m.chain_start(c.dot);
            let idents = m.chain_idents(start, c.dot);
            let parallel = idents.iter().any(|i| PAR_ADAPTERS.contains(i));
            let hash_sourced = idents.iter().any(|i| ITER_VERBS.contains(i))
                && (idents.iter().any(|i| m.hash_names.iter().any(|h| h == i))
                    || idents.iter().any(|i| *i == "HashMap" || *i == "HashSet"));
            if !(parallel || hash_sourced) {
                continue;
            }
            if reduction_is_float(m, c, start) {
                push(
                    "L7",
                    line,
                    m.tf.col(c.name_idx),
                    "f64 reduction over an order-unstable iterator".to_string(),
                );
            }
        }
    }

    // L8: unit safety of public signatures.
    if UNIT_CRATES.contains(&krate) && !UNIT_BOUNDARY_FILES.contains(&m.rel.as_str()) {
        for f in &m.fns {
            if !f.is_pub || f.in_test {
                continue;
            }
            for p in &f.params {
                let raw = p.ty == ["f64"] || p.ty == ["u64"];
                if raw && has_unit_segment(&p.name) {
                    push(
                        "L8",
                        p.line,
                        p.col,
                        format!(
                            "parameter `{}: {}` smells of raw units; use SimTime / model::units",
                            p.name,
                            p.ty.join("")
                        ),
                    );
                }
            }
            if let Some((rs, re)) = f.ret {
                let idents: Vec<&str> = m.tf.tokens[rs..re]
                    .iter()
                    .filter_map(|t| t.tok.ident())
                    .collect();
                let raw_only =
                    !idents.is_empty() && idents.iter().all(|i| *i == "f64" || *i == "u64");
                if raw_only && has_unit_segment(&f.name) {
                    push(
                        "L8",
                        f.line,
                        f.col,
                        format!(
                            "`{}` returns raw {}; use SimTime / model::units",
                            f.name,
                            idents.join("/")
                        ),
                    );
                }
            }
        }
    }

    // L9: TraceEvent exhaustiveness in the auditor and time accountant.
    let l9_scope =
        m.rel.starts_with("crates/des/src/audit") || m.rel.starts_with("crates/obs/src/spans");
    if l9_scope {
        for me in m.match_exprs() {
            let line = m.tf.line(me.kw);
            if m.line_in_test(line) {
                continue;
            }
            let mentions_trace_event = m
                .chain_idents(me.scrutinee.0, me.scrutinee.1)
                .contains(&"TraceEvent")
                || me.arms.iter().any(|a| {
                    m.tf.tokens[a.pat.0..a.pat.1]
                        .iter()
                        .any(|t| t.tok.is_ident("TraceEvent"))
                });
            if !mentions_trace_event {
                continue;
            }
            for arm in &me.arms {
                if arm_is_wildcard(&m.tf, arm) {
                    push(
                        "L9",
                        m.tf.line(arm.pat.0),
                        m.tf.col(arm.pat.0),
                        "wildcard arm over TraceEvent; list the variants".to_string(),
                    );
                }
            }
        }
    }

    out
}

/// Splits `name` on `_` and checks for a seconds/bytes/position segment.
fn has_unit_segment(name: &str) -> bool {
    name.split('_').any(|seg| UNIT_SEGMENTS.contains(&seg))
}

/// Does the chain `[start, end)` mention a HashMap/HashSet binding or
/// type?
fn chain_touches_hash(m: &FileModel, start: usize, end: usize) -> bool {
    let idents = m.chain_idents(start, end);
    idents.iter().any(|i| *i == "HashMap" || *i == "HashSet")
        || idents.iter().any(|i| m.hash_names.iter().any(|h| h == i))
}

/// For every loop-`for`, the token range of its iterated expression.
fn for_loop_exprs(m: &FileModel) -> Vec<(usize, (usize, usize))> {
    let t = &m.tf;
    let mut out = Vec::new();
    for i in 0..t.tokens.len() {
        if !t.tokens[i].tok.is_ident("for") {
            continue;
        }
        // Find the `in` and the body `{` the analyzer's loop mask used.
        let mut j = i + 1;
        let mut in_idx = None;
        while j < t.tokens.len() {
            match &t.tokens[j].tok {
                Tok::Ident(w) if w == "in" => {
                    in_idx = Some(j);
                    break;
                }
                Tok::Open('{') | Tok::Close(_) => break,
                Tok::Punct(';') => break,
                Tok::Open(_) => j = t.skip_group(j),
                _ => j += 1,
            }
        }
        let Some(in_idx) = in_idx else { continue };
        let mut k = in_idx + 1;
        while k < t.tokens.len() {
            match &t.tokens[k].tok {
                Tok::Open('{') if !t.tokens[k - 1].tok.is_punct('|') => break,
                Tok::Open(_) => k = t.skip_group(k),
                Tok::Punct(';') | Tok::Close(_) => break,
                _ => k += 1,
            }
        }
        out.push((i, (in_idx + 1, k)));
    }
    out
}

/// Is the receiver of the method call at `dot` itself a call of
/// `recv_name` (`x.recv_name().this()`)?
fn receiver_is_call_of(m: &FileModel, dot: usize, recv_name: &str) -> bool {
    let t = &m.tf;
    let Some(close) = dot.checked_sub(1) else {
        return false;
    };
    if !matches!(t.tokens[close].tok, Tok::Close(')')) {
        return false;
    }
    let open = t.match_of[close];
    open >= 1 && t.tokens[open - 1].tok.is_ident(recv_name)
}

/// Float evidence for an L7 reduction: an `f64` turbofish, an `f64`
/// `let` annotation, a float literal in a `fold` seed (plus a `+` in its
/// body), or an `f64` conversion inside the chain.
fn reduction_is_float(m: &FileModel, c: &crate::analyzer::MethodCall, chain_start: usize) -> bool {
    let t = &m.tf;
    // Turbofish: `.sum::<f64>()`.
    let turbofish_f64 = t.tokens[c.name_idx + 1..c.args_open]
        .iter()
        .any(|x| x.tok.is_ident("f64") || x.tok.is_ident("f32"));
    if turbofish_f64 {
        return true;
    }
    let name = &t.tokens[c.name_idx].tok;
    if name.is_ident("fold") {
        // Non-associative only if the body adds; seed must be floaty.
        let close = t.match_of[c.args_open];
        let args = &t.tokens[c.args_open + 1..close];
        let has_add = args.iter().any(|x| x.tok.is_punct('+'));
        let floaty = args
            .iter()
            .any(|x| matches!(x.tok, Tok::Num { float: true, .. }) || x.tok.is_ident("f64"));
        return has_add && floaty;
    }
    // `let total: f64 = chain...;`
    if chain_start >= 3
        && t.tokens[chain_start - 1].tok.is_punct('=')
        && t.tokens[chain_start - 2].tok.is_ident("f64")
        && t.tokens[chain_start - 3].tok.is_punct(':')
    {
        return true;
    }
    // An `as f64` / float literal inside the chain (e.g. in a `.map`).
    t.tokens[chain_start..c.dot]
        .iter()
        .any(|x| matches!(x.tok, Tok::Num { float: true, .. }) || x.tok.is_ident("f64"))
}

// ---------------------------------------------------------------------
// L10: panic reachability over the intra-workspace call graph.
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Direct intra-workspace dependencies, keyed by crate *directory* name
/// (the package `tapesim-placement` lives in `crates/core`). Name-matched
/// call edges are only admitted along these edges (or within a crate):
/// without this, a generic method name like `run` teleports the L10
/// walk into crates the caller cannot even link against.
type CrateDeps = BTreeMap<String, Vec<String>>;

/// Parses `crates/*/Cargo.toml` into the direct-dependency map. Missing
/// or unparsable manifests (e.g. test fixture trees) yield no entry,
/// which restricts that crate to same-crate edges — the conservative
/// default for fixtures.
fn crate_deps(root: &Path) -> CrateDeps {
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return CrateDeps::new();
    };
    for entry in entries.flatten() {
        let dir = entry.file_name().to_string_lossy().to_string();
        let Ok(manifest) = fs::read_to_string(entry.path().join("Cargo.toml")) else {
            continue;
        };
        let mut pkg = String::new();
        let mut deps = Vec::new();
        let mut section = "";
        for line in manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                section = line;
                continue;
            }
            if section == "[package]" && line.starts_with("name") {
                if let Some(name) = line.split('"').nth(1) {
                    pkg = name.to_string();
                }
            }
            if section == "[dependencies]" {
                if let Some(dep) = line.split(['=', ' ', '.']).next() {
                    if dep.starts_with("tapesim-") {
                        deps.push(dep.to_string());
                    }
                }
            }
        }
        if !pkg.is_empty() {
            pkg_to_dir.insert(pkg, dir.clone());
        }
        raw.push((dir, deps));
    }
    raw.into_iter()
        .map(|(dir, deps)| {
            let dirs = deps
                .iter()
                .filter_map(|d| pkg_to_dir.get(d).cloned())
                .collect();
            (dir, dirs)
        })
        .collect()
}

/// May a fn in `caller` crate-dir call into `callee` crate-dir?
fn dep_edge_ok(deps: &CrateDeps, caller: &str, callee: &str) -> bool {
    caller == callee
        || deps
            .get(caller)
            .is_some_and(|ds| ds.iter().any(|d| d == callee))
}

/// A call-graph node: one non-test fn in one file.
struct Node {
    model: usize,
    fn_idx: usize,
    /// Names this fn calls (free calls, path calls and method names).
    calls: Vec<String>,
    /// Panic-family macro sites in the body: (line, col, macro name).
    panics: Vec<(usize, usize, String)>,
    /// Direct index-expression sites in the body: (line, col).
    indexes: Vec<(usize, usize)>,
}

/// Is this fn an engine entry point?
fn is_root(krate: &str, name: &str) -> bool {
    name.starts_with("run_queued")
        || name.starts_with("run_scheduled")
        || (matches!(krate, "sched" | "faults") && name.starts_with("dispatch"))
        || (krate == "serve" && name.starts_with("serve_run"))
        || (krate == "serve" && name.starts_with("supervisor_run"))
        // The parallel gears: the window runner (des) and the
        // partitioned scheduler entry (sched). `run_scheduled_parallel`
        // and `run_scheduled_faulty_parallel` are already covered by the
        // `run_scheduled` prefix above.
        || (krate == "des" && name.starts_with("run_windowed"))
        || (krate == "sched" && name.starts_with("run_partitioned"))
        // The seek-policy dispatcher: every planner (greedy sweep,
        // exact LTSP DP, ratio-2 approx) hangs off this entry, so the
        // DP's state/replay machinery is lint-forced to stay index-free.
        || (krate == "sim" && name.starts_with("plan_with"))
}

/// Builds the graph, BFS-marks reachability from the engine roots, and
/// reports reachable panic sites and index expressions.
fn l10_findings(models: &[FileModel], deps: &CrateDeps) -> Vec<Finding> {
    let mut nodes = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (mi, m) in models.iter().enumerate() {
        if crate_of(&m.rel).is_none() {
            continue;
        }
        // Pre-collect sites per model, then attribute to innermost fns.
        let mut calls_at: Vec<(usize, String)> = Vec::new();
        for c in m.free_calls() {
            if let Some(name) = m.tf.tokens[c.name_idx].tok.ident() {
                calls_at.push((c.name_idx, name.to_string()));
            }
        }
        for c in m.method_calls() {
            if let Some(name) = m.tf.tokens[c.name_idx].tok.ident() {
                calls_at.push((c.name_idx, name.to_string()));
            }
        }
        let mut panics_at: Vec<(usize, String)> = Vec::new();
        for mc in m.macro_calls() {
            if let Some(name) = m.tf.tokens[mc.name_idx].tok.ident() {
                if PANIC_MACROS.contains(&name) {
                    panics_at.push((mc.name_idx, name.to_string()));
                }
            }
        }
        let index_at: Vec<usize> = m.index_sites();

        for (fi, f) in m.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            let (open, close) = f.body.unwrap_or((0, 0));
            let within = |idx: usize| idx > open && idx < close;
            let owned = |idx: usize| m.enclosing_fn(idx) == Some(fi);
            let node = Node {
                model: mi,
                fn_idx: fi,
                calls: calls_at
                    .iter()
                    .filter(|(i, _)| within(*i) && owned(*i))
                    .map(|(_, n)| n.clone())
                    .collect(),
                panics: panics_at
                    .iter()
                    .filter(|(i, _)| within(*i) && owned(*i) && !m.line_in_test(m.tf.line(*i)))
                    .map(|(i, n)| (m.tf.line(*i), m.tf.col(*i), n.clone()))
                    .collect(),
                indexes: index_at
                    .iter()
                    .filter(|&&i| within(i) && owned(i) && !m.line_in_test(m.tf.line(i)))
                    .map(|&i| (m.tf.line(i), m.tf.col(i)))
                    .collect(),
            };
            nodes.push(node);
        }
    }
    for (ni, n) in nodes.iter().enumerate() {
        let name = models[n.model].fns[n.fn_idx].name.as_str();
        by_name.entry(name).or_default().push(ni);
    }

    // BFS from the engine roots, recording one predecessor per node so a
    // finding can show its reachability chain.
    let mut pred: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached = vec![false; nodes.len()];
    let mut queue = VecDeque::new();
    for (ni, n) in nodes.iter().enumerate() {
        let m = &models[n.model];
        let f = &m.fns[n.fn_idx];
        if crate_of(&m.rel).is_some_and(|k| is_root(k, &f.name)) {
            reached[ni] = true;
            queue.push_back(ni);
        }
    }
    while let Some(ni) = queue.pop_front() {
        let caller_crate = crate_of(&models[nodes[ni].model].rel).unwrap_or("");
        for callee in &nodes[ni].calls {
            if let Some(targets) = by_name.get(callee.as_str()) {
                for &ti in targets {
                    let callee_crate = crate_of(&models[nodes[ti].model].rel).unwrap_or("");
                    if !dep_edge_ok(deps, caller_crate, callee_crate) {
                        continue;
                    }
                    if !reached[ti] {
                        reached[ti] = true;
                        pred[ti] = Some(ni);
                        queue.push_back(ti);
                    }
                }
            }
        }
    }

    let chain_of = |mut ni: usize| -> String {
        let mut names = vec![models[nodes[ni].model].fns[nodes[ni].fn_idx].name.clone()];
        while let Some(p) = pred[ni] {
            names.push(models[nodes[p].model].fns[nodes[p].fn_idx].name.clone());
            ni = p;
        }
        names.reverse();
        format!("reachable: {}", names.join(" -> "))
    };

    let mut out = Vec::new();
    for (ni, n) in nodes.iter().enumerate() {
        if !reached[ni] {
            continue;
        }
        let m = &models[n.model];
        for (line, col, mac) in &n.panics {
            out.push(Finding {
                rule: "L10",
                file: m.rel.clone(),
                line: *line,
                column: *col,
                excerpt: m.excerpt(*line),
                note: format!("{}! — {}", mac, chain_of(ni)),
            });
        }
        for (line, col) in &n.indexes {
            out.push(Finding {
                rule: "L10",
                file: m.rel.clone(),
                line: *line,
                column: *col,
                excerpt: m.excerpt(*line),
                note: format!("slice indexing — {}", chain_of(ni)),
            });
        }
    }
    out
}

#[cfg(test)]
mod legacy {
    //! The pre-AST brace-counting masks, kept verbatim for the
    //! differential test below: the AST-derived masks must mark every
    //! line these marked (superset-or-equal) on the live workspace, or
    //! the rewrite silently un-guarded code the old lint guarded.

    /// Marks lines inside loop bodies by brace matching.
    pub fn loop_line_mask(content: &str) -> Vec<bool> {
        let lines: Vec<&str> = content.lines().collect();
        let mut mask = vec![false; lines.len()];
        let mut depth: i64 = 0;
        // Close depths of currently-open loop bodies (innermost last).
        let mut regions: Vec<i64> = Vec::new();
        let mut pending_loop = false;
        for (i, raw) in lines.iter().enumerate() {
            let code = code_portion(raw);
            if !regions.is_empty() {
                mask[i] = true;
            }
            let trimmed = code.trim_start();
            let starts_loop = trimmed.starts_with("for ")
                || trimmed.starts_with("while ")
                || trimmed == "loop"
                || trimmed.starts_with("loop ")
                || trimmed.starts_with("loop{");
            if starts_loop {
                mask[i] = true;
                pending_loop = true;
            }
            let before = depth;
            depth += brace_delta(&code);
            if pending_loop {
                if depth > before {
                    regions.push(before);
                    pending_loop = false;
                } else if code.contains('{') {
                    // One-liner body (`for x in xs { f() }`): opened and
                    // closed on this line, which is already masked.
                    pending_loop = false;
                }
            }
            while regions.last().is_some_and(|&close| depth <= close) {
                regions.pop();
            }
        }
        mask
    }

    /// Marks lines inside `#[cfg(test)]`-guarded items by brace matching.
    pub fn test_line_mask(content: &str) -> Vec<bool> {
        let lines: Vec<&str> = content.lines().collect();
        let mut mask = vec![false; lines.len()];
        let mut depth: i64 = 0;
        // Depth at which a test region closes (region is active while
        // depth > entry depth after the region's opening brace).
        let mut region_close_depth: Option<i64> = None;
        let mut pending_cfg_test = false;
        for (i, raw) in lines.iter().enumerate() {
            let code = code_portion(raw);
            let trimmed = code.trim();
            if region_close_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
                mask[i] = true;
                depth += brace_delta(&code);
                continue;
            }
            let before = depth;
            depth += brace_delta(&code);
            if let Some(close) = region_close_depth {
                mask[i] = true;
                if depth <= close {
                    region_close_depth = None;
                }
            } else if pending_cfg_test {
                mask[i] = true;
                // Attributes / doc lines between the cfg and the item keep
                // the pending flag; the first line that opens a brace
                // starts the region.
                if depth > before {
                    region_close_depth = Some(before);
                    pending_cfg_test = false;
                } else if trimmed.ends_with(';') {
                    // `#[cfg(test)] use ...;` — single-item guard, no region.
                    pending_cfg_test = false;
                }
            }
        }
        mask
    }

    /// Net `{`/`}` balance of a line, ignoring braces in strings, chars
    /// and comments.
    fn brace_delta(code: &str) -> i64 {
        let mut delta = 0i64;
        let mut chars = code.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            if in_str {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                // Character literal like '{' — skip its body conservatively.
                '\'' => {
                    if let Some(&n) = chars.peek() {
                        if n == '\\' {
                            chars.next();
                            chars.next();
                            chars.next();
                        } else if chars.clone().nth(1) == Some('\'') {
                            chars.next();
                            chars.next();
                        }
                        // Otherwise it's a lifetime; leave the stream alone.
                    }
                }
                '{' => delta += 1,
                '}' => delta -= 1,
                _ => {}
            }
        }
        delta
    }

    /// The line with `//` comments and string-literal contents removed,
    /// so pattern matching never fires on prose or literals.
    fn code_portion(line: &str) -> String {
        let mut out = String::with_capacity(line.len());
        let mut chars = line.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            if in_str {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => {
                        in_str = false;
                        out.push('"');
                    }
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    out.push('"');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A scratch workspace tree under the system temp dir.
    struct Fixture {
        root: PathBuf,
    }

    static FIXTURE_SEQ: AtomicU32 = AtomicU32::new(0);

    impl Fixture {
        fn new() -> Fixture {
            let n = FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed);
            let root =
                std::env::temp_dir().join(format!("tapesim-lint-test-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }

        fn scan(&self, allow: &Allowlist) -> Vec<Finding> {
            scan_workspace(&self.root, allow).unwrap()
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l1_fires_on_as_secs_escape() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn f(t: SimTime) -> f64 {\n    t.as_secs() * 2.0\n}\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L1"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn l1_spares_time_rs_tests_and_allowlisted_files() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/time.rs",
            "pub fn as_secs(self) -> f64 { self.0.as_secs() }\n",
        );
        fx.write(
            "crates/des/src/stats.rs",
            "pub fn mean(t: SimTime) -> f64 { t.as_secs() }\n",
        );
        fx.write(
            "crates/sim/src/ok.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(t: SimTime) -> f64 { t.as_secs() }\n}\n",
        );
        let allow = Allowlist::parse("# metrics boundary\nL1 crates/des/src/stats.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn l2_fires_on_wall_clock_and_entropy() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn f() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n",
        );
        fx.write(
            "crates/core/src/bad.rs",
            "pub fn g() -> u64 {\n    rand::thread_rng().next_u64()\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L2", "L2"]);
    }

    #[test]
    fn l2_ignores_non_deterministic_crates_and_comments() {
        let fx = Fixture::new();
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn f() { let _ = std::time::Instant::now(); }\n",
        );
        fx.write(
            "crates/des/src/ok.rs",
            "// A comment mentioning SystemTime and thread_rng is fine.\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l3_fires_on_hashmap_iteration() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
             \x20   let mut counts = HashMap::new();\n\
             \x20   counts.insert(1u32, 2u32);\n\
             \x20   counts.values().sum::<u32>()\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L3"]);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn l3_allows_membership_use_without_iteration() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/ok.rs",
            "use std::collections::HashSet;\n\
             pub fn f(xs: &[u32]) -> bool {\n\
             \x20   let mut seen = HashSet::new();\n\
             \x20   xs.iter().all(|x| seen.insert(*x))\n\
             }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l3_sees_through_multiline_chains() {
        // The old line-regex scanner only fired when the verb and the
        // HashMap landed on the same line; the AST chain walk does not
        // care about line breaks.
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "use std::collections::HashMap;\n\
             pub fn f() -> u32 {\n\
             \x20   let mut counts = HashMap::new();\n\
             \x20   counts.insert(1u32, 2u32);\n\
             \x20   counts\n\
             \x20       .values()\n\
             \x20       .copied()\n\
             \x20       .max()\n\
             \x20       .unwrap_or(0)\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L3"]);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn l4_fires_on_unwrap_and_expect_in_hot_paths() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        );
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn g(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L4", "L4"]);
    }

    #[test]
    fn l4_spares_tests_other_crates_and_unwrap_or() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/ok.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { assert_eq!(super::f(Some(3)), Some(3).unwrap()); }\n\
             }\n",
        );
        fx.write(
            "crates/cluster/src/ok.rs",
            "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l5_fires_on_dropped_call_result_in_scoped_crates() {
        let fx = Fixture::new();
        fx.write(
            "crates/faults/src/bad.rs",
            "pub fn f(r: &mut Resource) {\n    let _ = r.acquire(now, d);\n}\n",
        );
        fx.write(
            "crates/sched/src/bad.rs",
            "pub fn g() {\n    let _ = std::fs::write(\"x\", \"y\");\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L5", "L5"]);
    }

    #[test]
    fn l5_spares_plain_rebinds_tests_other_crates_and_allowlisted() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/ok.rs",
            "pub fn f(x: u32) {\n    let _ = x;\n}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = super::helper(); }\n\
             }\n",
        );
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn g() { let _ = std::fs::remove_file(\"x\"); }\n",
        );
        fx.write(
            "crates/sim/src/justified.rs",
            "pub fn h() { let _ = best_effort_flush(); }\n",
        );
        let allow = Allowlist::parse("L5 crates/sim/src/justified.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn l6_fires_on_state_clone_and_trace_copy_in_loops() {
        let fx = Fixture::new();
        fx.write(
            "crates/sched/src/bad.rs",
            "pub fn f(sim: &Simulator) {\n\
             \x20   for _ in 0..10 {\n\
             \x20       let state = sim.state().clone();\n\
             \x20       consume(state);\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn g(tracer: &Tracer) {\n\
             \x20   while more() {\n\
             \x20       audit(tracer.entries().to_vec());\n\
             \x20   }\n\
             }\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L6", "L6"]);
    }

    #[test]
    fn l6_spares_top_level_clones_tests_other_crates_and_allowlisted() {
        let fx = Fixture::new();
        // A once-per-run snapshot before the loop is the sanctioned shape.
        fx.write(
            "crates/sim/src/ok.rs",
            "pub fn f(sim: &Simulator) {\n\
             \x20   let state = sim.state().clone();\n\
             \x20   for _ in 0..10 {\n\
             \x20       consume(&state);\n\
             \x20   }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(sim: &Simulator) {\n\
             \x20       for _ in 0..2 {\n\
             \x20           let _s = sim.state().clone();\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn g(sim: &Simulator) {\n\
             \x20   loop {\n\
             \x20       let _s = sim.state().clone();\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/faults/src/justified.rs",
            "pub fn h(t: &Tracer) {\n\
             \x20   for _ in 0..2 {\n\
             \x20       keep(t.entries().to_vec());\n\
             \x20   }\n\
             }\n",
        );
        let allow = Allowlist::parse("L6 crates/faults/src/justified.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn l7_fires_on_parallel_float_sum_and_float_fold() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn f(xs: &[f64]) -> f64 {\n\
             \x20   xs.par_iter().sum::<f64>()\n\
             }\n\
             pub fn g(xs: &[f64]) -> f64 {\n\
             \x20   xs.par_iter().copied().fold(0.0, |a, b| a + b)\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L7", "L7"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 5);
    }

    #[test]
    fn l7_fires_on_hash_sourced_float_sum() {
        let fx = Fixture::new();
        fx.write(
            "crates/sched/src/bad.rs",
            "use std::collections::HashMap;\n\
             pub fn f() -> f64 {\n\
             \x20   let mut weights = HashMap::new();\n\
             \x20   weights.insert(1u32, 0.5f64);\n\
             \x20   weights.values().sum::<f64>()\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        // The same site also violates L3 (hash iteration); both must fire.
        assert_eq!(rules_of(&findings), vec!["L3", "L7"]);
        assert_eq!(findings[1].line, 5);
    }

    #[test]
    fn l7_spares_slice_sums_integer_sums_and_non_additive_folds() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/ok.rs",
            "pub fn f(xs: &[f64]) -> f64 {\n\
             \x20   xs.iter().sum::<f64>()\n\
             }\n\
             pub fn g(xs: &[u64]) -> u64 {\n\
             \x20   xs.par_iter().sum::<u64>()\n\
             }\n\
             pub fn h(xs: &[u32]) -> Vec<u32> {\n\
             \x20   xs.par_iter().fold(Vec::new(), |mut v, x| { v.push(*x); v })\n\
             }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l7_fires_on_summing_partition_metrics_in_thread_completion_order() {
        // The parallel-merge anti-pattern: partition busy-time deltas
        // come off worker threads in completion order, and a float sum
        // over that order changes bits run to run. The real merge
        // replays the deltas by sorted OpKey instead.
        let fx = Fixture::new();
        fx.write(
            "crates/sched/src/bad_merge.rs",
            "pub fn merged_busy(done: std::sync::mpsc::Receiver<f64>) -> f64 {\n\
             \x20   done.into_iter().par_bridge().sum::<f64>()\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L7"]);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].note.contains("order-unstable"));
    }

    #[test]
    fn l8_fires_on_raw_unit_params_and_returns() {
        let fx = Fixture::new();
        fx.write(
            "crates/model/src/bad.rs",
            "pub fn seek_seconds(dist: u64) -> f64 {\n\
             \x20   dist as f64 * 0.001\n\
             }\n\
             impl Layout {\n\
             \x20   pub fn set(&mut self, offset_bytes: u64) {\n\
             \x20       self.off = offset_bytes;\n\
             \x20   }\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L8", "L8"]);
        // The return-side finding anchors at the fn, the param-side
        // finding at the parameter.
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 5);
        assert!(findings[1].note.contains("offset_bytes"));
    }

    #[test]
    fn l8_spares_newtypes_private_fns_tests_and_boundary_files() {
        let fx = Fixture::new();
        fx.write(
            "crates/model/src/ok.rs",
            "pub fn elapsed_time(t: SimTime) -> SimTime { t }\n\
             fn seek_seconds(dist: u64) -> f64 { dist as f64 }\n\
             pub fn ratio(x: f64) -> f64 { x }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   pub fn bytes_used(bytes: u64) -> u64 { bytes }\n\
             }\n",
        );
        fx.write(
            "crates/model/src/units.rs",
            "pub fn from_bytes(bytes: u64) -> Bytes { Bytes(bytes) }\n",
        );
        fx.write(
            "crates/obs/src/ok.rs",
            "pub fn budget_seconds(seconds: f64) -> f64 { seconds }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l9_fires_on_wildcard_trace_event_arm() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/audit.rs",
            "pub fn f(e: &TraceEvent) -> u32 {\n\
             \x20   match e {\n\
             \x20       TraceEvent::Mounted { .. } => 1,\n\
             \x20       _ => 0,\n\
             \x20   }\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L9"]);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn l9_spares_exhaustive_matches_other_enums_other_files_and_tests() {
        let fx = Fixture::new();
        // Exhaustive TraceEvent match: fine.
        fx.write(
            "crates/des/src/audit.rs",
            "pub fn f(e: &TraceEvent) -> u32 {\n\
             \x20   match e {\n\
             \x20       TraceEvent::Mounted { .. } => 1,\n\
             \x20       TraceEvent::Unmounted { .. } => 2,\n\
             \x20   }\n\
             }\n",
        );
        // Wildcard over a different enum in scope: fine.
        fx.write(
            "crates/obs/src/spans.rs",
            "pub fn g(k: Kind) -> u32 {\n\
             \x20   match k {\n\
             \x20       Kind::A => 1,\n\
             \x20       _ => 0,\n\
             \x20   }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(e: &TraceEvent) -> u32 {\n\
             \x20       match e {\n\
             \x20           TraceEvent::Mounted { .. } => 1,\n\
             \x20           _ => 0,\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        );
        // Wildcard TraceEvent match outside the audited files: fine.
        fx.write(
            "crates/sim/src/other.rs",
            "pub fn h(e: &TraceEvent) -> u32 {\n\
             \x20   match e {\n\
             \x20       TraceEvent::Mounted { .. } => 1,\n\
             \x20       _ => 0,\n\
             \x20   }\n\
             }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l10_fires_on_reachable_panics_and_indexing_with_chain() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn run_queued_fx(n: usize) -> u32 {\n\
             \x20   step(n)\n\
             }\n\
             fn step(n: usize) -> u32 {\n\
             \x20   let xs = vec![1, 2, 3];\n\
             \x20   if n > 3 { panic!(\"too deep\") }\n\
             \x20   xs[n]\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L10", "L10"]);
        assert_eq!(findings[0].line, 6);
        assert!(findings[0].note.contains("panic!"));
        assert!(findings[0].note.contains("run_queued_fx -> step"));
        assert_eq!(findings[1].line, 7);
        assert!(findings[1].note.contains("slice indexing"));
    }

    #[test]
    fn l10_spares_unreachable_fns_and_test_code() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/ok.rs",
            "pub fn run_queued_fx(n: usize) -> usize {\n\
             \x20   n + 1\n\
             }\n\
             fn never_called(xs: &[u32], n: usize) -> u32 {\n\
             \x20   xs[n]\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() {\n\
             \x20       assert_eq!(super::run_queued_fx(1), 2);\n\
             \x20       panic!(\"test-only panic\");\n\
             \x20   }\n\
             }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l10_edges_respect_the_crate_dependency_graph() {
        // `run_queued_fx` (sim) calls `helper()`, and a fn named `helper`
        // with a panic exists in des. Without a manifest declaring
        // sim -> des, the name match must NOT create an edge.
        let src_sim = "pub fn run_queued_fx() -> u32 {\n    helper()\n}\n";
        let src_des = "pub fn helper() -> u32 {\n    panic!(\"boom\")\n}\n";

        let fx = Fixture::new();
        fx.write("crates/sim/src/a.rs", src_sim);
        fx.write("crates/des/src/b.rs", src_des);
        assert!(fx.scan(&Allowlist::default()).is_empty());

        let fx2 = Fixture::new();
        fx2.write("crates/sim/src/a.rs", src_sim);
        fx2.write("crates/des/src/b.rs", src_des);
        fx2.write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"tapesim-sim\"\n[dependencies]\ntapesim-des = { workspace = true }\n",
        );
        fx2.write(
            "crates/des/Cargo.toml",
            "[package]\nname = \"tapesim-des\"\n",
        );
        let findings = fx2.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L10"]);
        assert!(findings[0].note.contains("run_queued_fx -> helper"));
    }

    #[test]
    fn l10_treats_parallel_entry_points_as_roots() {
        // The window runner (des) and the partitioned scheduler entry
        // (sched) are engine roots: panics reachable from them must be
        // flagged even though nothing in the scanned set calls them.
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/windowed.rs",
            "pub fn run_windowed(n: usize) -> usize {\n\
             \x20   step(n)\n\
             }\n\
             fn step(n: usize) -> usize {\n\
             \x20   if n > 3 { panic!(\"past the barrier\") }\n\
             \x20   n\n\
             }\n",
        );
        fx.write(
            "crates/sched/src/partitioned.rs",
            "pub fn run_partitioned(xs: &[u32], n: usize) -> u32 {\n\
             \x20   xs[n]\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L10", "L10"]);
        assert!(findings[0].note.contains("run_windowed -> step"));
        assert!(findings[1].note.contains("run_partitioned"));
    }

    #[test]
    fn stale_allowlist_entries_are_findings() {
        let fx = Fixture::new();
        fx.write("crates/sim/src/ok.rs", "pub fn f(x: u32) -> u32 { x }\n");
        let allow =
            Allowlist::parse("# justified: nothing, it is stale\nL4 crates/sim/src/removed.rs\n");
        let findings = fx.scan(&allow);
        assert_eq!(rules_of(&findings), vec!["ALLOW"]);
        assert_eq!(findings[0].file, "xtask/lint.allow");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].excerpt.contains("L4 crates/sim/src/removed.rs"));
    }

    #[test]
    fn allowlist_is_per_rule() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn f(t: SimTime, x: Option<u32>) -> f64 {\n\
             \x20   let _ = x.unwrap();\n\
             \x20   t.as_secs()\n\
             }\n",
        );
        let allow = Allowlist::parse("L1 crates/sim/src/bad.rs\n");
        // L1 suppressed; L4 (unwrap) and L5 (dropped result) still fire.
        let mut rules = rules_of(&fx.scan(&allow));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L4", "L5"]);
    }

    #[test]
    fn json_format_escapes_and_structures_findings() {
        let findings = vec![Finding {
            rule: "L4",
            file: "crates/sim/src/bad.rs".to_string(),
            line: 2,
            column: 7,
            excerpt: "x.expect(\"present\")".to_string(),
            note: String::new(),
        }];
        let json = to_json(&findings);
        assert_eq!(
            json,
            "[{\"rule\":\"L4\",\"file\":\"crates/sim/src/bad.rs\",\"line\":2,\"column\":7,\
             \"excerpt\":\"x.expect(\\\"present\\\")\",\"note\":\"\"}]"
        );
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn crate_deps_map_package_names_to_directories() {
        let deps = crate_deps(&workspace_root());
        // tapesim-placement lives in crates/core; sched depends on it.
        assert!(dep_edge_ok(&deps, "sched", "core"));
        assert!(dep_edge_ok(&deps, "sched", "sim"));
        assert!(dep_edge_ok(&deps, "sched", "sched"));
        // The reverse direction is not a dependency edge.
        assert!(!dep_edge_ok(&deps, "sim", "sched"));
        assert!(!dep_edge_ok(&deps, "des", "cli"));
    }

    #[test]
    fn legacy_loop_mask_handles_nesting_and_one_liners() {
        let src = "fn a() {\n\
                   \x20   let x = 1;\n\
                   \x20   for i in 0..x { f(i) }\n\
                   \x20   let y = 2;\n\
                   \x20   while y > 0 {\n\
                   \x20       loop {\n\
                   \x20           g();\n\
                   \x20       }\n\
                   \x20   }\n\
                   \x20   h();\n\
                   }\n";
        let mask = legacy::loop_line_mask(src);
        assert_eq!(
            mask,
            vec![false, false, true, false, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn legacy_test_mask_tracks_nested_braces() {
        let src = "fn a() { if x { y() } }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn helper() { z() }\n\
                   }\n\
                   fn b() {}\n";
        let mask = legacy::test_line_mask(src);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn ast_masks_are_superset_of_legacy_masks_on_the_live_workspace() {
        // The rewrite's safety argument: every line the old
        // brace-counting masks guarded, the AST masks guard too. (The
        // reverse need not hold — the AST masks are strictly better on
        // multi-line headers and wrapped items.)
        let root = workspace_root();
        let models = build_models(&root).expect("workspace parses");
        assert!(!models.is_empty());
        for m in &models {
            let content = fs::read_to_string(root.join(&m.rel)).unwrap();
            let legacy_test = legacy::test_line_mask(&content);
            let legacy_loop = legacy::loop_line_mask(&content);
            // Lines where no token *starts* are blank, comment-only, or
            // the interior of a multi-line string literal. The legacy
            // scanner worked line-by-line and could not carry string
            // state across lines, so it mis-reads string prose like
            // `for failover, ...` as a loop header — the exact class of
            // bug that motivated the rewrite. Such lines carry no code,
            // so no rule can fire on them either way; exempt them.
            let mut has_token = vec![false; m.tf.n_lines + 1];
            for t in &m.tf.tokens {
                has_token[t.line] = true;
            }
            // Also exempt continuation lines of multi-line string
            // literals: such a line *begins* inside the string, so the
            // legacy per-line scanner mis-lexes it from its first
            // character and its verdict is meaningless. A string's
            // continuation lines run from the line after it opens
            // through (at most) the line where the next token starts.
            for (k, t) in m.tf.tokens.iter().enumerate() {
                if !matches!(t.tok, Tok::Str) {
                    continue;
                }
                let next_line = m.tf.tokens.get(k + 1).map_or(t.line, |n| n.line);
                for l in t.line + 1..=next_line {
                    if let Some(slot) = has_token.get_mut(l) {
                        *slot = false;
                    }
                }
            }
            for (i, (&lt, &ll)) in legacy_test.iter().zip(&legacy_loop).enumerate() {
                let line = i + 1;
                if !has_token.get(line).copied().unwrap_or(false) {
                    continue;
                }
                if lt {
                    assert!(
                        m.line_in_test(line),
                        "{}:{line}: legacy test mask marks this line, AST mask does not",
                        m.rel
                    );
                }
                if ll {
                    assert!(
                        m.line_in_loop(line),
                        "{}:{line}: legacy loop mask marks this line, AST mask does not",
                        m.rel
                    );
                }
            }
        }
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = workspace_root();
        let allow_text = fs::read_to_string(root.join("xtask/lint.allow")).unwrap_or_default();
        let allow = Allowlist::parse(&allow_text);
        let findings = scan_workspace(&root, &allow).unwrap();
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(Finding::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn analyzer_wall_time_stays_under_ten_seconds() {
        // The AST rewrite must not make the pre-commit loop sluggish.
        // (std::time::Instant is fine here: xtask is tooling, not a
        // deterministic simulation crate, and is not scanned by L2.)
        let root = workspace_root();
        let allow_text = fs::read_to_string(root.join("xtask/lint.allow")).unwrap_or_default();
        let allow = Allowlist::parse(&allow_text);
        let start = std::time::Instant::now();
        let findings = scan_workspace(&root, &allow).unwrap();
        let elapsed = start.elapsed();
        eprintln!(
            "analyzer wall-time over the workspace: {elapsed:?} ({} findings)",
            findings.len()
        );
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "full-workspace scan took {elapsed:?}, budget is 10s"
        );
    }
}
