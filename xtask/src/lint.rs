//! Custom static checks over `crates/*/src`.
//!
//! Six rules guard the invariants the type system cannot express:
//!
//! * **L1 — typed time**: no `.as_secs()` escape from `SimTime` outside
//!   `crates/des/src/time.rs` and the allowlisted metrics boundary. Raw
//!   f64-seconds arithmetic is how unit bugs and catastrophic cancellation
//!   sneak into a DES; all clock math must stay behind the newtype.
//! * **L2 — determinism**: no `std::time::Instant`, `SystemTime` or
//!   `thread_rng` in the deterministic crates (`des`, `sim`, `core`,
//!   `sched`, `faults`, `obs`). The
//!   simulator must be a pure function of (config, placement, workload,
//!   seed); wall-clock reads or OS entropy silently break replayability.
//! * **L3 — iteration order**: no iteration over `HashMap`/`HashSet` in
//!   simulation-order-sensitive code (`des`, `sim`, `core`, `sched`,
//!   `faults`). Unordered
//!   iteration reorders tie-broken events between runs and platforms; use
//!   `Vec`, `BTreeMap` or sort before iterating. `obs` counts as both
//!   deterministic and hot-path: the span accountant sits inside every
//!   engine's emit path and its output is diffed across runs.
//! * **L4 — no panic shortcuts**: no `.unwrap()`/`.expect(` in non-test
//!   code of the `des`/`sim`/`sched`/`faults`/`obs` hot paths. Invariants there
//!   must either be
//!   encoded structurally or surfaced as `Result`s the caller can audit.
//! * **L5 — no dropped results**: no `let _ = f(...)` in non-test code of
//!   `des`/`sim`/`sched`/`faults`. In the engines a discarded call result
//!   is almost always a swallowed `Result` or an audit-relevant value
//!   (a `Grant`, an evicted job) silently thrown away; name it or handle
//!   it.
//! * **L6 — no hot-loop state copies**: no `.state().clone()` and no
//!   `.entries().to_vec()` inside loop bodies in non-test code of
//!   `des`/`sim`/`sched`/`faults`. Cloning a whole `MountState` or
//!   copying a trace buffer per iteration turns an O(events) engine into
//!   O(events × state) — snapshot once before the loop, or borrow.
//!
//! Findings can be suppressed via `xtask/lint.allow`: one
//! `RULE path-substring` pair per line, `#` comments allowed. Each rule has
//! a negative self-test below that seeds a violation into a temp tree and
//! asserts the lint fires.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`L1`..`L6`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.excerpt
        )
    }
}

/// Parsed `lint.allow`: `(rule, path substring)` suppression pairs.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format: one `RULE path-substring` per line,
    /// blank lines and `#` comments ignored.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let (rule, path) = l.split_once(char::is_whitespace)?;
                Some((rule.to_string(), path.trim().to_string()))
            })
            .collect();
        Allowlist { entries }
    }

    /// True if `rule` is suppressed for `file`.
    pub fn allows(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p)| r == rule && file.contains(p.as_str()))
    }
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("cargo xtask lint takes no arguments (got {args:?})");
        return ExitCode::FAILURE;
    }
    let root = workspace_root();
    let allow_path = root.join("xtask/lint.allow");
    let allow = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let findings = match scan_workspace(&root, &allow) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        eprintln!("xtask lint: clean (rules L1-L6 over crates/*/src)");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "xtask lint: {} finding(s). Fix them or add a justified entry to \
             xtask/lint.allow.",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Scans every `crates/*/src/**/*.rs` under `root`.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        findings.extend(scan_file(&rel, &content, allow));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Which rule families apply to a file, by crate.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// Runs all rules over one file.
pub fn scan_file(rel: &str, content: &str, allow: &Allowlist) -> Vec<Finding> {
    let Some(krate) = crate_of(rel) else {
        return Vec::new();
    };
    let in_test = test_line_mask(content);
    let code_lines: Vec<String> = content.lines().map(code_portion).collect();
    let mut findings = Vec::new();

    let deterministic = matches!(krate, "des" | "sim" | "core" | "sched" | "faults" | "obs");
    let hot_path = matches!(krate, "des" | "sim" | "sched" | "faults" | "obs");
    let mut push = |rule: &'static str, idx: usize, line: &str| {
        if !allow.allows(rule, rel) {
            findings.push(Finding {
                rule,
                file: rel.to_string(),
                line: idx + 1,
                excerpt: line.trim().to_string(),
            });
        }
    };

    // L1: typed time — `.as_secs()` escapes outside des::time (test code
    // converting for assertions is fine).
    if rel != "crates/des/src/time.rs" {
        for (i, code) in code_lines.iter().enumerate() {
            if !in_test[i] && code.contains(".as_secs()") {
                push("L1", i, content.lines().nth(i).unwrap_or(code));
            }
        }
    }

    // L2: determinism — wall clocks and OS entropy, anywhere in the file
    // (even tests: a time- or entropy-dependent test is a flaky test).
    if deterministic {
        for (i, code) in code_lines.iter().enumerate() {
            if [
                "std::time::Instant",
                "Instant::now",
                "SystemTime",
                "thread_rng",
            ]
            .iter()
            .any(|p| code.contains(p))
            {
                push("L2", i, content.lines().nth(i).unwrap_or(code));
            }
        }
    }

    // L3: unordered iteration. Two detectors: (a) a binding declared as
    // HashMap/HashSet whose name is later iterated, (b) declaration and
    // iteration on one line.
    if deterministic {
        let bindings = hash_bindings(&code_lines, &in_test);
        for (i, code) in code_lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let direct =
                (code.contains("HashMap") || code.contains("HashSet")) && has_iteration(code, None);
            let via_binding = bindings.iter().any(|name| has_iteration(code, Some(name)));
            if direct || via_binding {
                push("L3", i, content.lines().nth(i).unwrap_or(code));
            }
        }
    }

    // L4: panic shortcuts in hot paths (non-test code only).
    if hot_path {
        for (i, code) in code_lines.iter().enumerate() {
            if !in_test[i] && (code.contains(".unwrap()") || code.contains(".expect(")) {
                push("L4", i, content.lines().nth(i).unwrap_or(code));
            }
        }
    }

    // L5: dropped call results in hot paths (non-test code only). A bare
    // `let _ = name;` rebinding is fine; `let _ =` on anything that calls
    // is a silently swallowed result.
    if hot_path {
        for (i, code) in code_lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let trimmed = code.trim_start();
            if let Some(rest) = trimmed.strip_prefix("let _ =") {
                if rest.contains('(') {
                    push("L5", i, content.lines().nth(i).unwrap_or(code));
                }
            }
        }
    }

    // L6: per-iteration state copies in hot paths (non-test code only).
    // A whole-state clone or a trace-buffer copy inside a loop body is a
    // quadratic blow-up the borrow checker happily accepts.
    if hot_path {
        let in_loop = loop_line_mask(content);
        for (i, code) in code_lines.iter().enumerate() {
            if in_test[i] || !in_loop[i] {
                continue;
            }
            if code.contains(".state().clone()") || code.contains(".entries().to_vec()") {
                push("L6", i, content.lines().nth(i).unwrap_or(code));
            }
        }
    }

    findings
}

/// Names bound to `HashMap`/`HashSet` in the non-test part of this file
/// (`let x: HashMap<..>`, `let x = HashMap::new()`, struct fields
/// `x: HashMap<..>`). Test-only bindings are excluded so a test-local set
/// does not taint an unrelated non-test variable of the same name.
fn hash_bindings(code_lines: &[String], in_test: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, code) in code_lines.iter().enumerate() {
        if in_test[i] || (!code.contains("HashMap") && !code.contains("HashSet")) {
            continue;
        }
        // `let [mut] NAME :|= ... Hash{Map,Set}`
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.push(name);
            }
        } else if let Some((field, ty)) = code.split_once(':') {
            // struct field `name: HashMap<..>,`
            let field = field.trim();
            if (ty.contains("HashMap") || ty.contains("HashSet"))
                && !field.is_empty()
                && field.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                names.push(field.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Does `code` iterate — either any iteration verb (`name` = None) or an
/// iteration verb applied to `name` (`name.iter()`, `for .. in &name`)?
fn has_iteration(code: &str, name: Option<&str>) -> bool {
    const VERBS: [&str; 6] = [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".drain(",
    ];
    match name {
        None => VERBS.iter().any(|v| code.contains(v)),
        Some(n) => {
            VERBS.iter().any(|v| code.contains(&format!("{n}{v}")))
                || code.contains(&format!("in &{n}"))
                || code.contains(&format!("in &mut {n}"))
                || code.contains(&format!("in {n} "))
                || code.trim_end().ends_with(&format!("in {n}"))
        }
    }
}

/// Marks lines inside `for`/`while`/`loop` bodies by brace matching.
/// The header line itself is marked too (a per-iteration copy can hide in
/// a `while` condition). Nested loops stack; a line is masked while any
/// loop body is open.
fn loop_line_mask(content: &str) -> Vec<bool> {
    let lines: Vec<&str> = content.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Close depths of currently-open loop bodies (innermost last).
    let mut regions: Vec<i64> = Vec::new();
    let mut pending_loop = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        if !regions.is_empty() {
            mask[i] = true;
        }
        let trimmed = code.trim_start();
        let starts_loop = trimmed.starts_with("for ")
            || trimmed.starts_with("while ")
            || trimmed == "loop"
            || trimmed.starts_with("loop ")
            || trimmed.starts_with("loop{");
        if starts_loop {
            mask[i] = true;
            pending_loop = true;
        }
        let before = depth;
        depth += brace_delta(&code);
        if pending_loop {
            if depth > before {
                regions.push(before);
                pending_loop = false;
            } else if code.contains('{') {
                // One-liner body (`for x in xs { f() }`): opened and
                // closed on this line, which is already masked.
                pending_loop = false;
            }
        }
        while regions.last().is_some_and(|&close| depth <= close) {
            regions.pop();
        }
    }
    mask
}

/// Marks lines inside `#[cfg(test)]`-guarded items by brace matching.
fn test_line_mask(content: &str) -> Vec<bool> {
    let lines: Vec<&str> = content.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which a test region closes (region is active while
    // depth > entry depth after the region's opening brace).
    let mut region_close_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        let trimmed = code.trim();
        if region_close_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            mask[i] = true;
            depth += brace_delta(&code);
            continue;
        }
        let before = depth;
        depth += brace_delta(&code);
        if let Some(close) = region_close_depth {
            mask[i] = true;
            if depth <= close {
                region_close_depth = None;
            }
        } else if pending_cfg_test {
            mask[i] = true;
            // Attributes / doc lines between the cfg and the item keep the
            // pending flag; the first line that opens a brace starts the
            // region.
            if depth > before {
                region_close_depth = Some(before);
                pending_cfg_test = false;
            } else if trimmed.ends_with(';') {
                // `#[cfg(test)] use ...;` — single-item guard, no region.
                pending_cfg_test = false;
            }
        }
    }
    mask
}

/// Net `{`/`}` balance of a line, ignoring braces in strings, chars and
/// comments.
fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut chars = code.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            // Character literal like '{' — skip its body conservatively.
            '\'' => {
                if let Some(&n) = chars.peek() {
                    if n == '\\' {
                        chars.next();
                        chars.next();
                        chars.next();
                    } else if chars.clone().nth(1) == Some('\'') {
                        chars.next();
                        chars.next();
                    }
                    // Otherwise it's a lifetime; leave the stream alone.
                }
            }
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// The line with `//` comments and string-literal contents removed, so
/// pattern matching never fires on prose or literals.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A scratch workspace tree under the system temp dir.
    struct Fixture {
        root: PathBuf,
    }

    static FIXTURE_SEQ: AtomicU32 = AtomicU32::new(0);

    impl Fixture {
        fn new() -> Fixture {
            let n = FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed);
            let root =
                std::env::temp_dir().join(format!("tapesim-lint-test-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }

        fn scan(&self, allow: &Allowlist) -> Vec<Finding> {
            scan_workspace(&self.root, allow).unwrap()
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l1_fires_on_as_secs_escape() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn f(t: SimTime) -> f64 {\n    t.as_secs() * 2.0\n}\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L1"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn l1_spares_time_rs_tests_and_allowlisted_files() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/time.rs",
            "pub fn as_secs(self) -> f64 { self.0.as_secs() }\n",
        );
        fx.write(
            "crates/des/src/stats.rs",
            "pub fn mean(t: SimTime) -> f64 { t.as_secs() }\n",
        );
        fx.write(
            "crates/sim/src/ok.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(t: SimTime) -> f64 { t.as_secs() }\n}\n",
        );
        let allow = Allowlist::parse("# metrics boundary\nL1 crates/des/src/stats.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn l2_fires_on_wall_clock_and_entropy() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn f() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n",
        );
        fx.write(
            "crates/core/src/bad.rs",
            "pub fn g() -> u64 {\n    rand::thread_rng().next_u64()\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L2", "L2"]);
    }

    #[test]
    fn l2_ignores_non_deterministic_crates_and_comments() {
        let fx = Fixture::new();
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn f() { let _ = std::time::Instant::now(); }\n",
        );
        fx.write(
            "crates/des/src/ok.rs",
            "// A comment mentioning SystemTime and thread_rng is fine.\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l3_fires_on_hashmap_iteration() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
             \x20   let mut counts = HashMap::new();\n\
             \x20   counts.insert(1u32, 2u32);\n\
             \x20   counts.values().sum::<u32>()\n\
             }\n",
        );
        let findings = fx.scan(&Allowlist::default());
        assert_eq!(rules_of(&findings), vec!["L3"]);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn l3_allows_membership_use_without_iteration() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/ok.rs",
            "use std::collections::HashSet;\n\
             pub fn f(xs: &[u32]) -> bool {\n\
             \x20   let mut seen = HashSet::new();\n\
             \x20   xs.iter().all(|x| seen.insert(*x))\n\
             }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l4_fires_on_unwrap_and_expect_in_hot_paths() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        );
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn g(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L4", "L4"]);
    }

    #[test]
    fn l4_spares_tests_other_crates_and_unwrap_or() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/ok.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { assert_eq!(super::f(Some(3)), Some(3).unwrap()); }\n\
             }\n",
        );
        fx.write(
            "crates/cluster/src/ok.rs",
            "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(fx.scan(&Allowlist::default()).is_empty());
    }

    #[test]
    fn l5_fires_on_dropped_call_result_in_scoped_crates() {
        let fx = Fixture::new();
        fx.write(
            "crates/faults/src/bad.rs",
            "pub fn f(r: &mut Resource) {\n    let _ = r.acquire(now, d);\n}\n",
        );
        fx.write(
            "crates/sched/src/bad.rs",
            "pub fn g() {\n    let _ = std::fs::write(\"x\", \"y\");\n}\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L5", "L5"]);
    }

    #[test]
    fn l5_spares_plain_rebinds_tests_other_crates_and_allowlisted() {
        let fx = Fixture::new();
        fx.write(
            "crates/des/src/ok.rs",
            "pub fn f(x: u32) {\n    let _ = x;\n}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = super::helper(); }\n\
             }\n",
        );
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn g() { let _ = std::fs::remove_file(\"x\"); }\n",
        );
        fx.write(
            "crates/sim/src/justified.rs",
            "pub fn h() { let _ = best_effort_flush(); }\n",
        );
        let allow = Allowlist::parse("L5 crates/sim/src/justified.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn l6_fires_on_state_clone_and_trace_copy_in_loops() {
        let fx = Fixture::new();
        fx.write(
            "crates/sched/src/bad.rs",
            "pub fn f(sim: &Simulator) {\n\
             \x20   for _ in 0..10 {\n\
             \x20       let state = sim.state().clone();\n\
             \x20       consume(state);\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/des/src/bad.rs",
            "pub fn g(tracer: &Tracer) {\n\
             \x20   while more() {\n\
             \x20       audit(tracer.entries().to_vec());\n\
             \x20   }\n\
             }\n",
        );
        let mut rules = rules_of(&fx.scan(&Allowlist::default()));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L6", "L6"]);
    }

    #[test]
    fn l6_spares_top_level_clones_tests_other_crates_and_allowlisted() {
        let fx = Fixture::new();
        // A once-per-run snapshot before the loop is the sanctioned shape.
        fx.write(
            "crates/sim/src/ok.rs",
            "pub fn f(sim: &Simulator) {\n\
             \x20   let state = sim.state().clone();\n\
             \x20   for _ in 0..10 {\n\
             \x20       consume(&state);\n\
             \x20   }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(sim: &Simulator) {\n\
             \x20       for _ in 0..2 {\n\
             \x20           let _s = sim.state().clone();\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/cli/src/ok.rs",
            "pub fn g(sim: &Simulator) {\n\
             \x20   loop {\n\
             \x20       let _s = sim.state().clone();\n\
             \x20   }\n\
             }\n",
        );
        fx.write(
            "crates/faults/src/justified.rs",
            "pub fn h(t: &Tracer) {\n\
             \x20   for _ in 0..2 {\n\
             \x20       keep(t.entries().to_vec());\n\
             \x20   }\n\
             }\n",
        );
        let allow = Allowlist::parse("L6 crates/faults/src/justified.rs\n");
        assert!(fx.scan(&allow).is_empty());
    }

    #[test]
    fn loop_mask_handles_nesting_and_one_liners() {
        let src = "fn a() {\n\
                   \x20   let x = 1;\n\
                   \x20   for i in 0..x { f(i) }\n\
                   \x20   let y = 2;\n\
                   \x20   while y > 0 {\n\
                   \x20       loop {\n\
                   \x20           g();\n\
                   \x20       }\n\
                   \x20   }\n\
                   \x20   h();\n\
                   }\n";
        let mask = loop_line_mask(src);
        assert_eq!(
            mask,
            vec![false, false, true, false, true, true, true, true, true, false, false]
        );
    }

    #[test]
    fn allowlist_is_per_rule() {
        let fx = Fixture::new();
        fx.write(
            "crates/sim/src/bad.rs",
            "pub fn f(t: SimTime, x: Option<u32>) -> f64 {\n\
             \x20   let _ = x.unwrap();\n\
             \x20   t.as_secs()\n\
             }\n",
        );
        let allow = Allowlist::parse("L1 crates/sim/src/bad.rs\n");
        // L1 suppressed; L4 (unwrap) and L5 (dropped result) still fire.
        let mut rules = rules_of(&fx.scan(&allow));
        rules.sort_unstable();
        assert_eq!(rules, vec!["L4", "L5"]);
    }

    #[test]
    fn test_mask_tracks_nested_braces() {
        let src = "fn a() { if x { y() } }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn helper() { z() }\n\
                   }\n\
                   fn b() {}\n";
        let mask = test_line_mask(src);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = workspace_root();
        let allow_text = fs::read_to_string(root.join("xtask/lint.allow")).unwrap_or_default();
        let allow = Allowlist::parse(&allow_text);
        let findings = scan_workspace(&root, &allow).unwrap();
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(Finding::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
