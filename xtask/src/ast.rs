//! A minimal Rust lexer and token-stream layer for the lint analyzer.
//!
//! The build environment is fully offline (every external dependency in
//! this workspace is a std-only shim), so `syn` is not available. The
//! lint rules do not need a full grammar either: they need *faithful
//! tokens* — comments and string literals dropped, char literals
//! distinguished from lifetimes, raw strings handled, every token
//! carrying a line/column span — plus matched delimiter pairs so
//! analyses can jump over nested groups instead of counting braces per
//! line. That is exactly what this module provides; the structural
//! passes (items, masks, call sites) live in [`crate::analyzer`].

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `for`, `HashMap`, `_`, ...).
    Ident(String),
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime(String),
    /// Numeric literal. `float` is true for `1.0`, `1e-5`, `0f64`, ...
    Num { text: String, float: bool },
    /// String / raw-string / byte-string literal (contents dropped so
    /// pattern matching never fires on prose).
    Str,
    /// Char or byte-char literal (contents dropped).
    Char,
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
    /// Any other single punctuation character (`.`, `:`, `!`, `<`, ...).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

/// A fully lexed file: tokens plus delimiter matching.
#[derive(Debug)]
pub struct TokenFile {
    pub tokens: Vec<Token>,
    /// For `Open`/`Close` tokens, the index of the partner delimiter;
    /// `usize::MAX` for every other token.
    pub match_of: Vec<usize>,
    /// Number of source lines (for sizing line masks).
    pub n_lines: usize,
}

/// A lexing failure (unbalanced delimiter / unterminated literal). The
/// workspace only contains compiling Rust, so this is surfaced as a hard
/// lint error rather than silently skipping the file.
#[derive(Debug)]
pub struct LexError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl TokenFile {
    /// Lexes `src` into a token file.
    pub fn lex(src: &str) -> Result<TokenFile, LexError> {
        let tokens = lex_tokens(src)?;
        let mut match_of = vec![usize::MAX; tokens.len()];
        let mut stack: Vec<(usize, char)> = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            match t.tok {
                Tok::Open(c) => stack.push((i, c)),
                Tok::Close(c) => {
                    let Some((open, oc)) = stack.pop() else {
                        return Err(LexError {
                            line: t.line,
                            msg: format!("unmatched closing `{c}`"),
                        });
                    };
                    if closer_of(oc) != c {
                        return Err(LexError {
                            line: t.line,
                            msg: format!("mismatched `{oc}` closed by `{c}`"),
                        });
                    }
                    match_of[open] = i;
                    match_of[i] = open;
                }
                _ => {}
            }
        }
        if let Some((_, c)) = stack.pop() {
            return Err(LexError {
                line: tokens.last().map_or(0, |t| t.line),
                msg: format!("unclosed `{c}`"),
            });
        }
        let n_lines = src.lines().count();
        Ok(TokenFile {
            tokens,
            match_of,
            n_lines,
        })
    }

    /// The token at `i`, or a reference past either end returns `None`.
    pub fn get(&self, i: usize) -> Option<&Tok> {
        self.tokens.get(i).map(|t| &t.tok)
    }

    /// 1-based line of token `i` (0 if out of range).
    pub fn line(&self, i: usize) -> usize {
        self.tokens.get(i).map_or(0, |t| t.line)
    }

    /// 1-based column of token `i` (0 if out of range).
    pub fn col(&self, i: usize) -> usize {
        self.tokens.get(i).map_or(0, |t| t.col)
    }

    /// If token `i` is an `Open`, the index just past its matching
    /// `Close`; otherwise `i + 1`. Lets scans step over whole groups.
    pub fn skip_group(&self, i: usize) -> usize {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Open(_)) => self.match_of[i] + 1,
            _ => i + 1,
        }
    }

    /// Steps over a balanced `<...>` generics run starting at the `<` at
    /// `i`; returns the index just past the closing `>`. `->` inside the
    /// run is skipped as a unit so its `>` never miscounts.
    pub fn skip_angles(&self, i: usize) -> usize {
        debug_assert!(self.tokens[i].tok.is_punct('<'));
        let mut depth = 0i64;
        let mut j = i;
        while j < self.tokens.len() {
            match &self.tokens[j].tok {
                Tok::Open(_) => {
                    j = self.skip_group(j);
                    continue;
                }
                Tok::Punct('-') if self.get(j + 1).is_some_and(|t| t.is_punct('>')) => {
                    j += 2;
                    continue;
                }
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// The character-level lexer.
fn lex_tokens(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comments (incl. doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            continue;
        }
        // Block comments, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0i64;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            if depth != 0 {
                return Err(LexError {
                    line: tline,
                    msg: "unterminated block comment".into(),
                });
            }
            continue;
        }
        // Identifiers, keywords, and string/char prefixes (r"", b"", b'',
        // br"", r#ident).
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                bump!();
            }
            let ident: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let raw_capable = matches!(ident.as_str(), "r" | "br" | "rb");
            let byte_capable = matches!(ident.as_str(), "b" | "br");
            if raw_capable && (next == Some('"') || next == Some('#')) {
                // Raw string — or a raw identifier (`r#ident`).
                if next == Some('#') && chars.get(i + 1).copied().is_some_and(is_ident_start) {
                    bump!(); // consume `#`
                    let s = i;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        bump!();
                    }
                    let name: String = chars[s..i].iter().collect();
                    out.push(Token {
                        tok: Tok::Ident(name),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!();
                }
                if chars.get(i) != Some(&'"') {
                    return Err(LexError {
                        line: tline,
                        msg: "malformed raw string".into(),
                    });
                }
                bump!(); // opening quote
                'raw: loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            line: tline,
                            msg: "unterminated raw string".into(),
                        });
                    }
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Str,
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            if byte_capable && next == Some('"') {
                lex_quoted(&chars, &mut i, &mut line, &mut col, '"', tline)?;
                out.push(Token {
                    tok: Tok::Str,
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            if ident == "b" && next == Some('\'') {
                lex_quoted(&chars, &mut i, &mut line, &mut col, '\'', tline)?;
                out.push(Token {
                    tok: Tok::Char,
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            out.push(Token {
                tok: Tok::Ident(ident),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            lex_number_body(&chars, &mut i, &mut line, &mut col);
            // Fractional part: a `.` followed by a digit, or a trailing
            // `1.` (dot not followed by `.` or an identifier).
            if chars.get(i) == Some(&'.') {
                let after = chars.get(i + 1).copied();
                let fractional = after.is_some_and(|a| a.is_ascii_digit())
                    || !(after == Some('.') || after.is_some_and(is_ident_start));
                if fractional {
                    bump!(); // the dot
                    lex_number_body(&chars, &mut i, &mut line, &mut col);
                }
            }
            let text: String = chars[start..i].iter().collect();
            let lower = text.to_ascii_lowercase();
            let has_radix = lower.starts_with("0x") || lower.starts_with("0b");
            let float = text.contains('.')
                || lower.ends_with("f32")
                || lower.ends_with("f64")
                || (!has_radix && lower.contains('e') && !lower.starts_with("0o"));
            out.push(Token {
                tok: Tok::Num { text, float },
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            lex_quoted(&chars, &mut i, &mut line, &mut col, '"', tline)?;
            out.push(Token {
                tok: Tok::Str,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let p1 = chars.get(i + 1).copied();
            let is_lifetime = match p1 {
                Some(n) if is_ident_start(n) => {
                    // `'a` / `'static` — a lifetime unless the very next
                    // char closes a char literal (`'x'`).
                    let mut j = i + 2;
                    while chars.get(j).copied().is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    chars.get(j) != Some(&'\'') || j > i + 2
                }
                _ => false,
            };
            if is_lifetime {
                bump!(); // quote
                let s = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    bump!();
                }
                let name: String = chars[s..i].iter().collect();
                out.push(Token {
                    tok: Tok::Lifetime(name),
                    line: tline,
                    col: tcol,
                });
            } else {
                lex_quoted(&chars, &mut i, &mut line, &mut col, '\'', tline)?;
                out.push(Token {
                    tok: Tok::Char,
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Delimiters and punctuation.
        let tok = match c {
            '(' | '[' | '{' => Tok::Open(c),
            ')' => Tok::Close(')'),
            ']' => Tok::Close(']'),
            '}' => Tok::Close('}'),
            other => Tok::Punct(other),
        };
        bump!();
        out.push(Token {
            tok,
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

/// Consumes digits/alphanumerics/underscores, allowing a signed exponent
/// (`1e-5`). Shared by the integer and fractional parts.
fn lex_number_body(chars: &[char], i: &mut usize, line: &mut usize, col: &mut usize) {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    while *i < chars.len() {
        let c = chars[*i];
        if is_ident_continue(c) {
            let was_exp = (c == 'e' || c == 'E')
                && chars
                    .get(*i + 1)
                    .is_some_and(|&n| (n == '+' || n == '-') && chars.get(*i + 2).is_some());
            bump(i, line, col);
            if was_exp {
                bump(i, line, col); // the sign
            }
        } else {
            break;
        }
    }
}

/// Consumes a quoted literal (string or char) starting at the opening
/// quote; handles `\\` escapes. `i` points at the quote on entry and one
/// past the closing quote on exit.
fn lex_quoted(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    col: &mut usize,
    quote: char,
    start_line: usize,
) -> Result<(), LexError> {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    bump(i, line, col); // opening quote
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                bump(i, line, col);
                if *i < chars.len() {
                    bump(i, line, col);
                }
            }
            c if c == quote => {
                bump(i, line, col);
                return Ok(());
            }
            _ => bump(i, line, col),
        }
    }
    Err(LexError {
        line: start_line,
        msg: format!("unterminated {quote}-literal"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        TokenFile::lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn idents_puncts_and_spans() {
        let f = TokenFile::lex("fn main() {\n    x.y();\n}\n").unwrap();
        assert!(f.tokens[0].tok.is_ident("fn"));
        assert_eq!((f.tokens[0].line, f.tokens[0].col), (1, 1));
        // `x` on line 2, column 5.
        let x = f.tokens.iter().find(|t| t.tok.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 5));
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let t = toks("// HashMap in a comment\nlet s = \"HashMap { }\"; /* { */");
        assert!(t.iter().all(|t| !t.is_ident("HashMap")));
        // The string collapses to an opaque token: no stray brace tokens.
        assert!(t.iter().all(|t| !matches!(t, Tok::Open('{'))));
        assert!(t.contains(&Tok::Str));
    }

    #[test]
    fn nested_block_comments() {
        let t = toks("a /* x /* y */ z */ b");
        assert_eq!(t, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = toks(r##"let x = r#"quote " inside"#; r#match"##);
        assert!(t.contains(&Tok::Str));
        assert!(t.iter().any(|t| t.is_ident("match")));
        let t2 = toks("b\"bytes\" br#\"raw bytes\"# b'x'");
        assert_eq!(t2, vec![Tok::Str, Tok::Str, Tok::Char]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = toks("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            t.iter().filter(|t| matches!(t, Tok::Lifetime(_))).count(),
            2
        );
        assert_eq!(t.iter().filter(|t| matches!(t, Tok::Char)).count(), 2);
        // `'static` in expression position is a lifetime, not a char.
        let t2 = toks("&'static str");
        assert!(matches!(t2[1], Tok::Lifetime(ref l) if l == "static"));
    }

    #[test]
    fn numbers_classify_floats() {
        let cases = [
            ("1.0", true),
            ("0.5e-3", true),
            ("1e9", true),
            ("0f64", true),
            ("3f32", true),
            ("42", false),
            ("0xEE", false),
            ("1_000u64", false),
        ];
        for (text, float) in cases {
            let t = toks(text);
            assert_eq!(
                t,
                vec![Tok::Num {
                    text: text.into(),
                    float
                }],
                "{text}"
            );
        }
        // `0..10` is two ints and a range, not a float.
        let t = toks("0..10");
        assert_eq!(t.len(), 4);
        assert!(matches!(t[0], Tok::Num { float: false, .. }));
    }

    #[test]
    fn delimiters_are_matched() {
        let f = TokenFile::lex("fn f() { (a[b]) }").unwrap();
        for (i, t) in f.tokens.iter().enumerate() {
            if let Tok::Open(_) = t.tok {
                let close = f.match_of[i];
                assert!(matches!(f.tokens[close].tok, Tok::Close(_)));
                assert_eq!(f.match_of[close], i);
            }
        }
        assert!(TokenFile::lex("fn f() { (a[b) }").is_err());
        assert!(TokenFile::lex("fn f() {").is_err());
    }

    #[test]
    fn skip_angles_handles_arrows_and_shifts() {
        let f = TokenFile::lex("<F: Fn(u32) -> Vec<Vec<u8>>> rest").unwrap();
        let end = f.skip_angles(0);
        assert!(f.tokens[end].tok.is_ident("rest"));
    }
}
