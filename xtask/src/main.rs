//! Workspace automation tasks. See `cargo xtask --help`.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!(
        "cargo xtask <TASK>\n\n\
         Tasks:\n  \
         lint    Run the repository's custom static checks over crates/*/src.\n\
         \n\
         Lint rules (see DESIGN.md for rationale):\n  \
         L1  no raw f64 seconds arithmetic outside des::time and the metrics boundary\n  \
         L2  no wall-clock or OS randomness in deterministic simulation crates\n  \
         L3  no iteration over unordered maps/sets in simulation-order-sensitive code\n  \
         L4  no unwrap/expect in non-test code of the des/sim hot paths\n\
         \n\
         Allowlist: xtask/lint.allow (one `RULE path/substring` per line)."
    );
}
