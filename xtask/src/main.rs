//! Workspace automation tasks. See `cargo xtask --help`.

mod analyzer;
mod ast;
mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    eprintln!(
        "cargo xtask <TASK>\n\n\
         Tasks:\n  \
         lint [--format human|json]\n          \
         Run the repository's static analyzer over crates/*/src.\n          \
         `json` prints machine-readable findings on stdout (for CI\n          \
         annotations); `human` (default) prints to stderr and is the\n          \
         failing gate.\n\
         \n\
         Lint rules (see DESIGN.md \u{a7}13 for rationale and architecture):\n  \
         L1   no raw f64 seconds arithmetic outside des::time and the metrics boundary\n  \
         L2   no wall-clock or OS randomness in deterministic simulation crates\n  \
         L3   no iteration over unordered maps/sets in simulation-order-sensitive code\n  \
         L4   no unwrap/expect in non-test code of the des/sim hot paths\n  \
         L5   no `let _ = f(...)` result-dropping in non-test hot-path code\n  \
         L6   no per-iteration state copies (.state().clone(), .entries().to_vec())\n  \
         L7   no non-associative f64 reductions over order-unstable iterators\n  \
         L8   no raw f64/u64 seconds/bytes/positions crossing public APIs\n  \
         L9   no wildcard `_` arms in TraceEvent matches (des::audit, obs::spans)\n  \
         L10  no panics or direct slice indexing reachable from engine entry points\n\
         \n\
         Allowlist: xtask/lint.allow (one `RULE path/substring` per line).\n\
         Entries that suppress zero findings are themselves reported (ALLOW)."
    );
}
