//! The placement data structure.
//!
//! A [`Placement`] is the complete physical layout of a workload on a
//! system: one [`TapeLayout`] per cartridge, a per-object [`Location`]
//! index (the paper's "indexing database"), a [`TapeRole`] per cartridge
//! (pinned / switch-pool / unused) and per-tape accumulated access
//! probability. It is constructed through [`PlacementBuilder`], which
//! checks capacity as objects are appended, and finished with
//! [`PlacementBuilder::build`], which validates global invariants: every
//! object placed exactly once, contiguous extents, capacity respected.

use serde::{Deserialize, Serialize};
use tapesim_model::tape::TapeLayout;
use tapesim_model::{Bytes, ObjectId, SystemConfig, TapeId};
use tapesim_workload::Workload;

/// Where one object lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// The cartridge holding the object.
    pub tape: TapeId,
    /// Byte offset of the object's first byte from the load point.
    pub offset: Bytes,
    /// Object length.
    pub size: Bytes,
}

/// The runtime role a cartridge plays under the paper's switch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TapeRole {
    /// First-batch tape: kept mounted at all times (§5.2).
    Pinned,
    /// Member of switch batch `batch` (1-based; batch 1 is mounted at
    /// startup).
    SwitchPool {
        /// Batch index, 1-based.
        batch: u16,
    },
    /// Holds no objects.
    #[default]
    Unused,
}

/// Errors detected while building a placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// An object was placed twice.
    DuplicateObject(ObjectId),
    /// An object would overflow its tape.
    TapeOverflow {
        /// The refusing tape.
        tape: TapeId,
        /// The object that did not fit.
        object: ObjectId,
        /// Bytes already on the tape.
        used: Bytes,
        /// Cartridge capacity.
        capacity: Bytes,
    },
    /// Objects left unplaced after building (count).
    Unplaced(usize),
    /// The workload needs more tapes than the system has.
    OutOfTapes {
        /// Tapes required.
        needed: usize,
        /// Tapes available.
        available: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::DuplicateObject(o) => write!(f, "object {o} placed twice"),
            PlacementError::TapeOverflow {
                tape,
                object,
                used,
                capacity,
            } => write!(
                f,
                "object {object} does not fit on {tape} ({used} of {capacity} used)"
            ),
            PlacementError::Unplaced(n) => write!(f, "{n} objects left unplaced"),
            PlacementError::OutOfTapes { needed, available } => {
                write!(f, "workload needs {needed} tapes, system has {available}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Incrementally builds a [`Placement`].
pub struct PlacementBuilder {
    config: SystemConfig,
    tapes: Vec<TapeLayout>,
    roles: Vec<TapeRole>,
    locations: Vec<Option<Location>>,
    tape_probability: Vec<f64>,
}

impl PlacementBuilder {
    /// Starts an empty placement for `workload` on `config`.
    pub fn new(config: &SystemConfig, workload: &Workload) -> PlacementBuilder {
        let n_tapes = config.total_tapes();
        PlacementBuilder {
            config: *config,
            tapes: vec![TapeLayout::new(); n_tapes],
            roles: vec![TapeRole::Unused; n_tapes],
            locations: vec![None; workload.objects().len()],
            tape_probability: vec![0.0; n_tapes],
        }
    }

    /// Bytes already written to `tape`.
    pub fn used(&self, tape: TapeId) -> Bytes {
        self.tapes[self.config.tape_index(tape)].used()
    }

    /// Free bytes remaining on `tape`.
    pub fn free(&self, tape: TapeId) -> Bytes {
        self.config
            .library
            .tape
            .capacity
            .saturating_sub(self.used(tape))
    }

    /// Whether `object` would fit on `tape` right now.
    pub fn fits(&self, tape: TapeId, size: Bytes) -> bool {
        self.used(tape) + size <= self.config.library.tape.capacity
    }

    /// Appends `object` (with `probability`, for per-tape accounting) to
    /// the end of `tape`.
    pub fn append(
        &mut self,
        tape: TapeId,
        object: ObjectId,
        size: Bytes,
        probability: f64,
    ) -> Result<(), PlacementError> {
        if self.locations[object.idx()].is_some() {
            return Err(PlacementError::DuplicateObject(object));
        }
        let idx = self.config.tape_index(tape);
        let capacity = self.config.library.tape.capacity;
        if self.tapes[idx].used() + size > capacity {
            return Err(PlacementError::TapeOverflow {
                tape,
                object,
                used: self.tapes[idx].used(),
                capacity,
            });
        }
        let extent = self.tapes[idx].append(object, size);
        self.locations[object.idx()] = Some(Location {
            tape,
            offset: extent.offset,
            size,
        });
        self.tape_probability[idx] += probability;
        Ok(())
    }

    /// Sets the runtime role of `tape`.
    pub fn set_role(&mut self, tape: TapeId, role: TapeRole) {
        let idx = self.config.tape_index(tape);
        self.roles[idx] = role;
    }

    /// Finishes the placement, validating global invariants.
    pub fn build(self) -> Result<Placement, PlacementError> {
        let unplaced = self.locations.iter().filter(|l| l.is_none()).count();
        if unplaced > 0 {
            return Err(PlacementError::Unplaced(unplaced));
        }
        for (idx, layout) in self.tapes.iter().enumerate() {
            layout
                .validate(&self.config.library.tape)
                .unwrap_or_else(|e| panic!("tape index {idx} failed validation: {e}"));
        }
        Ok(Placement {
            config: self.config,
            tapes: self.tapes,
            roles: self.roles,
            locations: self.locations.into_iter().map(|l| l.unwrap()).collect(),
            tape_probability: self.tape_probability,
        })
    }
}

/// A complete, validated physical layout of a workload on a system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    config: SystemConfig,
    tapes: Vec<TapeLayout>,
    roles: Vec<TapeRole>,
    locations: Vec<Location>,
    tape_probability: Vec<f64>,
}

impl Placement {
    /// The system this placement targets.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Location of `object` (the "indexing database" lookup).
    pub fn locate(&self, object: ObjectId) -> Location {
        self.locations[object.idx()]
    }

    /// Layout of one cartridge.
    pub fn tape_layout(&self, tape: TapeId) -> &TapeLayout {
        &self.tapes[self.config.tape_index(tape)]
    }

    /// Role of one cartridge.
    pub fn role(&self, tape: TapeId) -> TapeRole {
        self.roles[self.config.tape_index(tape)]
    }

    /// Accumulated access probability of the objects on `tape`.
    pub fn tape_probability(&self, tape: TapeId) -> f64 {
        self.tape_probability[self.config.tape_index(tape)]
    }

    /// All tapes that hold at least one object.
    pub fn used_tapes(&self) -> Vec<TapeId> {
        self.config
            .tape_ids()
            .filter(|t| !self.tape_layout(*t).is_empty())
            .collect()
    }

    /// Number of tapes holding at least one object.
    pub fn n_used_tapes(&self) -> usize {
        self.tapes.iter().filter(|t| !t.is_empty()).count()
    }

    /// Tapes with the [`TapeRole::Pinned`] role.
    pub fn pinned_tapes(&self) -> Vec<TapeId> {
        self.config
            .tape_ids()
            .filter(|t| self.role(*t) == TapeRole::Pinned)
            .collect()
    }

    /// Tapes in switch batch `batch` (1-based).
    pub fn switch_batch(&self, batch: u16) -> Vec<TapeId> {
        self.config
            .tape_ids()
            .filter(|t| self.role(*t) == TapeRole::SwitchPool { batch })
            .collect()
    }

    /// Largest switch-batch index present (0 if none).
    pub fn max_switch_batch(&self) -> u16 {
        self.roles
            .iter()
            .filter_map(|r| match r {
                TapeRole::SwitchPool { batch } => Some(*batch),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Cross-checks the placement against its source workload: every object
    /// present with its exact size. (Builder validation already guarantees
    /// structure; this guards against mixing a placement with the wrong
    /// workload.)
    pub fn verify_against(&self, workload: &Workload) -> Result<(), PlacementError> {
        if self.locations.len() != workload.objects().len() {
            return Err(PlacementError::Unplaced(
                workload.objects().len().abs_diff(self.locations.len()),
            ));
        }
        for o in workload.objects() {
            let loc = self.locate(o.id);
            if loc.size != o.size {
                return Err(PlacementError::DuplicateObject(o.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::LibraryId;
    use tapesim_workload::{ObjectRecord, Request};

    fn tiny_workload(sizes_gb: &[u64]) -> Workload {
        let objects = sizes_gb
            .iter()
            .enumerate()
            .map(|(i, &s)| ObjectRecord {
                id: ObjectId(i as u32),
                size: Bytes::gb(s),
            })
            .collect();
        let requests = vec![Request {
            rank: 0,
            probability: 1.0,
            objects: (0..sizes_gb.len()).map(|i| ObjectId(i as u32)).collect(),
        }];
        Workload::new(objects, requests)
    }

    fn t(lib: u16, slot: u16) -> TapeId {
        TapeId::new(LibraryId(lib), slot)
    }

    #[test]
    fn build_and_locate() {
        let cfg = paper_table1();
        let w = tiny_workload(&[5, 10, 3]);
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(t(0, 0), ObjectId(0), Bytes::gb(5), 0.5).unwrap();
        b.append(t(0, 0), ObjectId(1), Bytes::gb(10), 0.3).unwrap();
        b.append(t(1, 0), ObjectId(2), Bytes::gb(3), 0.2).unwrap();
        b.set_role(t(0, 0), TapeRole::Pinned);
        b.set_role(t(1, 0), TapeRole::SwitchPool { batch: 1 });
        let p = b.build().unwrap();

        assert_eq!(p.locate(ObjectId(1)).offset, Bytes::gb(5));
        assert_eq!(p.locate(ObjectId(1)).tape, t(0, 0));
        assert_eq!(p.locate(ObjectId(2)).tape, t(1, 0));
        assert_eq!(p.n_used_tapes(), 2);
        assert_eq!(p.pinned_tapes(), vec![t(0, 0)]);
        assert_eq!(p.switch_batch(1), vec![t(1, 0)]);
        assert_eq!(p.max_switch_batch(), 1);
        assert!((p.tape_probability(t(0, 0)) - 0.8).abs() < 1e-12);
        p.verify_against(&w).unwrap();
    }

    #[test]
    fn duplicate_placement_rejected() {
        let cfg = paper_table1();
        let w = tiny_workload(&[1]);
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(t(0, 0), ObjectId(0), Bytes::gb(1), 0.1).unwrap();
        let err = b.append(t(0, 1), ObjectId(0), Bytes::gb(1), 0.1);
        assert_eq!(err, Err(PlacementError::DuplicateObject(ObjectId(0))));
    }

    #[test]
    fn overflow_rejected() {
        let cfg = paper_table1();
        let w = tiny_workload(&[399, 2]);
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(t(0, 0), ObjectId(0), Bytes::gb(399), 0.1).unwrap();
        let err = b.append(t(0, 0), ObjectId(1), Bytes::gb(2), 0.1);
        assert!(matches!(err, Err(PlacementError::TapeOverflow { .. })));
        assert!(b.fits(t(0, 0), Bytes::gb(1)));
        assert!(!b.fits(t(0, 0), Bytes::gb(2)));
        assert_eq!(b.free(t(0, 0)), Bytes::gb(1));
    }

    #[test]
    fn unplaced_objects_rejected_at_build() {
        let cfg = paper_table1();
        let w = tiny_workload(&[1, 1]);
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(t(0, 0), ObjectId(0), Bytes::gb(1), 0.1).unwrap();
        assert_eq!(b.build().unwrap_err(), PlacementError::Unplaced(1));
    }

    #[test]
    fn verify_against_detects_size_mismatch() {
        let cfg = paper_table1();
        let w = tiny_workload(&[5]);
        let mut b = PlacementBuilder::new(&cfg, &w);
        b.append(t(0, 0), ObjectId(0), Bytes::gb(5), 1.0).unwrap();
        let p = b.build().unwrap();
        let other = tiny_workload(&[7]);
        assert!(p.verify_against(&other).is_err());
    }
}
