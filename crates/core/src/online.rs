//! Incremental (online) placement across backup epochs — the paper's §7
//! future work, implemented.
//!
//! "In a real system, objects are moved to tapes periodically. When we
//! place objects on tapes, we only have the local knowledge of object
//! probability and relationship. How to make an optimal or near-optimal
//! solution for the long-term backup/retrieve operations remains to be
//! solved."
//!
//! [`IncrementalPlacer`] models exactly that constraint: data already
//! written to tape **stays where it is** (tapes are sequential media; a
//! migration would be a full read-back), and each epoch only the *newly
//! arrived* objects are placed — clustered among themselves with the
//! epoch's current request knowledge, packed into the free tail of the
//! most recent switch batch and into fresh batches after it. The pinned
//! batch is whatever epoch 0 chose; as popularity drifts it holds
//! yesterday's favourites, and the `ext_online` experiment quantifies the
//! resulting decay against a full re-placement oracle.

use crate::density::density_ranked;
use crate::layout::{Placement, PlacementBuilder, PlacementError, TapeRole};
use crate::schemes::parallel_batch::ParallelBatchPlacement;
use crate::ParallelBatchParams;
use crate::PlacementPolicy;
use tapesim_cluster::ClusterParams;
use tapesim_model::{Bytes, ObjectId, SystemConfig, TapeId};
use tapesim_workload::Workload;

/// Persistent physical contents of the system across epochs.
pub struct IncrementalPlacer {
    config: SystemConfig,
    params: ParallelBatchParams,
    /// Ordered contents of every tape (append-only), dense tape index.
    tape_contents: Vec<Vec<(ObjectId, Bytes)>>,
    /// Role assigned when each tape first received data.
    roles: Vec<TapeRole>,
    /// Objects already on tape.
    placed: usize,
    /// Highest switch batch index in use.
    last_batch: u16,
}

impl IncrementalPlacer {
    /// Performs the epoch-0 full placement (parallel batch placement with
    /// `params`) and records the physical state.
    pub fn bootstrap(
        workload: &Workload,
        config: &SystemConfig,
        params: ParallelBatchParams,
    ) -> Result<IncrementalPlacer, PlacementError> {
        let initial = ParallelBatchPlacement::new(params).place(workload, config)?;
        let n_tapes = config.total_tapes();
        let mut tape_contents: Vec<Vec<(ObjectId, Bytes)>> = vec![Vec::new(); n_tapes];
        let mut roles = vec![TapeRole::Unused; n_tapes];
        for tape in initial.used_tapes() {
            let idx = config.tape_index(tape);
            roles[idx] = initial.role(tape);
            tape_contents[idx] = initial
                .tape_layout(tape)
                .extents()
                .iter()
                .map(|e| (e.object, e.size))
                .collect();
        }
        Ok(IncrementalPlacer {
            config: *config,
            params,
            tape_contents,
            roles,
            placed: workload.objects().len(),
            last_batch: initial.max_switch_batch(),
        })
    }

    /// Number of objects currently on tape.
    pub fn placed_objects(&self) -> usize {
        self.placed
    }

    /// Highest switch-batch index in use.
    pub fn last_batch(&self) -> u16 {
        self.last_batch
    }

    /// Places the objects of `workload` that arrived since the last epoch
    /// (ids `>= placed_objects()`), then returns the placement of the whole
    /// population with tape probabilities refreshed from the epoch's
    /// request set.
    ///
    /// Existing data never moves; new objects append to the most recent
    /// switch batch's free space and to fresh batches beyond it.
    pub fn advance(&mut self, workload: &Workload) -> Result<Placement, PlacementError> {
        assert!(
            workload.objects().len() >= self.placed,
            "workload shrank — evolution is append-only"
        );
        let capacity = self.config.library.tape.capacity;

        // Rank the new objects by this epoch's density (step 1–2, applied
        // locally).
        let ranked = density_ranked(workload);
        let new_ranked: Vec<_> = ranked
            .iter()
            .filter(|r| r.id.idx() >= self.placed)
            .copied()
            .collect();

        // Cluster the epoch's requests and keep runs of *new* objects
        // together (old cluster members are immovable anyway).
        let membership: Vec<usize> = if self.params.use_clusters && !new_ranked.is_empty() {
            let m = self.params.m;
            let d = self.config.library.drives;
            let narrow = (d - m).min(m).max(1) as u64 * self.config.libraries as u64;
            ClusterParams {
                threshold_fraction: self.params.threshold_fraction,
                max_bytes: Some(Bytes(capacity.get() * narrow).scale(self.params.k_utilization)),
                linkage: tapesim_cluster::Linkage::Average,
                ..ClusterParams::default()
            }
            .cluster(workload)
            .membership()
        } else {
            (0..workload.objects().len()).collect()
        };

        // Group new objects into cluster runs, preserving density order.
        let mut runs: Vec<Vec<crate::density::RankedObject>> = Vec::new();
        let mut last = usize::MAX;
        for &o in &new_ranked {
            let c = membership[o.id.idx()];
            if c == last {
                runs.last_mut().expect("run exists").push(o);
            } else {
                runs.push(vec![o]);
                last = c;
            }
        }

        // Append each run into the current batch's free space; open fresh
        // batches as needed. Within a batch, objects go to the tape with
        // the most free space (greedy balance; the batch interleaves
        // libraries, so spreading is automatic).
        let mut batch_tapes = self.switch_batch_tapes(self.last_batch.max(1))?;
        for run in runs {
            for o in run {
                let size = Bytes(o.size);
                loop {
                    let best = batch_tapes
                        .iter()
                        .copied()
                        .max_by_key(|&t| {
                            let idx = self.config.tape_index(t);
                            capacity.saturating_sub(self.used(idx))
                        })
                        .filter(|&t| {
                            let idx = self.config.tape_index(t);
                            self.used(idx) + size <= capacity
                        });
                    match best {
                        Some(t) => {
                            let idx = self.config.tape_index(t);
                            self.tape_contents[idx].push((o.id, size));
                            if self.roles[idx] == TapeRole::Unused {
                                self.roles[idx] = TapeRole::SwitchPool {
                                    batch: self.last_batch.max(1),
                                };
                            }
                            break;
                        }
                        None => {
                            self.last_batch += 1;
                            batch_tapes = self.switch_batch_tapes(self.last_batch)?;
                        }
                    }
                }
            }
        }
        self.placed = workload.objects().len();
        self.rebuild(workload)
    }

    fn used(&self, tape_idx: usize) -> Bytes {
        self.tape_contents[tape_idx].iter().map(|&(_, s)| s).sum()
    }

    /// Tapes of switch batch `b` under the bootstrap's geometry.
    fn switch_batch_tapes(&self, b: u16) -> Result<Vec<TapeId>, PlacementError> {
        let d = self.config.library.drives as usize;
        let m = self.params.m as usize;
        let start = d - m + (b as usize - 1) * m;
        if start + m > self.config.library.tapes as usize {
            return Err(PlacementError::OutOfTapes {
                needed: (start + m) * self.config.libraries as usize,
                available: self.config.total_tapes(),
            });
        }
        let mut out = Vec::with_capacity(m * self.config.libraries as usize);
        for slot in start..start + m {
            for lib in self.config.library_ids() {
                out.push(TapeId::new(lib, slot as u16));
            }
        }
        Ok(out)
    }

    /// Builds the full [`Placement`] view with probabilities from the
    /// current workload.
    fn rebuild(&self, workload: &Workload) -> Result<Placement, PlacementError> {
        let probs = workload.object_probabilities();
        let mut builder = PlacementBuilder::new(&self.config, workload);
        for (idx, contents) in self.tape_contents.iter().enumerate() {
            if contents.is_empty() {
                continue;
            }
            let tape = TapeId::new(
                tapesim_model::LibraryId((idx / self.config.library.tapes as usize) as u16),
                (idx % self.config.library.tapes as usize) as u16,
            );
            for &(object, size) in contents {
                builder.append(tape, object, size, probs[object.idx()])?;
            }
            builder.set_role(tape, self.roles[idx]);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_workload::{EvolutionSpec, ObjectSizeSpec, RequestSpec, WorkloadSpec};

    fn base_workload() -> Workload {
        WorkloadSpec {
            objects: 3_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(5)),
            requests: RequestSpec {
                count: 60,
                min_objects: 20,
                max_objects: 30,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 99,
        }
        .generate()
    }

    fn evolution(seed: u64) -> EvolutionSpec {
        EvolutionSpec {
            growth: 0.05,
            churn: 0.25,
            new_sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(5)),
            new_requests: RequestSpec {
                count: 60,
                min_objects: 20,
                max_objects: 30,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed,
        }
    }

    #[test]
    fn bootstrap_matches_full_placement() {
        let cfg = paper_table1();
        let w = base_workload();
        let params = ParallelBatchParams::default();
        let mut placer = IncrementalPlacer::bootstrap(&w, &cfg, params).unwrap();
        let incremental = placer.advance(&w).unwrap(); // no new objects
        let full = ParallelBatchPlacement::new(params).place(&w, &cfg).unwrap();
        for o in w.objects() {
            assert_eq!(incremental.locate(o.id), full.locate(o.id));
        }
    }

    #[test]
    fn old_objects_never_move_across_epochs() {
        let cfg = paper_table1();
        let w0 = base_workload();
        let mut placer =
            IncrementalPlacer::bootstrap(&w0, &cfg, ParallelBatchParams::default()).unwrap();
        let p0 = placer.advance(&w0).unwrap();
        let w1 = evolution(1).advance(&w0);
        let p1 = placer.advance(&w1).unwrap();
        for o in w0.objects() {
            assert_eq!(
                p0.locate(o.id),
                p1.locate(o.id),
                "object {} moved between epochs",
                o.id
            );
        }
        // …and the new arrivals are placed.
        p1.verify_against(&w1).unwrap();
        assert_eq!(placer.placed_objects(), w1.objects().len());
    }

    #[test]
    fn pinned_batch_is_never_extended() {
        let cfg = paper_table1();
        let w0 = base_workload();
        let mut placer =
            IncrementalPlacer::bootstrap(&w0, &cfg, ParallelBatchParams::default()).unwrap();
        let p0 = placer.advance(&w0).unwrap();
        let pinned_used: Vec<Bytes> = p0
            .pinned_tapes()
            .iter()
            .map(|&t| p0.tape_layout(t).used())
            .collect();
        let mut w = w0;
        for seed in 1..4 {
            w = evolution(seed).advance(&w);
            let p = placer.advance(&w).unwrap();
            for (i, &t) in p0.pinned_tapes().iter().enumerate() {
                assert_eq!(
                    p.tape_layout(t).used(),
                    pinned_used[i],
                    "pinned tape {t} grew"
                );
            }
        }
    }

    #[test]
    fn epochs_extend_switch_batches_monotonically() {
        let cfg = paper_table1();
        let w0 = base_workload();
        let mut placer =
            IncrementalPlacer::bootstrap(&w0, &cfg, ParallelBatchParams::default()).unwrap();
        let b0 = placer.last_batch();
        let mut w = w0;
        for seed in 1..6 {
            w = evolution(seed).advance(&w);
            placer.advance(&w).unwrap();
        }
        assert!(placer.last_batch() >= b0, "batches never shrink");
        // 5 epochs × 5% growth on 15 TB adds ~4 TB: at least one new batch.
        assert!(placer.last_batch() > b0, "growth must open new batches");
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn rejects_shrinking_workload() {
        let cfg = paper_table1();
        let w0 = base_workload();
        let mut placer =
            IncrementalPlacer::bootstrap(&w0, &cfg, ParallelBatchParams::default()).unwrap();
        let smaller = WorkloadSpec {
            objects: 100,
            sizes: ObjectSizeSpec::default(),
            requests: RequestSpec {
                count: 5,
                min_objects: 2,
                max_objects: 4,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 1,
        }
        .generate();
        let _ = placer.advance(&smaller);
    }
}
