//! The [`PlacementPolicy`] trait.

use crate::layout::{Placement, PlacementError};
use tapesim_model::SystemConfig;
use tapesim_workload::Workload;

/// A scheme that lays a workload out on a system.
///
/// Implementations must be deterministic: the same workload and
/// configuration always produce the same placement — the experiments rely
/// on this when comparing schemes point-for-point across sweeps.
pub trait PlacementPolicy {
    /// Short machine-friendly name (used in tables and filenames).
    fn name(&self) -> &'static str;

    /// Human-readable name as used in the paper's figures.
    fn display_name(&self) -> &'static str;

    /// Computes the placement.
    fn place(
        &self,
        workload: &Workload,
        config: &SystemConfig,
    ) -> Result<Placement, PlacementError>;
}
