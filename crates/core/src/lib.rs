//! # tapesim-placement
//!
//! Object placement schemes for parallel tape storage systems — the primary
//! contribution of *Object Placement in Parallel Tape Storage Systems*
//! (ICPP 2006) plus the two prior schemes it is evaluated against.
//!
//! A *placement* maps every object of a workload onto a tape (and a byte
//! offset on that tape) of a [`tapesim_model::SystemConfig`]. The quality of
//! the mapping decides the three components of tape request response time:
//!
//! * **tape switch time** — co-locating co-accessed objects avoids switches;
//!   spreading them across *libraries* parallelises the switches that remain,
//! * **data seek time** — organ-pipe alignment keeps popular objects near
//!   the middle of the tape,
//! * **data transfer time** — spreading a request across *drives*
//!   parallelises the transfer.
//!
//! ## The three schemes
//!
//! | Scheme | Module | Source |
//! |---|---|---|
//! | [`ObjectProbabilityPlacement`] | [`schemes::object_prob`] | Christodoulakis et al., VLDB'97 |
//! | [`ClusterProbabilityPlacement`] | [`schemes::cluster_prob`] | Li & Prabhakar, MSS'02 |
//! | [`ParallelBatchPlacement`] | [`schemes::parallel_batch`] | **this paper, §5** |
//!
//! All three implement [`PlacementPolicy`] and produce a validated
//! [`Placement`]. The supporting algorithms are public: organ-pipe
//! alignment ([`organ_pipe`]), probability-density ordering ([`density`]),
//! capacity-bounded sublist partitioning ([`sublist`]) and the Figure 3
//! greedy zig-zag load balancer ([`balance`]).

pub mod balance;
pub mod density;
pub mod layout;
pub mod online;
pub mod organ_pipe;
pub mod policy;
pub mod schemes;
pub mod sublist;

pub use layout::{Location, Placement, PlacementBuilder, PlacementError, TapeRole};
pub use online::IncrementalPlacer;
pub use policy::PlacementPolicy;
pub use schemes::cluster_prob::ClusterProbabilityPlacement;
pub use schemes::object_prob::ObjectProbabilityPlacement;
pub use schemes::parallel_batch::{ParallelBatchParams, ParallelBatchPlacement};
