//! Capacity-bounded sublist partitioning (§5.3 steps 3–4).
//!
//! Step 3 splits the density-sorted object list into sublists sized to the
//! tape batches: the first sublist gets `k × n × (d−m) × C_t` bytes (the
//! always-mounted batch), every later sublist `k × n × m × C_t` (one switch
//! batch). Step 4 refines the split so objects of one cluster land in the
//! same sublist; because strongly related objects sit near each other in
//! the density order, members only ever move between adjacent sublists.
//!
//! [`partition_with_clusters`] fuses the two steps: it walks the density
//! order and allocates *cluster-atomically* — when the next unassigned
//! object's cluster fits the current sublist it goes there whole; when it
//! would straddle the boundary, the sublist is closed early and the cluster
//! opens the next one (the paper's "move objects between adjacent
//! sublists"). Clusters larger than a whole sublist are split across
//! consecutive sublists (they cannot be co-batched no matter what).
//! [`partition_plain`] is step 3 alone, used as the ablation baseline.

use crate::density::RankedObject;
use tapesim_model::Bytes;

/// One sublist: the objects (density order within the sublist) destined for
/// one tape batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Sublist {
    /// Objects in assignment order.
    pub objects: Vec<RankedObject>,
    /// The nominal byte budget this sublist was packed against.
    pub capacity: Bytes,
}

impl Sublist {
    /// Total bytes of the member objects.
    pub fn total_bytes(&self) -> Bytes {
        Bytes(self.objects.iter().map(|o| o.size).sum())
    }

    /// Total access probability of the member objects.
    pub fn total_probability(&self) -> f64 {
        self.objects.iter().map(|o| o.probability).sum()
    }
}

/// Step 3 alone: cut the ranked list at capacity boundaries, ignoring
/// clusters.
pub fn partition_plain(
    ranked: &[RankedObject],
    first_capacity: Bytes,
    rest_capacity: Bytes,
) -> Vec<Sublist> {
    assert!(first_capacity > Bytes::ZERO && rest_capacity > Bytes::ZERO);
    let mut out = Vec::new();
    let mut current = Sublist {
        objects: Vec::new(),
        capacity: first_capacity,
    };
    let mut used = Bytes::ZERO;
    for &obj in ranked {
        let size = Bytes(obj.size);
        if !current.objects.is_empty() && used + size > current.capacity {
            out.push(std::mem::replace(
                &mut current,
                Sublist {
                    objects: Vec::new(),
                    capacity: rest_capacity,
                },
            ));
            used = Bytes::ZERO;
        }
        used += size;
        current.objects.push(obj);
    }
    if !current.objects.is_empty() {
        out.push(current);
    }
    out
}

/// Steps 3+4 fused: capacity-bounded sublists with cluster atomicity.
///
/// `membership[object_id] -> cluster index` must be a total map (singleton
/// clusters included), as produced by
/// [`tapesim_cluster::ClusterSet::membership`].
pub fn partition_with_clusters(
    ranked: &[RankedObject],
    membership: &[usize],
    first_capacity: Bytes,
    rest_capacity: Bytes,
) -> Vec<Sublist> {
    assert!(first_capacity > Bytes::ZERO && rest_capacity > Bytes::ZERO);

    // Group cluster members in density order.
    let n_clusters = membership.iter().copied().max().map_or(0, |m| m + 1);
    let mut cluster_members: Vec<Vec<RankedObject>> = vec![Vec::new(); n_clusters];
    for &obj in ranked {
        cluster_members[membership[obj.id.idx()]].push(obj);
    }

    let mut assigned = vec![false; n_clusters];
    let mut out: Vec<Sublist> = Vec::new();
    let mut current = Sublist {
        objects: Vec::new(),
        capacity: first_capacity,
    };
    let mut used = Bytes::ZERO;

    let close = |current: &mut Sublist, used: &mut Bytes, out: &mut Vec<Sublist>| {
        if !current.objects.is_empty() {
            out.push(std::mem::replace(
                current,
                Sublist {
                    objects: Vec::new(),
                    capacity: rest_capacity,
                },
            ));
            *used = Bytes::ZERO;
        }
    };

    for &obj in ranked {
        let c = membership[obj.id.idx()];
        if assigned[c] {
            continue;
        }
        assigned[c] = true;
        let members = &cluster_members[c];
        let cluster_bytes: Bytes = Bytes(members.iter().map(|o| o.size).sum());

        if used + cluster_bytes <= current.capacity {
            // Fits the open sublist whole.
            used += cluster_bytes;
            current.objects.extend_from_slice(members);
        } else if cluster_bytes <= rest_capacity {
            // Fits a fresh sublist whole: close early rather than split the
            // cluster (the step-4 adjacency move). If the open sublist was
            // still empty, `close` is a no-op — re-badge it to the rest
            // capacity instead (the case of a first batch too small for
            // even the densest cluster).
            close(&mut current, &mut used, &mut out);
            current.capacity = rest_capacity;
            used += cluster_bytes;
            current.objects.extend_from_slice(members);
        } else {
            // Bigger than any sublist: split across consecutive sublists,
            // filling in density order.
            for &m in members {
                let size = Bytes(m.size);
                if !current.objects.is_empty() && used + size > current.capacity {
                    close(&mut current, &mut used, &mut out);
                }
                used += size;
                current.objects.push(m);
            }
        }
    }
    if !current.objects.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::ObjectId;

    fn obj(id: u32, size_gb: u64, p: f64) -> RankedObject {
        RankedObject {
            id: ObjectId(id),
            size: size_gb * 1_000_000_000,
            probability: p,
            density: p / (size_gb as f64 * 1e9),
            load: p * size_gb as f64 * 1e9,
        }
    }

    #[test]
    fn plain_partition_respects_capacities() {
        // Densities descending with ids.
        let ranked: Vec<_> = (0..10).map(|i| obj(i, 10, 1.0 / (i + 1) as f64)).collect();
        let subs = partition_plain(&ranked, Bytes::gb(35), Bytes::gb(25));
        assert_eq!(subs[0].objects.len(), 3, "3×10 GB fit in 35 GB");
        assert_eq!(subs[1].objects.len(), 2, "2×10 GB fit in 25 GB");
        // Everything is covered exactly once, in order.
        let ids: Vec<u32> = subs
            .iter()
            .flat_map(|s| s.objects.iter().map(|o| o.id.0))
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn plain_partition_allows_single_oversized_object() {
        let ranked = vec![obj(0, 100, 1.0)];
        let subs = partition_plain(&ranked, Bytes::gb(10), Bytes::gb(10));
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].objects.len(), 1);
    }

    #[test]
    fn clustered_partition_keeps_clusters_whole() {
        // Objects 0..4, cluster {1,2,3} (10 GB each), singletons otherwise.
        let ranked: Vec<_> = (0..5).map(|i| obj(i, 10, 1.0 / (i + 1) as f64)).collect();
        let membership = vec![0, 1, 1, 1, 2];
        // First capacity 25 GB: object 0 fits, but the 30 GB cluster does
        // not — it must open the next sublist whole.
        let subs = partition_with_clusters(&ranked, &membership, Bytes::gb(25), Bytes::gb(35));
        assert_eq!(
            subs[0].objects.iter().map(|o| o.id.0).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(
            subs[1].objects.iter().map(|o| o.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "cluster stays together in the second sublist"
        );
        assert_eq!(
            subs[1].objects.len() * 10,
            30,
            "cluster bytes within rest capacity"
        );
    }

    #[test]
    fn oversized_cluster_splits_across_sublists() {
        let ranked: Vec<_> = (0..6).map(|i| obj(i, 10, 1.0)).collect();
        let membership = vec![0; 6]; // one 60 GB cluster
        let subs = partition_with_clusters(&ranked, &membership, Bytes::gb(25), Bytes::gb(25));
        assert_eq!(subs.len(), 3);
        for s in &subs {
            assert!(s.total_bytes() <= Bytes::gb(25));
        }
        let total: usize = subs.iter().map(|s| s.objects.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn probability_skew_is_preserved() {
        // Clusters of equal size; density order implies sublist probability
        // is non-increasing.
        let ranked: Vec<_> = (0..8).map(|i| obj(i, 10, 1.0 / (i + 1) as f64)).collect();
        let membership: Vec<usize> = (0..8).collect();
        let subs = partition_with_clusters(&ranked, &membership, Bytes::gb(20), Bytes::gb(20));
        for pair in subs.windows(2) {
            assert!(
                pair[0].total_probability() >= pair[1].total_probability(),
                "skew broken"
            );
        }
    }

    #[test]
    fn stats_helpers() {
        let s = Sublist {
            objects: vec![obj(0, 2, 0.5), obj(1, 3, 0.25)],
            capacity: Bytes::gb(10),
        };
        assert_eq!(s.total_bytes(), Bytes::gb(5));
        assert!((s.total_probability() - 0.75).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tapesim_model::ObjectId;

    fn ranked(sizes: &[u64]) -> Vec<RankedObject> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &gb)| {
                let p = 1.0 / (i + 1) as f64;
                RankedObject {
                    id: ObjectId(i as u32),
                    size: gb * 1_000_000_000,
                    probability: p,
                    density: p / (gb as f64 * 1e9),
                    load: p * gb as f64 * 1e9,
                }
            })
            .collect()
    }

    proptest! {
        /// Both partitioners cover every object exactly once and respect
        /// the capacity for every sublist that holds more than one object
        /// (single oversized objects are allowed through by design).
        #[test]
        fn partitions_cover_and_respect_capacity(
            sizes in proptest::collection::vec(1u64..60, 1..120),
            first_gb in 50u64..200,
            rest_gb in 50u64..200,
            cluster_stride in 1usize..8,
        ) {
            let objs = ranked(&sizes);
            let membership: Vec<usize> =
                (0..objs.len()).map(|i| i / cluster_stride).collect();
            for subs in [
                partition_plain(&objs, Bytes::gb(first_gb), Bytes::gb(rest_gb)),
                partition_with_clusters(
                    &objs,
                    &membership,
                    Bytes::gb(first_gb),
                    Bytes::gb(rest_gb),
                ),
            ] {
                let mut ids: Vec<u32> = subs
                    .iter()
                    .flat_map(|s| s.objects.iter().map(|o| o.id.0))
                    .collect();
                ids.sort_unstable();
                prop_assert_eq!(ids, (0..objs.len() as u32).collect::<Vec<_>>());
                for s in &subs {
                    if s.objects.len() > 1 {
                        prop_assert!(
                            s.total_bytes() <= s.capacity,
                            "sublist over capacity: {} > {}",
                            s.total_bytes(),
                            s.capacity
                        );
                    }
                }
            }
        }
    }
}
