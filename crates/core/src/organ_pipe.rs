//! Organ-pipe alignment (§5.3 step 6; Christodoulakis et al. \[11\]).
//!
//! Within a tape, expected seek time under independent access is minimised
//! by placing the most popular object in the middle and alternating
//! successively less popular objects left and right — the classic
//! "organ-pipe" arrangement (optimal when the head rests mid-tape between
//! requests; near-optimal under the paper's linear positioning model, where
//! the head rests where the last read finished).
//!
//! The input is `(key, probability)` pairs; the output is the storage order
//! front-of-tape → end-of-tape.

/// Returns the organ-pipe storage order of `items`.
///
/// Items are ranked by descending `probability` (ties broken by input
/// order, keeping the function deterministic); rank 0 goes to the middle
/// position, rank 1 just after it, rank 2 just before, and so on.
pub fn organ_pipe_order<T: Copy>(items: &[(T, f64)]) -> Vec<T> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // Stable rank by descending probability.
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| {
        items[b]
            .1
            .partial_cmp(&items[a].1)
            .expect("finite probabilities")
    });

    // Positions ordered middle-out: mid, mid+1, mid-1, mid+2, mid-2, ...
    let mid = (n - 1) / 2;
    let mut slots = Vec::with_capacity(n);
    slots.push(mid);
    let mut step = 1usize;
    while slots.len() < n {
        if mid + step < n {
            slots.push(mid + step);
        }
        if slots.len() < n && step <= mid {
            slots.push(mid - step);
        }
        step += 1;
    }

    let mut out: Vec<Option<T>> = vec![None; n];
    for (rank, &item_idx) in ranked.iter().enumerate() {
        out[slots[rank]] = Some(items[item_idx].0);
    }
    out.into_iter()
        .map(|x| x.expect("every slot filled"))
        .collect()
}

/// Plain descending-probability order (most popular at the front of the
/// tape) — the optimal alignment when tapes rewind to the *beginning* on
/// unmount \[11\]; used by the alignment ablation.
pub fn descending_order<T: Copy>(items: &[(T, f64)]) -> Vec<T> {
    let mut ranked: Vec<usize> = (0..items.len()).collect();
    ranked.sort_by(|&a, &b| {
        items[b]
            .1
            .partial_cmp(&items[a].1)
            .expect("finite probabilities")
    });
    ranked.into_iter().map(|i| items[i].0).collect()
}

/// Expected one-seek cost proxy of an arrangement: Σ pᵢ·|centerᵢ − r|,
/// where `centerᵢ` is the centre offset of item `i` (computed from the
/// given per-item sizes) and `r` the resting position. Used in tests and
/// the ablation to compare alignments.
pub fn expected_seek_distance<T: Copy>(
    order: &[T],
    size_of: &dyn Fn(T) -> u64,
    prob_of: &dyn Fn(T) -> f64,
    rest: u64,
) -> f64 {
    let mut offset = 0u64;
    let mut cost = 0.0;
    for &item in order {
        let size = size_of(item);
        let center = offset + size / 2;
        cost += prob_of(item) * (center.abs_diff(rest)) as f64;
        offset += size;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organ_pipe_of_uniform_sizes() {
        // Probabilities 5 > 4 > 3 > 2 > 1 over items a..e.
        let items = [('a', 5.0), ('b', 4.0), ('c', 3.0), ('d', 2.0), ('e', 1.0)];
        let order = organ_pipe_order(&items);
        // mid=2 gets 'a'; mid+1 'b'; mid-1 'c'; mid+2 'd'; mid-2 'e'.
        assert_eq!(order, vec!['e', 'c', 'a', 'b', 'd']);
    }

    #[test]
    fn arrangement_is_unimodal() {
        let items: Vec<(usize, f64)> = (0..11).map(|i| (i, (i as f64 + 1.0).recip())).collect();
        let order = organ_pipe_order(&items);
        let probs: Vec<f64> = order.iter().map(|&i| items[i].1).collect();
        let peak = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for i in 1..=peak {
            assert!(probs[i] >= probs[i - 1], "rising flank broken at {i}");
        }
        for i in peak + 1..probs.len() {
            assert!(probs[i] <= probs[i - 1], "falling flank broken at {i}");
        }
    }

    #[test]
    fn handles_small_inputs() {
        assert_eq!(organ_pipe_order::<u8>(&[]), Vec::<u8>::new());
        assert_eq!(organ_pipe_order(&[(7u8, 1.0)]), vec![7]);
        assert_eq!(organ_pipe_order(&[(1u8, 1.0), (2u8, 2.0)]), vec![2, 1]);
    }

    #[test]
    fn ties_resolve_by_input_order() {
        let items = [('x', 1.0), ('y', 1.0), ('z', 1.0)];
        let a = organ_pipe_order(&items);
        let b = organ_pipe_order(&items);
        assert_eq!(a, b, "deterministic under ties");
        assert_eq!(a[1], 'x', "first input takes the middle");
    }

    #[test]
    fn descending_is_sorted() {
        let items = [('a', 0.1), ('b', 0.9), ('c', 0.5)];
        assert_eq!(descending_order(&items), vec!['b', 'c', 'a']);
    }

    #[test]
    fn organ_pipe_beats_descending_for_midpoint_rest() {
        // Uniform 1-byte items, Zipf-ish skew, head resting mid-tape.
        let items: Vec<(usize, f64)> = (0..101).map(|i| (i, 1.0 / (i as f64 + 1.0))).collect();
        let op = organ_pipe_order(&items);
        let desc = descending_order(&items);
        let size = |_: usize| 1u64;
        let prob = |i: usize| 1.0 / (i as f64 + 1.0);
        let rest = 50;
        let c_op = expected_seek_distance(&op, &size, &prob, rest);
        let c_desc = expected_seek_distance(&desc, &size, &prob, rest);
        assert!(
            c_op < c_desc,
            "organ pipe ({c_op:.2}) should beat descending ({c_desc:.2}) from mid-tape"
        );
    }

    #[test]
    fn descending_beats_organ_pipe_for_load_point_rest() {
        let items: Vec<(usize, f64)> = (0..101).map(|i| (i, 1.0 / (i as f64 + 1.0))).collect();
        let op = organ_pipe_order(&items);
        let desc = descending_order(&items);
        let size = |_: usize| 1u64;
        let prob = |i: usize| 1.0 / (i as f64 + 1.0);
        let c_op = expected_seek_distance(&op, &size, &prob, 0);
        let c_desc = expected_seek_distance(&desc, &size, &prob, 0);
        assert!(
            c_desc < c_op,
            "from the load point, descending ({c_desc:.2}) wins ({c_op:.2}) — [11]'s rewind-to-start result"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Organ-pipe output is a permutation of the input and unimodal in
        /// probability for any input.
        #[test]
        fn permutation_and_unimodality(probs in proptest::collection::vec(0.0f64..10.0, 1..80)) {
            let items: Vec<(usize, f64)> = probs.iter().copied().enumerate().collect();
            let order = organ_pipe_order(&items);
            let mut seen: Vec<usize> = order.clone();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());

            let ps: Vec<f64> = order.iter().map(|&i| probs[i]).collect();
            let peak = ps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            for i in 1..=peak {
                prop_assert!(ps[i] >= ps[i - 1] - 1e-12);
            }
            for i in peak + 1..ps.len() {
                prop_assert!(ps[i] <= ps[i - 1] + 1e-12);
            }
        }

        /// Descending order is, in fact, descending, and a permutation.
        #[test]
        fn descending_order_properties(probs in proptest::collection::vec(0.0f64..10.0, 1..80)) {
            let items: Vec<(usize, f64)> = probs.iter().copied().enumerate().collect();
            let order = descending_order(&items);
            let mut seen: Vec<usize> = order.clone();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
            for pair in order.windows(2) {
                prop_assert!(probs[pair[0]] >= probs[pair[1]]);
            }
        }
    }
}
