//! Greedy zig-zag load balancing within a tape batch (Figure 3, §5.4).
//!
//! Allocating a sublist to its tape batch pursues two goals at once: tape
//! **load balancing** (load of an object = `P(O) × size(O)`; tape load =
//! sum of its objects') and **maximum transfer parallelism** (a cluster's
//! objects spread over as many tapes as useful, so one request drives many
//! drives).
//!
//! For each cluster the paper's greedy pass (Figure 3) sorts the cluster's
//! objects by increasing load, sorts the batch tapes by decreasing current
//! load, picks how many tapes to spread over (`ndrv`), and then deals
//! objects in a zig-zag (1, 2, …, ndrv−1, ndrv−1, …, 0, 0, 1, …) so each
//! zig-zag cycle hands every tape a comparable load increment.
//!
//! Deviations from the pseudocode, both documented in DESIGN.md:
//! * `ndrv = 1` targets the **least**-loaded tape with space (the verbatim
//!   indexing would target the most-loaded one, inverting the balancing
//!   intent);
//! * a capacity guard redirects an object to the nearest tape with space
//!   when its zig-zag target is full (the paper leaves capacity handling to
//!   the `k` slack factor).

use crate::density::RankedObject;
use tapesim_model::{Bytes, TapeId};

/// A tape of the batch being filled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapeBin {
    /// The cartridge.
    pub tape: TapeId,
    /// Accumulated load (`Σ P×size`).
    pub load: f64,
    /// Bytes already assigned.
    pub used: Bytes,
    /// Hard cartridge capacity.
    pub capacity: Bytes,
}

impl TapeBin {
    /// A fresh, empty bin.
    pub fn new(tape: TapeId, capacity: Bytes) -> TapeBin {
        TapeBin {
            tape,
            load: 0.0,
            used: Bytes::ZERO,
            capacity,
        }
    }

    fn fits(&self, size: Bytes) -> bool {
        self.used + size <= self.capacity
    }
}

/// How many tapes a cluster should spread over.
///
/// §5.3 step 5: split "if their aggregate size is big enough. Otherwise,
/// simply putting them on the same tape does not change data transfer time
/// a lot but reduces tape switch time." A cluster below `min_split_bytes`
/// stays on one tape; otherwise it fans out to every tape of the batch (or
/// one per object if the cluster is small in count).
pub fn choose_ndrv(cluster: &[RankedObject], n_tapes: usize, min_split_bytes: Bytes) -> usize {
    debug_assert!(n_tapes > 0);
    let total: u64 = cluster.iter().map(|o| o.size).sum();
    if Bytes(total) < min_split_bytes {
        1
    } else {
        cluster.len().min(n_tapes).max(1)
    }
}

/// Assigns every cluster of a sublist to the batch's tapes.
///
/// `clusters` is the sublist's objects grouped by cluster, in sublist
/// order. Returns `(tape, object)` assignments; `bins` is updated in place
/// so a caller can chain sublists if batches ever share tapes.
///
/// # Panics
///
/// Panics if an object fits no tape in the batch. Use
/// [`zigzag_assign_lossy`] when overflow should spill instead (the
/// parallel-batch scheme carries leftovers into the next batch).
pub fn zigzag_assign(
    clusters: &[Vec<RankedObject>],
    bins: &mut [TapeBin],
    min_split_bytes: Bytes,
) -> Vec<(TapeId, RankedObject)> {
    let (out, leftovers) = zigzag_assign_lossy(clusters, bins, min_split_bytes);
    if let Some(first) = leftovers.first().and_then(|c| c.first()) {
        panic!(
            "object {} ({}) fits no tape of the batch",
            first.id,
            Bytes(first.size)
        );
    }
    out
}

/// Like [`zigzag_assign`], but objects that fit no tape of the batch are
/// returned (grouped by their original cluster, in cluster order) instead
/// of panicking. The per-tape `k` slack cannot absorb bin-packing waste
/// when objects are large relative to the cartridge (e.g. LTO-1), so
/// callers spill leftovers into the next batch.
pub fn zigzag_assign_lossy(
    clusters: &[Vec<RankedObject>],
    bins: &mut [TapeBin],
    min_split_bytes: Bytes,
) -> (Vec<(TapeId, RankedObject)>, Vec<Vec<RankedObject>>) {
    assert!(!bins.is_empty(), "a batch needs at least one tape");
    let mut out = Vec::with_capacity(clusters.iter().map(Vec::len).sum());
    let mut leftovers: Vec<Vec<RankedObject>> = Vec::new();

    for cluster in clusters {
        if cluster.is_empty() {
            continue;
        }
        // Objects by increasing load (ties by id — deterministic).
        let mut objs = cluster.clone();
        objs.sort_by(|a, b| {
            a.load
                .partial_cmp(&b.load)
                .expect("loads are finite")
                .then(a.id.cmp(&b.id))
        });
        // Tape indices by decreasing current load (ties: fewer used bytes
        // last, so `.rev()` finds genuinely emptier tapes; then tape id).
        let mut order: Vec<usize> = (0..bins.len()).collect();
        order.sort_by(|&x, &y| {
            bins[y]
                .load
                .partial_cmp(&bins[x].load)
                .expect("loads are finite")
                .then(bins[y].used.cmp(&bins[x].used))
                .then(bins[x].tape.cmp(&bins[y].tape))
        });

        let ndrv = choose_ndrv(&objs, bins.len(), min_split_bytes);

        if ndrv == 1 {
            // Whole cluster on the least-loaded tape with room for all of
            // it (falling back to per-object placement if none holds it).
            // Zero-load clusters (never-requested data) cannot move the
            // load balance at all, so they balance by *bytes* — otherwise
            // the strictly least-loaded tape would absorb every one of
            // them until full.
            let total = Bytes(objs.iter().map(|o| o.size).sum());
            let cluster_load: f64 = objs.iter().map(|o| o.load).sum();
            let target = if cluster_load == 0.0 {
                bins.iter()
                    .enumerate()
                    .filter(|(_, b)| b.fits(total))
                    .min_by(|a, b| a.1.used.cmp(&b.1.used).then(a.1.tape.cmp(&b.1.tape)))
                    .map(|(i, _)| i)
            } else {
                order
                    .iter()
                    .rev() // ascending load
                    .copied()
                    .find(|&i| bins[i].fits(total))
            };
            if let Some(i) = target {
                for o in objs {
                    place(&mut bins[i], o, &mut out);
                }
                continue;
            }
            // No single tape fits the whole cluster: degrade to the zig-zag
            // path below with full width.
        }

        // Figure 3 zig-zag over T_0..T_{ndrv-1} (most-loaded-first order).
        let width = if ndrv == 1 { bins.len() } else { ndrv };
        let mut cluster_leftover: Vec<RankedObject> = Vec::new();
        let mut i: isize = 0;
        let mut flag = false;
        for o in objs {
            if !flag {
                i += 1;
            } else {
                i -= 1;
            }
            if i == width as isize {
                flag = true;
                i -= 1;
            }
            if i == -1 {
                flag = false;
                i += 1;
            }
            // Capacity guard: walk outward from the zig-zag target.
            let size = Bytes(o.size);
            let slot = (0..bins.len())
                .map(|delta| (i as usize + delta) % width.max(1))
                .map(|w| order[w.min(order.len() - 1)])
                .find(|&b| bins[b].fits(size))
                .or_else(|| {
                    // Any tape in the batch, least-loaded first.
                    order.iter().rev().copied().find(|&b| bins[b].fits(size))
                });
            match slot {
                Some(slot) => place(&mut bins[slot], o, &mut out),
                None => cluster_leftover.push(o),
            }
        }
        if !cluster_leftover.is_empty() {
            leftovers.push(cluster_leftover);
        }
    }
    (out, leftovers)
}

fn place(bin: &mut TapeBin, o: RankedObject, out: &mut Vec<(TapeId, RankedObject)>) {
    debug_assert!(bin.fits(Bytes(o.size)));
    bin.load += o.load;
    bin.used += Bytes(o.size);
    out.push((bin.tape, o));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::{LibraryId, ObjectId};

    fn obj(id: u32, size_gb: u64, p: f64) -> RankedObject {
        RankedObject {
            id: ObjectId(id),
            size: size_gb * 1_000_000_000,
            probability: p,
            density: p / (size_gb as f64 * 1e9),
            load: p * size_gb as f64 * 1e9,
        }
    }

    fn bins(n: u16, cap_gb: u64) -> Vec<TapeBin> {
        (0..n)
            .map(|i| TapeBin::new(TapeId::new(LibraryId(i % 3), i / 3), Bytes::gb(cap_gb)))
            .collect()
    }

    #[test]
    fn big_cluster_spreads_over_all_tapes() {
        let cluster: Vec<_> = (0..12).map(|i| obj(i, 10, 0.1)).collect();
        let mut b = bins(4, 400);
        let placed = zigzag_assign(&[cluster], &mut b, Bytes::gb(8));
        assert_eq!(placed.len(), 12);
        // Every tape participates; the zig-zag's endpoint doubling means
        // counts vary by at most 2 objects around the 3-object average.
        let total: Bytes = b.iter().map(|x| x.used).sum();
        assert_eq!(total, Bytes::gb(120));
        for bin in &b {
            assert!(
                bin.used >= Bytes::gb(20) && bin.used <= Bytes::gb(40),
                "unbalanced bin: {bin:?}"
            );
        }
    }

    #[test]
    fn small_cluster_stays_on_one_tape() {
        let cluster = vec![obj(0, 1, 0.5), obj(1, 2, 0.5)];
        let mut b = bins(4, 400);
        let placed = zigzag_assign(&[cluster], &mut b, Bytes::gb(8));
        let tapes: std::collections::HashSet<_> = placed.iter().map(|(t, _)| *t).collect();
        assert_eq!(tapes.len(), 1, "3 GB < 8 GB split threshold: one tape");
    }

    #[test]
    fn small_clusters_round_robin_to_least_loaded() {
        // Three small clusters; each goes whole to the currently
        // least-loaded tape, so they spread over distinct tapes.
        let c1 = vec![obj(0, 4, 0.9)];
        let c2 = vec![obj(1, 4, 0.5)];
        let c3 = vec![obj(2, 4, 0.1)];
        let mut b = bins(3, 400);
        let placed = zigzag_assign(&[c1, c2, c3], &mut b, Bytes::gb(8));
        let tapes: std::collections::HashSet<_> = placed.iter().map(|(t, _)| *t).collect();
        assert_eq!(tapes.len(), 3);
    }

    #[test]
    fn loads_balance_for_skewed_objects() {
        // 40 objects with varied loads into 4 tapes: max/min assigned load
        // stays within 2×.
        let cluster: Vec<_> = (0..40)
            .map(|i| obj(i, 4 + (i % 7) as u64, 0.05 + 0.01 * (i % 11) as f64))
            .collect();
        let mut b = bins(4, 400);
        zigzag_assign(&[cluster], &mut b, Bytes::gb(1));
        let loads: Vec<f64> = b.iter().map(|x| x.load).collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 2.0, "imbalanced: {loads:?}");
    }

    #[test]
    fn capacity_guard_redirects() {
        // Two tapes, 13 GB each; 3 objects of 6 GB: one tape must take two
        // (12 GB), so at least one zig-zag target is redirected.
        let cluster = vec![obj(0, 6, 0.1), obj(1, 6, 0.1), obj(2, 6, 0.1)];
        let mut b = bins(2, 13);
        let placed = zigzag_assign(&[cluster], &mut b, Bytes::gb(1));
        assert_eq!(placed.len(), 3);
        for bin in &b {
            assert!(bin.used <= bin.capacity);
        }
    }

    #[test]
    #[should_panic(expected = "fits no tape")]
    fn impossible_fit_panics() {
        let cluster = vec![obj(0, 20, 0.1)];
        let mut b = bins(2, 10);
        let _ = zigzag_assign(&[cluster], &mut b, Bytes::gb(1));
    }

    #[test]
    fn ndrv_heuristic() {
        let small = vec![obj(0, 1, 0.1)];
        let big: Vec<_> = (0..3).map(|i| obj(i, 10, 0.1)).collect();
        assert_eq!(choose_ndrv(&small, 8, Bytes::gb(8)), 1);
        assert_eq!(
            choose_ndrv(&big, 8, Bytes::gb(8)),
            3,
            "capped by cluster size"
        );
        assert_eq!(
            choose_ndrv(&big, 2, Bytes::gb(8)),
            2,
            "capped by batch width"
        );
    }

    #[test]
    fn deterministic() {
        let cluster: Vec<_> = (0..20).map(|i| obj(i, 5, 0.1)).collect();
        let mut b1 = bins(4, 400);
        let mut b2 = bins(4, 400);
        let p1 = zigzag_assign(std::slice::from_ref(&cluster), &mut b1, Bytes::gb(8));
        let p2 = zigzag_assign(&[cluster], &mut b2, Bytes::gb(8));
        assert_eq!(p1, p2);
    }
}
