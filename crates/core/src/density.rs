//! Probability and probability-density ordering (§5.3 steps 1–2).
//!
//! Step 1 computes per-object access probability from request
//! probabilities: `P(O) = Σ_{R ∋ O} P(R)` (provided by
//! [`tapesim_workload::Workload::object_probabilities`]). Step 2 orders
//! objects by **probability density** `P(O)/size(O)` — the knapsack-style
//! value/weight heuristic that decides which objects deserve the
//! always-mounted batch.

use tapesim_model::ObjectId;
use tapesim_workload::Workload;

/// One object with its derived placement keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedObject {
    /// The object.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// Access probability `P(O)`.
    pub probability: f64,
    /// `P(O) / size(O)` (0 for never-requested objects).
    pub density: f64,
    /// Load `P(O) × size(O)` — the balancing weight of Figure 3.
    pub load: f64,
}

/// Computes every object's rank keys and returns them **sorted by
/// descending density** (ties: larger probability first, then smaller id —
/// fully deterministic).
pub fn density_ranked(workload: &Workload) -> Vec<RankedObject> {
    let probs = workload.object_probabilities();
    let mut out: Vec<RankedObject> = workload
        .objects()
        .iter()
        .map(|o| {
            let p = probs[o.id.idx()];
            let size = o.size.get();
            RankedObject {
                id: o.id,
                size,
                probability: p,
                density: if size > 0 { p / size as f64 } else { 0.0 },
                load: p * size as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.density
            .partial_cmp(&a.density)
            .expect("densities are finite")
            .then(
                b.probability
                    .partial_cmp(&a.probability)
                    .expect("probabilities are finite"),
            )
            .then(a.id.cmp(&b.id))
    });
    out
}

/// Orders objects by **descending probability** (ties by id) — the key used
/// by the *object probability placement* baseline, which ignores sizes.
pub fn probability_ranked(workload: &Workload) -> Vec<RankedObject> {
    let mut out = density_ranked(workload);
    out.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then(a.id.cmp(&b.id))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::Bytes;
    use tapesim_workload::{ObjectRecord, Request};

    fn workload() -> Workload {
        // Object 0: 1 GB in a 0.6 request  -> P=0.6, density 0.6/1
        // Object 1: 4 GB in the same       -> P=0.6, density 0.15
        // Object 2: 1 GB in a 0.4 request  -> P=0.4, density 0.4
        // Object 3: 2 GB in both           -> P=1.0, density 0.5
        // Object 4: never requested        -> P=0, density 0
        let objects = vec![
            ObjectRecord {
                id: ObjectId(0),
                size: Bytes::gb(1),
            },
            ObjectRecord {
                id: ObjectId(1),
                size: Bytes::gb(4),
            },
            ObjectRecord {
                id: ObjectId(2),
                size: Bytes::gb(1),
            },
            ObjectRecord {
                id: ObjectId(3),
                size: Bytes::gb(2),
            },
            ObjectRecord {
                id: ObjectId(4),
                size: Bytes::gb(1),
            },
        ];
        let requests = vec![
            Request {
                rank: 0,
                probability: 0.6,
                objects: vec![ObjectId(0), ObjectId(1), ObjectId(3)],
            },
            Request {
                rank: 1,
                probability: 0.4,
                objects: vec![ObjectId(2), ObjectId(3)],
            },
        ];
        Workload::new(objects, requests)
    }

    #[test]
    fn density_order_is_value_per_byte() {
        let ranked = density_ranked(&workload());
        let ids: Vec<u32> = ranked.iter().map(|r| r.id.0).collect();
        // densities: O0=0.6e-9, O3=0.5e-9, O2=0.4e-9, O1=0.15e-9, O4=0.
        assert_eq!(ids, vec![0, 3, 2, 1, 4]);
        assert!((ranked[0].probability - 0.6).abs() < 1e-12);
        assert!((ranked[1].probability - 1.0).abs() < 1e-12);
        assert_eq!(ranked[4].density, 0.0);
    }

    #[test]
    fn probability_order_ignores_size() {
        let ranked = probability_ranked(&workload());
        let ids: Vec<u32> = ranked.iter().map(|r| r.id.0).collect();
        // probabilities: O3=1.0, O0=O1=0.6 (tie→smaller id), O2=0.4, O4=0.
        assert_eq!(ids, vec![3, 0, 1, 2, 4]);
    }

    #[test]
    fn load_is_probability_times_size() {
        let ranked = density_ranked(&workload());
        let o1 = ranked.iter().find(|r| r.id == ObjectId(1)).unwrap();
        assert!((o1.load - 0.6 * 4e9).abs() < 1.0);
    }
}
