//! **Parallel batch placement** — the paper's proposed scheme (§5).
//!
//! The scheme couples a *placement* with a *switch strategy*:
//!
//! * All `n×d` drives split into an **always-mounted batch** (`d−m` drives
//!   per library) and a **switch batch** (`m` drives per library). Tapes
//!   split accordingly: the first tape batch (`n×(d−m)` tapes) is pinned on
//!   the always-mounted drives forever; the second and later batches
//!   (`n×m` tapes each) rotate through the switch drives (§5.2).
//! * Objects are ranked by probability **density** `P/size` and partitioned
//!   into capacity-bounded sublists — the first sized to the pinned batch,
//!   the rest to one switch batch each — with co-access **clusters kept
//!   within one sublist** (§5.3 steps 1–4, [`crate::sublist`]).
//! * Each sublist's clusters are dealt across its batch's tapes by the
//!   greedy zig-zag of Figure 3 ([`crate::balance`]); the batch's tapes
//!   interleave across libraries, so a spread cluster engages all `n`
//!   robots and up to `n×m` (or `n×(d−m)`) drives at once (§5.4).
//! * Every tape is organ-pipe aligned (§5.3 step 6, [`crate::organ_pipe`]).
//!
//! The net effect the paper claims — and the simulator reproduces — is a
//! three-way trade: almost all probability mass sits on pinned tapes (few
//! switches), the switches that remain happen in parallel across robots,
//! and transfers fan out across drives.

use crate::balance::{zigzag_assign_lossy, TapeBin};
use crate::density::{density_ranked, RankedObject};
use crate::layout::{Placement, PlacementBuilder, PlacementError, TapeRole};
use crate::organ_pipe::{descending_order, organ_pipe_order};
use crate::policy::PlacementPolicy;
use crate::sublist::{partition_plain, partition_with_clusters, Sublist};
use tapesim_cluster::ClusterParams;
use tapesim_model::{Bytes, SystemConfig, TapeId};
use tapesim_workload::Workload;

/// In-tape alignment choice (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Alignment {
    /// Organ-pipe (§5.3 step 6) — the paper's choice.
    #[default]
    OrganPipe,
    /// Plain descending probability from the load point.
    Descending,
}

/// Within-batch balancing choice (ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Balancing {
    /// The Figure 3 greedy zig-zag — the paper's choice.
    #[default]
    ZigZag,
    /// Naive round-robin dealing, ignoring loads.
    RoundRobin,
}

/// Tunables of parallel batch placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelBatchParams {
    /// Switch drives per library (`m`, `1 ≤ m ≤ d−1`). The paper sweeps
    /// this in Figure 5 and fixes `m = 4` elsewhere.
    pub m: u8,
    /// Tape capacity utilisation coefficient `k` (< 1) of §5.3 step 3.
    pub k_utilization: f64,
    /// Clusters smaller than this stay on a single tape (§5.3 step 5).
    pub min_split_bytes: Bytes,
    /// Clustering threshold as a fraction of the smallest request
    /// probability.
    pub threshold_fraction: f64,
    /// Whether to use co-access clusters at all (ablation; `false` reduces
    /// steps 4–5 to per-object operation).
    pub use_clusters: bool,
    /// In-tape alignment (ablation).
    pub alignment: Alignment,
    /// Batch balancing (ablation).
    pub balancing: Balancing,
}

impl Default for ParallelBatchParams {
    /// The paper's defaults: `m = 4`, `k = 0.95`.
    fn default() -> Self {
        ParallelBatchParams {
            m: 4,
            k_utilization: 0.95,
            min_split_bytes: Bytes::gb(8),
            threshold_fraction: 0.5,
            use_clusters: true,
            alignment: Alignment::OrganPipe,
            balancing: Balancing::ZigZag,
        }
    }
}

impl ParallelBatchParams {
    /// Returns a copy with a different `m`.
    pub fn with_m(mut self, m: u8) -> ParallelBatchParams {
        self.m = m;
        self
    }
}

/// The paper's proposed scheme.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParallelBatchPlacement {
    /// Tunables.
    pub params: ParallelBatchParams,
}

impl ParallelBatchPlacement {
    /// Scheme with explicit parameters.
    pub fn new(params: ParallelBatchParams) -> ParallelBatchPlacement {
        ParallelBatchPlacement { params }
    }

    /// Scheme with the given `m` and paper defaults otherwise.
    pub fn with_m(m: u8) -> ParallelBatchPlacement {
        ParallelBatchPlacement::new(ParallelBatchParams::default().with_m(m))
    }

    /// The tapes of batch `b` (0 = pinned), interleaved across libraries.
    ///
    /// Batch 0 occupies slots `0..d−m` in every library; batch `i ≥ 1`
    /// occupies slots `d−m + (i−1)·m .. d−m + i·m`. Returns `None` when the
    /// batch would run past the library's cartridge cells.
    fn batch_tapes(&self, config: &SystemConfig, batch: usize) -> Option<Vec<TapeId>> {
        let d = config.library.drives as usize;
        let m = self.params.m as usize;
        let (start, width) = if batch == 0 {
            (0, d - m)
        } else {
            (d - m + (batch - 1) * m, m)
        };
        if start + width > config.library.tapes as usize {
            return None;
        }
        let mut out = Vec::with_capacity(width * config.libraries as usize);
        for slot in start..start + width {
            for lib in config.library_ids() {
                out.push(TapeId::new(lib, slot as u16));
            }
        }
        Some(out)
    }

    /// Groups a sublist's objects into contiguous cluster runs.
    fn cluster_runs(sublist: &Sublist, membership: &[usize]) -> Vec<Vec<RankedObject>> {
        let mut runs: Vec<Vec<RankedObject>> = Vec::new();
        let mut last: Option<usize> = None;
        for &o in &sublist.objects {
            let c = membership[o.id.idx()];
            if last == Some(c) {
                runs.last_mut().expect("run exists").push(o);
            } else {
                runs.push(vec![o]);
                last = Some(c);
            }
        }
        runs
    }
}

impl PlacementPolicy for ParallelBatchPlacement {
    fn name(&self) -> &'static str {
        "parallel_batch"
    }

    fn display_name(&self) -> &'static str {
        "parallel batch placement"
    }

    fn place(
        &self,
        workload: &Workload,
        config: &SystemConfig,
    ) -> Result<Placement, PlacementError> {
        let d = config.library.drives;
        let m = self.params.m;
        assert!(
            m >= 1 && m < d,
            "m must satisfy 1 <= m <= d-1 (got m={m}, d={d})"
        );
        let n = config.libraries as u64;
        let ct = config.library.tape.capacity;
        let k = self.params.k_utilization;

        // §5.3 steps 1–2: density ranking.
        let ranked = density_ranked(workload);

        // §5.1: clusters byte-capped to the narrower batch so any cluster
        // can be co-batched whole; average linkage keeps overlapping
        // requests from chaining into one workload-sized mega-cluster.
        // (No object-count cap: the Figure 3 zig-zag spreads a large
        // cluster over the whole batch width anyway.)
        let narrow_width = (d - m).min(m).max(1) as u64 * n;
        let membership: Vec<usize> = if self.params.use_clusters {
            let params = ClusterParams {
                threshold_fraction: self.params.threshold_fraction,
                max_bytes: Some(Bytes(ct.get() * narrow_width).scale(k)),
                linkage: tapesim_cluster::Linkage::Average,
                ..ClusterParams::default()
            };
            params.cluster(workload).membership()
        } else {
            (0..workload.objects().len()).collect()
        };

        // §5.3 steps 3–4: capacity-bounded, cluster-atomic sublists.
        let first_cap = Bytes(ct.get() * n * (d - m) as u64).scale(k);
        let rest_cap = Bytes(ct.get() * n * m as u64).scale(k);
        let sublists = if self.params.use_clusters {
            partition_with_clusters(&ranked, &membership, first_cap, rest_cap)
        } else {
            partition_plain(&ranked, first_cap, rest_cap)
        };

        // §5.4 + Figure 3: allocate each sublist across its batch's tapes.
        // Bin-packing waste can exceed the `k` slack when objects are large
        // relative to the cartridge (LTO-1 sweeps), so each batch may spill
        // leftovers that are carried — ahead of the next sublist's own
        // clusters — into the following batch.
        let mut builder = PlacementBuilder::new(config, workload);
        let mut carry: Vec<Vec<RankedObject>> = Vec::new();
        let mut batch = 0usize;
        loop {
            let mut clusters: Vec<Vec<RankedObject>> = std::mem::take(&mut carry);
            if let Some(sublist) = sublists.get(batch) {
                clusters.extend(Self::cluster_runs(sublist, &membership));
            }
            if clusters.is_empty() {
                break;
            }
            let tapes = self.batch_tapes(config, batch).ok_or_else(|| {
                let per_batch = (m as usize) * config.libraries as usize;
                PlacementError::OutOfTapes {
                    needed: (d - m) as usize * config.libraries as usize + batch.max(1) * per_batch,
                    available: config.total_tapes(),
                }
            })?;
            let mut bins: Vec<TapeBin> = tapes.iter().map(|&t| TapeBin::new(t, ct)).collect();

            let (assignments, leftovers) = match self.params.balancing {
                Balancing::ZigZag => {
                    zigzag_assign_lossy(&clusters, &mut bins, self.params.min_split_bytes)
                }
                Balancing::RoundRobin => {
                    let mut out = Vec::new();
                    let mut left: Vec<Vec<RankedObject>> = Vec::new();
                    let mut next = 0usize;
                    for cluster in &clusters {
                        let mut cluster_left = Vec::new();
                        for &o in cluster {
                            let size = Bytes(o.size);
                            let slot = (0..bins.len())
                                .map(|delta| (next + delta) % bins.len())
                                .find(|&b| bins[b].used + size <= bins[b].capacity);
                            match slot {
                                Some(slot) => {
                                    bins[slot].used += size;
                                    bins[slot].load += o.load;
                                    out.push((bins[slot].tape, o));
                                    next = (slot + 1) % bins.len();
                                }
                                None => cluster_left.push(o),
                            }
                        }
                        if !cluster_left.is_empty() {
                            left.push(cluster_left);
                        }
                    }
                    (out, left)
                }
            };
            carry = leftovers;

            // Collect per tape, align, write out, set role.
            let mut per_tape: std::collections::BTreeMap<TapeId, Vec<RankedObject>> =
                std::collections::BTreeMap::new();
            for (tape, o) in assignments {
                per_tape.entry(tape).or_default().push(o);
            }
            let role = if batch == 0 {
                TapeRole::Pinned
            } else {
                TapeRole::SwitchPool {
                    batch: batch as u16,
                }
            };
            for (tape, objects) in per_tape {
                let items: Vec<(usize, f64)> = objects
                    .iter()
                    .enumerate()
                    .map(|(j, o)| (j, o.probability))
                    .collect();
                let order = match self.params.alignment {
                    Alignment::OrganPipe => organ_pipe_order(&items),
                    Alignment::Descending => descending_order(&items),
                };
                for j in order {
                    let o = objects[j];
                    builder.append(tape, o.id, Bytes(o.size), o.probability)?;
                }
                builder.set_role(tape, role);
            }
            batch += 1;
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::{LibraryId, ObjectId};
    use tapesim_workload::{ObjectRecord, Request};

    /// `n_req` disjoint requests of `per_req` 10 GB objects each, with
    /// linearly decaying popularity, plus `extra` unrequested objects.
    fn workload(n_req: u32, per_req: u32, extra: u32) -> Workload {
        let n = n_req * per_req + extra;
        let objects = (0..n)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(10),
            })
            .collect();
        let total: f64 = (1..=n_req).map(|i| i as f64).sum();
        let requests = (0..n_req)
            .map(|r| Request {
                rank: r,
                probability: (n_req - r) as f64 / total,
                objects: (r * per_req..(r + 1) * per_req).map(ObjectId).collect(),
            })
            .collect();
        Workload::new(objects, requests)
    }

    #[test]
    fn batch_tapes_interleave_libraries() {
        let cfg = paper_table1();
        let scheme = ParallelBatchPlacement::with_m(4);
        let b0 = scheme.batch_tapes(&cfg, 0).unwrap();
        assert_eq!(b0.len(), 12, "n×(d−m) = 3×4 pinned tapes");
        assert_eq!(b0[0], TapeId::new(LibraryId(0), 0));
        assert_eq!(b0[1], TapeId::new(LibraryId(1), 0));
        let b1 = scheme.batch_tapes(&cfg, 1).unwrap();
        assert_eq!(b1.len(), 12, "n×m = 3×4 switch tapes");
        assert_eq!(b1[0], TapeId::new(LibraryId(0), 4));
        let b2 = scheme.batch_tapes(&cfg, 2).unwrap();
        assert_eq!(b2[0], TapeId::new(LibraryId(0), 8));
        // Batches are disjoint.
        let all: std::collections::HashSet<_> = b0.iter().chain(&b1).chain(&b2).collect();
        assert_eq!(all.len(), 36);
    }

    #[test]
    fn batch_tapes_run_out_eventually() {
        let cfg = paper_table1();
        let scheme = ParallelBatchPlacement::with_m(4);
        // d−m=4 pinned slots + 19×4 switch slots = 80; batch 20 overflows.
        assert!(scheme.batch_tapes(&cfg, 19).is_some());
        assert!(scheme.batch_tapes(&cfg, 20).is_none());
    }

    #[test]
    fn popular_clusters_are_pinned_and_spread() {
        let cfg = paper_table1();
        // 3 requests × 20 objects × 10 GB = 200 GB per cluster.
        let w = workload(3, 20, 10);
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        p.verify_against(&w).unwrap();

        // The hottest request's objects are all on pinned tapes…
        let mut libs = std::collections::HashSet::new();
        let mut tapes = std::collections::HashSet::new();
        for i in 0..20 {
            let loc = p.locate(ObjectId(i));
            assert_eq!(p.role(loc.tape), TapeRole::Pinned, "object {i}");
            libs.insert(loc.tape.library);
            tapes.insert(loc.tape);
        }
        // …and spread across all three libraries and many tapes.
        assert_eq!(libs.len(), 3, "cluster engages every robot");
        assert!(tapes.len() >= 8, "cluster fans out, got {}", tapes.len());
    }

    #[test]
    fn pinned_batch_accumulates_most_probability() {
        let cfg = paper_table1();
        let w = workload(10, 20, 50);
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let pinned_p: f64 = p
            .pinned_tapes()
            .iter()
            .map(|&t| p.tape_probability(t))
            .sum();
        let total_p: f64 = p.used_tapes().iter().map(|&t| p.tape_probability(t)).sum();
        assert!(
            pinned_p / total_p > 0.5,
            "pinned batch holds {pinned_p:.3} of {total_p:.3}"
        );
    }

    #[test]
    fn switch_batches_have_descending_probability() {
        let cfg = paper_table1();
        // 40 requests × 40 × 10 GB = 16 TB: fills the 4.56 TB pinned batch
        // and several 4.56 TB switch batches.
        let w = workload(40, 40, 0);
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        let max_batch = p.max_switch_batch();
        assert!(max_batch >= 2, "enough data for several switch batches");
        let batch_probability = |b: u16| -> f64 {
            p.switch_batch(b)
                .iter()
                .map(|&t| p.tape_probability(t))
                .sum()
        };
        for b in 1..max_batch {
            assert!(
                batch_probability(b) >= batch_probability(b + 1) - 1e-9,
                "batch {b} lighter than batch {}",
                b + 1
            );
        }
    }

    #[test]
    fn m_parameter_controls_pinned_width() {
        let cfg = paper_table1();
        let w = workload(3, 20, 0);
        for m in 1..8u8 {
            let p = ParallelBatchPlacement::with_m(m).place(&w, &cfg).unwrap();
            let pinned = p.pinned_tapes();
            assert!(
                pinned.len() <= (8 - m) as usize * 3,
                "m={m}: {} pinned tapes",
                pinned.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "m must satisfy")]
    fn rejects_m_equal_d() {
        let cfg = paper_table1();
        let w = workload(1, 10, 0);
        let _ = ParallelBatchPlacement::with_m(8).place(&w, &cfg);
    }

    #[test]
    fn ablations_produce_valid_placements() {
        let cfg = paper_table1();
        let w = workload(5, 20, 10);
        for params in [
            ParallelBatchParams {
                use_clusters: false,
                ..ParallelBatchParams::default()
            },
            ParallelBatchParams {
                alignment: Alignment::Descending,
                ..ParallelBatchParams::default()
            },
            ParallelBatchParams {
                balancing: Balancing::RoundRobin,
                ..ParallelBatchParams::default()
            },
        ] {
            let p = ParallelBatchPlacement::new(params).place(&w, &cfg).unwrap();
            p.verify_against(&w).unwrap();
        }
    }

    #[test]
    fn deterministic() {
        let cfg = paper_table1();
        let w = workload(5, 20, 10);
        let s = ParallelBatchPlacement::with_m(4);
        let a = s.place(&w, &cfg).unwrap();
        let b = s.place(&w, &cfg).unwrap();
        for o in w.objects() {
            assert_eq!(a.locate(o.id), b.locate(o.id));
        }
    }
}
