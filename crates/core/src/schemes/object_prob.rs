//! **Object probability placement** (Christodoulakis et al., VLDB'97 \[11\]).
//!
//! The first baseline of the paper's evaluation. Individual object access
//! probabilities are assumed known — and *only* they: the scheme is blind
//! to object relationships. Objects are ranked by descending probability
//! and **dealt round-robin across the tapes in use** (the reading of the
//! paper's Figure 4, which shows a 15-object/3-tape library with each tape
//! holding an organ-pipe of every third rank): each tape accumulates a
//! balanced probability mass with its most popular resident in the middle,
//! which is what minimises expected *seek* time under independent accesses
//! and maximises *transfer* parallelism.
//!
//! The consequences the paper measures all follow from this rank striping:
//! the scheme has the best data transfer time and the lowest all-mounted
//! response (Figure 7's extreme case), it scales with libraries (Figure
//! 8), but a request's co-accessed objects scatter over many offline
//! cartridges, so its tape switch time is the worst of the three schemes
//! and dominates its response (Figure 9).

use crate::density::probability_ranked;
use crate::layout::{Placement, PlacementBuilder, PlacementError, TapeRole};
use crate::organ_pipe::organ_pipe_order;
use crate::policy::PlacementPolicy;
use crate::schemes::round_robin_tapes;
use tapesim_model::{Bytes, SystemConfig};
use tapesim_workload::Workload;

/// Configuration of the object-probability baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectProbabilityPlacement {
    /// Tape capacity utilisation coefficient `k` (< 1): the tape pool is
    /// sized so each tape targets `k × C_t` bytes.
    pub k_utilization: f64,
}

impl Default for ObjectProbabilityPlacement {
    fn default() -> Self {
        ObjectProbabilityPlacement {
            k_utilization: 0.95,
        }
    }
}

impl PlacementPolicy for ObjectProbabilityPlacement {
    fn name(&self) -> &'static str {
        "object_prob"
    }

    fn display_name(&self) -> &'static str {
        "object probability placement"
    }

    fn place(
        &self,
        workload: &Workload,
        config: &SystemConfig,
    ) -> Result<Placement, PlacementError> {
        let ranked = probability_ranked(workload);
        let tapes = round_robin_tapes(config);
        let capacity = config.library.tape.capacity;
        let soft_cap = capacity.scale(self.k_utilization);

        // Size the active tape pool from the soft capacity target.
        let total: u64 = ranked.iter().map(|o| o.size).sum();
        let pool = ((total + soft_cap.get() - 1) / soft_cap.get().max(1)) as usize;
        let pool = pool.clamp(1, tapes.len());

        // Deal ranks round-robin over the pool (Figure 4), with a capacity
        // guard walking forward to the next tape with room.
        let mut per_tape: Vec<Vec<&crate::density::RankedObject>> = vec![Vec::new(); pool];
        let mut used = vec![Bytes::ZERO; pool];
        let mut overflow_from = pool; // next fresh tape if the pool fills up
        for (rank, obj) in ranked.iter().enumerate() {
            let size = Bytes(obj.size);
            let start = rank % pool;
            let slot = (0..pool)
                .map(|delta| (start + delta) % pool)
                .find(|&i| used[i] + size <= capacity);
            match slot {
                Some(i) => {
                    used[i] += size;
                    per_tape[i].push(obj);
                }
                None => {
                    // Pool exhausted (k-slack used up): open fresh tapes.
                    if overflow_from >= tapes.len() {
                        return Err(PlacementError::OutOfTapes {
                            needed: overflow_from + 1,
                            available: tapes.len(),
                        });
                    }
                    per_tape.push(vec![obj]);
                    used.push(size);
                    overflow_from += 1;
                }
            }
        }

        // Write out: organ-pipe order within each tape; role batches follow
        // the deal order so startup mounts are well-defined.
        let mut builder = PlacementBuilder::new(config, workload);
        let total_drives = config.total_drives();
        for (i, objects) in per_tape.iter().enumerate() {
            if objects.is_empty() {
                continue;
            }
            let items: Vec<(usize, f64)> = objects
                .iter()
                .enumerate()
                .map(|(j, o)| (j, o.probability))
                .collect();
            for j in organ_pipe_order(&items) {
                let o = objects[j];
                builder.append(tapes[i], o.id, Bytes(o.size), o.probability)?;
            }
            builder.set_role(
                tapes[i],
                TapeRole::SwitchPool {
                    batch: (i / total_drives) as u16 + 1,
                },
            );
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::ObjectId;
    use tapesim_workload::{ObjectRecord, Request};

    fn workload(n: u32, size_gb: u64) -> Workload {
        let objects = (0..n)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(size_gb),
            })
            .collect();
        // Object i requested alone with probability proportional to n−i:
        // object 0 is the most popular, all probabilities distinct.
        let total: f64 = (1..=n).map(|i| i as f64).sum();
        let requests = (0..n)
            .map(|i| Request {
                rank: i,
                probability: (n - i) as f64 / total,
                objects: vec![ObjectId(i)],
            })
            .collect();
        Workload::new(objects, requests)
    }

    #[test]
    fn ranks_stripe_across_the_pool() {
        let cfg = paper_table1();
        // 30 × 100 GB = 3 TB → pool of ceil(3000/380) = 8 tapes.
        let w = workload(30, 100);
        let p = ObjectProbabilityPlacement::default()
            .place(&w, &cfg)
            .unwrap();
        p.verify_against(&w).unwrap();
        assert_eq!(p.n_used_tapes(), 8);
        // Consecutive ranks land on different tapes…
        let t0 = p.locate(ObjectId(0)).tape;
        let t1 = p.locate(ObjectId(1)).tape;
        assert_ne!(t0, t1);
        // …and rank r and rank r+pool share a tape.
        assert_eq!(t0, p.locate(ObjectId(8)).tape);
        // Consecutive tapes rotate libraries (round-robin enumeration).
        assert_ne!(t0.library, t1.library);
    }

    #[test]
    fn tape_probabilities_are_balanced() {
        let cfg = paper_table1();
        let w = workload(64, 50);
        let p = ObjectProbabilityPlacement::default()
            .place(&w, &cfg)
            .unwrap();
        let probs: Vec<f64> = p
            .used_tapes()
            .iter()
            .map(|&t| p.tape_probability(t))
            .collect();
        let max = probs.iter().cloned().fold(f64::MIN, f64::max);
        let min = probs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.5,
            "striping should balance tape probability: {probs:?}"
        );
    }

    #[test]
    fn organ_pipe_within_tape() {
        let cfg = paper_table1();
        let w = workload(24, 100); // pool of 7; tape of rank 0 gets ranks 0,7,14,21
        let p = ObjectProbabilityPlacement::default()
            .place(&w, &cfg)
            .unwrap();
        let tape = p.locate(ObjectId(0)).tape;
        let layout = p.tape_layout(tape);
        assert_eq!(layout.len(), 4);
        // Most popular resident (rank 0) sits mid-tape, not at the front.
        let pos = layout
            .extents()
            .iter()
            .position(|e| e.object == ObjectId(0))
            .unwrap();
        assert!(pos == 1 || pos == 2, "organ-pipe middle, got index {pos}");
    }

    #[test]
    fn out_of_tapes_detected() {
        let cfg = tapesim_model::SystemConfig::new(
            1,
            tapesim_model::specs::stk_l80_library(
                tapesim_model::specs::lto3_drive(),
                tapesim_model::specs::lto3_tape(),
            ),
        )
        .unwrap();
        // 81 tapes' worth of 400 GB objects into an 80-tape library.
        let w = workload(81, 400);
        let err = ObjectProbabilityPlacement::default().place(&w, &cfg);
        assert!(matches!(err, Err(PlacementError::OutOfTapes { .. })));
    }

    #[test]
    fn deterministic() {
        let cfg = paper_table1();
        let w = workload(50, 40);
        let scheme = ObjectProbabilityPlacement::default();
        let a = scheme.place(&w, &cfg).unwrap();
        let b = scheme.place(&w, &cfg).unwrap();
        for i in 0..50 {
            assert_eq!(a.locate(ObjectId(i)), b.locate(ObjectId(i)));
        }
    }
}
