//! The three placement schemes evaluated in the paper.

pub mod cluster_prob;
pub mod object_prob;
pub mod parallel_batch;

use tapesim_model::{SystemConfig, TapeId};

/// Tape enumeration interleaved across libraries:
/// `L0:T0, L1:T0, …, Ln:T0, L0:T1, …` — consecutive tapes live in
/// *different* libraries, so schemes that fill tapes in this order spread
/// consecutive (equally popular) content across robots.
pub fn round_robin_tapes(config: &SystemConfig) -> Vec<TapeId> {
    let mut out = Vec::with_capacity(config.total_tapes());
    for slot in 0..config.library.tapes {
        for lib in config.library_ids() {
            out.push(TapeId::new(lib, slot));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::LibraryId;

    #[test]
    fn round_robin_interleaves_libraries() {
        let cfg = paper_table1();
        let tapes = round_robin_tapes(&cfg);
        assert_eq!(tapes.len(), 240);
        assert_eq!(tapes[0], TapeId::new(LibraryId(0), 0));
        assert_eq!(tapes[1], TapeId::new(LibraryId(1), 0));
        assert_eq!(tapes[2], TapeId::new(LibraryId(2), 0));
        assert_eq!(tapes[3], TapeId::new(LibraryId(0), 1));
        // Every tape appears exactly once.
        let set: std::collections::HashSet<_> = tapes.iter().collect();
        assert_eq!(set.len(), 240);
    }
}
