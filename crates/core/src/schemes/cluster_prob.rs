//! **Cluster probability placement** (Li & Prabhakar, MSS'02 \[20\]).
//!
//! The second baseline. It assumes the access cost of a tape library is
//! dominated by media switches and head positioning, and therefore packs
//! objects with a strong access relationship **onto the same tape**: a
//! request then touches as few cartridges as possible. Clusters are placed
//! in descending popularity so the hottest cartridges accumulate the most
//! probability (keeping them mounted avoids most switches), and each
//! cartridge is organ-pipe aligned internally.
//!
//! What the scheme gives up is *transfer parallelism*: a whole request
//! streams from one drive, which is exactly the behaviour the paper's
//! Figure 8 (no scaling with libraries) and Figure 9 (worst transfer time)
//! show.

use crate::density::density_ranked;
use crate::layout::{Placement, PlacementBuilder, PlacementError, TapeRole};
use crate::organ_pipe::organ_pipe_order;
use crate::policy::PlacementPolicy;
use crate::schemes::round_robin_tapes;
use tapesim_cluster::ClusterParams;
use tapesim_model::{Bytes, SystemConfig};
use tapesim_workload::Workload;

/// Configuration of the cluster-probability baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterProbabilityPlacement {
    /// Tape capacity utilisation coefficient `k` (< 1).
    pub k_utilization: f64,
    /// Clustering threshold as a fraction of the smallest request
    /// probability (see [`ClusterParams::threshold_fraction`]).
    pub threshold_fraction: f64,
}

impl Default for ClusterProbabilityPlacement {
    fn default() -> Self {
        ClusterProbabilityPlacement {
            k_utilization: 0.95,
            threshold_fraction: 0.5,
        }
    }
}

impl PlacementPolicy for ClusterProbabilityPlacement {
    fn name(&self) -> &'static str {
        "cluster_prob"
    }

    fn display_name(&self) -> &'static str {
        "cluster probability placement"
    }

    fn place(
        &self,
        workload: &Workload,
        config: &SystemConfig,
    ) -> Result<Placement, PlacementError> {
        let soft_cap = config.library.tape.capacity.scale(self.k_utilization);
        // Clusters must fit one cartridge — that is the whole point of the
        // scheme. Average linkage keeps overlapping requests from chaining
        // into one mega-cluster (the paper's workload shares objects across
        // requests aggressively).
        let params = ClusterParams {
            threshold_fraction: self.threshold_fraction,
            max_bytes: Some(soft_cap),
            linkage: tapesim_cluster::Linkage::Average,
            ..ClusterParams::default()
        };
        let clusters = params.cluster(workload);

        // Rank objects once; index by id for cluster accounting.
        let ranked = density_ranked(workload);
        let mut by_id = vec![ranked[0]; ranked.len()];
        for r in &ranked {
            by_id[r.id.idx()] = *r;
        }

        // Order clusters by descending total probability (ties: smaller
        // first member — deterministic).
        let mut order: Vec<usize> = (0..clusters.clusters().len()).collect();
        let cluster_prob: Vec<f64> = clusters
            .clusters()
            .iter()
            .map(|c| c.iter().map(|o| by_id[o.idx()].probability).sum())
            .collect();
        order.sort_by(|&a, &b| {
            cluster_prob[b]
                .partial_cmp(&cluster_prob[a])
                .expect("finite probabilities")
                .then(clusters.clusters()[a][0].cmp(&clusters.clusters()[b][0]))
        });

        // First-fit in popularity order over library-interleaved tapes.
        let tapes = round_robin_tapes(config);
        let mut per_tape: Vec<Vec<tapesim_model::ObjectId>> = vec![Vec::new(); tapes.len()];
        let mut used: Vec<Bytes> = vec![Bytes::ZERO; tapes.len()];
        let mut frontier = 0usize; // first tape that has ever been empty
        for &c in &order {
            let members = &clusters.clusters()[c];
            let bytes: Bytes = members.iter().map(|o| Bytes(by_id[o.idx()].size)).sum();
            let slot = (0..=frontier.min(tapes.len() - 1)).find(|&i| {
                used[i] + bytes <= soft_cap || (per_tape[i].is_empty() && bytes > soft_cap)
            });
            let Some(slot) = slot else {
                return Err(PlacementError::OutOfTapes {
                    needed: tapes.len() + 1,
                    available: tapes.len(),
                });
            };
            used[slot] += bytes;
            per_tape[slot].extend_from_slice(members);
            if slot == frontier && frontier + 1 < tapes.len() {
                frontier += 1;
            } else if slot == frontier {
                // Last tape opened; future misfits are errors.
            }
        }

        // Write out with organ-pipe alignment and popularity-ordered roles.
        let mut builder = PlacementBuilder::new(config, workload);
        let total_drives = config.total_drives();
        let mut fill_rank = 0usize;
        for (i, members) in per_tape.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let items: Vec<(usize, f64)> = members
                .iter()
                .enumerate()
                .map(|(j, o)| (j, by_id[o.idx()].probability))
                .collect();
            for j in organ_pipe_order(&items) {
                let o = by_id[members[j].idx()];
                builder.append(tapes[i], o.id, Bytes(o.size), o.probability)?;
            }
            builder.set_role(
                tapes[i],
                TapeRole::SwitchPool {
                    batch: (fill_rank / total_drives) as u16 + 1,
                },
            );
            fill_rank += 1;
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;
    use tapesim_model::ObjectId;
    use tapesim_workload::{ObjectRecord, Request};

    /// Two requests with disjoint object sets plus background singletons.
    fn workload() -> Workload {
        let objects = (0..20)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(10),
            })
            .collect();
        let requests = vec![
            Request {
                rank: 0,
                probability: 0.7,
                objects: (0..8).map(ObjectId).collect(),
            },
            Request {
                rank: 1,
                probability: 0.3,
                objects: (8..14).map(ObjectId).collect(),
            },
        ];
        Workload::new(objects, requests)
    }

    #[test]
    fn request_clusters_land_on_single_tapes() {
        let cfg = paper_table1();
        let p = ClusterProbabilityPlacement::default()
            .place(&workload(), &cfg)
            .unwrap();
        // All of request 0's objects on one tape.
        let t0 = p.locate(ObjectId(0)).tape;
        for i in 0..8 {
            assert_eq!(p.locate(ObjectId(i)).tape, t0, "object {i} strayed");
        }
        // All of request 1's objects on one tape (possibly the same: both
        // clusters total 140 GB < 380 GB soft cap).
        let t1 = p.locate(ObjectId(8)).tape;
        for i in 8..14 {
            assert_eq!(p.locate(ObjectId(i)).tape, t1);
        }
    }

    #[test]
    fn hottest_cluster_gets_the_first_tape() {
        let cfg = paper_table1();
        let p = ClusterProbabilityPlacement::default()
            .place(&workload(), &cfg)
            .unwrap();
        let t0 = p.locate(ObjectId(0)).tape;
        assert_eq!(t0.slot, 0, "0.7-probability cluster placed first");
        assert!(p.tape_probability(t0) >= 0.7);
    }

    #[test]
    fn placement_is_complete_and_valid() {
        let cfg = paper_table1();
        let w = workload();
        let p = ClusterProbabilityPlacement::default()
            .place(&w, &cfg)
            .unwrap();
        p.verify_against(&w).unwrap();
        assert!(p.n_used_tapes() >= 1);
    }

    #[test]
    fn deterministic() {
        let cfg = paper_table1();
        let w = workload();
        let s = ClusterProbabilityPlacement::default();
        let a = s.place(&w, &cfg).unwrap();
        let b = s.place(&w, &cfg).unwrap();
        for i in 0..20 {
            assert_eq!(a.locate(ObjectId(i)), b.locate(ObjectId(i)));
        }
    }
}
