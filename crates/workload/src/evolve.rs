//! Workload evolution across backup epochs (§7 of the paper).
//!
//! "In a real system, objects are moved to tapes periodically. When we
//! place objects on tapes, we only have the local knowledge of object
//! probability and relationship." To study that regime, an
//! [`EvolutionSpec`] advances a workload by one epoch:
//!
//! * the object population **grows** (new backups arrive; ids are
//!   append-only, so objects already on tape keep their identity),
//! * a fraction of the pre-defined requests **churns**: old restore
//!   patterns disappear, new ones — over a mix of old and new objects —
//!   take the *top* popularity ranks (recency bias), and the surviving
//!   requests slide down the Zipf ladder.
//!
//! The incremental placer (`tapesim-placement`) consumes the evolved
//! workloads; the `ext_online` experiment measures how placement quality
//! decays when only new objects can be placed.

use crate::dist::Zipf;
use crate::object::{ObjectRecord, ObjectSizeSpec};
use crate::request::{Request, RequestSpec};
use crate::workload::Workload;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use tapesim_model::ObjectId;

/// One epoch's worth of change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionSpec {
    /// Fractional object-population growth per epoch (e.g. `0.05`).
    pub growth: f64,
    /// Fraction of pre-defined requests replaced per epoch (e.g. `0.2`).
    pub churn: f64,
    /// Size distribution of newly arriving objects.
    pub new_sizes: ObjectSizeSpec,
    /// Shape of newly arriving requests (count field is ignored; the
    /// request-set size stays constant).
    pub new_requests: RequestSpec,
    /// Epoch seed; pass a different value per epoch.
    pub seed: u64,
}

impl EvolutionSpec {
    /// Advances `workload` by one epoch.
    ///
    /// Invariants: existing object ids are preserved (append-only
    /// population); the request count and the Zipf(α) popularity law are
    /// preserved; new requests occupy the top ranks.
    pub fn advance(&self, workload: &Workload) -> Workload {
        assert!((0.0..1.0).contains(&self.churn), "churn must be in [0,1)");
        assert!(self.growth >= 0.0, "growth must be non-negative");
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);

        // Grow the population.
        let n_old = workload.objects().len() as u32;
        let n_new = (n_old as f64 * self.growth).round() as u32;
        let mut objects = workload.objects().to_vec();
        let dist = self.new_sizes.distribution();
        for i in 0..n_new {
            objects.push(ObjectRecord {
                id: ObjectId(n_old + i),
                size: tapesim_model::Bytes(dist.sample(&mut rng).round() as u64),
            });
        }
        let n_total = objects.len() as u32;

        // Churn the request set.
        let n_requests = workload.requests().len();
        let n_replaced = ((n_requests as f64 * self.churn).round() as usize).min(n_requests);
        let mut survivors: Vec<&Request> = workload.requests().iter().collect();
        survivors.shuffle(&mut rng);
        survivors.truncate(n_requests - n_replaced);
        // Survivors keep their previous relative popularity order.
        survivors.sort_by_key(|r| r.rank);

        // Fresh requests favour recent objects: half their picks come from
        // the newest 20% of the population.
        let recent_floor = (n_total as f64 * 0.8) as u32;
        let count_dist = crate::dist::BoundedPareto::new(
            self.new_requests.min_objects as f64,
            self.new_requests.max_objects as f64 + 1.0 - 1e-9,
            self.new_requests.count_shape,
        );
        let mut fresh: Vec<Vec<ObjectId>> = Vec::with_capacity(n_replaced);
        for _ in 0..n_replaced {
            let k = (count_dist.sample(&mut rng).floor() as u32)
                .clamp(self.new_requests.min_objects, self.new_requests.max_objects);
            let mut picks = std::collections::HashSet::with_capacity(k as usize);
            while (picks.len() as u32) < k {
                let id = if rng.gen_bool(0.5) && recent_floor < n_total {
                    rng.gen_range(recent_floor..n_total)
                } else {
                    rng.gen_range(0..n_total)
                };
                picks.insert(ObjectId(id));
            }
            let mut objs: Vec<ObjectId> = picks.into_iter().collect();
            objs.sort_unstable();
            fresh.push(objs);
        }

        // Re-rank: fresh requests first (recency bias), then survivors.
        let zipf = Zipf::new(n_requests, self.new_requests.alpha);
        let mut requests = Vec::with_capacity(n_requests);
        for (rank, objs) in fresh
            .into_iter()
            .chain(survivors.into_iter().map(|r| r.objects.clone()))
            .enumerate()
        {
            requests.push(Request {
                rank: rank as u32,
                probability: zipf.probability(rank),
                objects: objs,
            });
        }
        Workload::new(objects, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn base() -> Workload {
        WorkloadSpec {
            objects: 1_000,
            sizes: ObjectSizeSpec::default(),
            requests: RequestSpec {
                count: 40,
                min_objects: 10,
                max_objects: 20,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 1,
        }
        .generate()
    }

    fn spec(seed: u64) -> EvolutionSpec {
        EvolutionSpec {
            growth: 0.1,
            churn: 0.25,
            new_sizes: ObjectSizeSpec::default(),
            new_requests: RequestSpec {
                count: 40,
                min_objects: 10,
                max_objects: 20,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed,
        }
    }

    #[test]
    fn population_grows_append_only() {
        let w = base();
        let next = spec(7).advance(&w);
        assert_eq!(next.objects().len(), 1_100);
        // Old objects unchanged (same id, same size).
        for i in 0..1_000 {
            assert_eq!(next.objects()[i], w.objects()[i]);
        }
    }

    #[test]
    fn request_set_size_and_mass_preserved() {
        let w = base();
        let next = spec(7).advance(&w);
        assert_eq!(next.requests().len(), 40);
        let total: f64 = next.requests().iter().map(|r| r.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Exactly 10 requests replaced (25% of 40): 30 old membership
        // vectors survive.
        let old_sets: std::collections::HashSet<&Vec<ObjectId>> =
            w.requests().iter().map(|r| &r.objects).collect();
        let survivors = next
            .requests()
            .iter()
            .filter(|r| old_sets.contains(&r.objects))
            .count();
        assert_eq!(survivors, 30);
    }

    #[test]
    fn fresh_requests_take_top_ranks() {
        let w = base();
        let next = spec(7).advance(&w);
        let old_sets: std::collections::HashSet<&Vec<ObjectId>> =
            w.requests().iter().map(|r| &r.objects).collect();
        for r in next.requests().iter().take(10) {
            assert!(
                !old_sets.contains(&r.objects),
                "rank {} should be a fresh request",
                r.rank
            );
        }
    }

    #[test]
    fn fresh_requests_reference_new_objects() {
        let w = base();
        let next = spec(7).advance(&w);
        let touches_new = next
            .requests()
            .iter()
            .take(10)
            .any(|r| r.objects.iter().any(|o| o.0 >= 1_000));
        assert!(touches_new, "recency bias should reach the new objects");
    }

    #[test]
    fn deterministic_per_seed_and_chainable() {
        let w = base();
        let a = spec(3).advance(&w);
        let b = spec(3).advance(&w);
        assert_eq!(a, b);
        let c = spec(4).advance(&a);
        assert_eq!(c.objects().len(), 1_210, "10% growth compounds");
    }

    #[test]
    #[should_panic(expected = "churn must be")]
    fn rejects_full_churn() {
        let w = base();
        let mut s = spec(1);
        s.churn = 1.0;
        let _ = s.advance(&w);
    }
}
