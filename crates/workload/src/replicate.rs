//! Hot-object replication — trading tape capacity for switch time.
//!
//! Half the objects of the paper's workload appear in more than one
//! request (300 requests × ~125 picks over 30 000 objects). Whatever a
//! placement scheme does, a shared object can physically sit with only
//! *one* of its requests; every other request must fetch it from a foreign
//! cartridge — the residual tape exchanges that dominate even parallel
//! batch placement's switch time.
//!
//! Tape capacity, unlike drives and robots, is cheap (the paper's system
//! is ~46% empty). [`replicate_workload`] spends a byte budget on *private
//! copies*: the most valuable shared objects are duplicated so that each
//! requesting group references its own copy, which the placement scheme
//! then co-locates with the rest of the group. Replica selection is
//! value-ordered (`probability × (copies−1) / size` — switch savings per
//! byte) and the budget is a hard cap.
//!
//! The `ext_replication` experiment sweeps the budget and measures how far
//! a few percent of extra bytes push parallel batch placement toward the
//! zero-residual-switch ideal.

use crate::object::ObjectRecord;
use crate::request::Request;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tapesim_model::{Bytes, ObjectId};

/// Replication parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSpec {
    /// Hard cap on extra bytes spent on copies.
    pub budget: Bytes,
}

/// Accounting of what was replicated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaMap {
    /// `(original, copy)` pairs, in allocation order.
    pub copies: Vec<(ObjectId, ObjectId)>,
    /// Extra bytes actually spent.
    pub spent: Bytes,
}

impl ReplicaMap {
    /// Number of copies made.
    pub fn n_copies(&self) -> usize {
        self.copies.len()
    }

    /// For every object in a copy group (the original and each of its
    /// copies), the *other* members of the group — the replicas a failed
    /// read can fall back to. Objects with no copies are absent.
    pub fn alternates(&self) -> BTreeMap<ObjectId, Vec<ObjectId>> {
        let mut groups: BTreeMap<ObjectId, Vec<ObjectId>> = BTreeMap::new();
        for &(original, copy) in &self.copies {
            groups.entry(original).or_default().push(copy);
        }
        let mut out = BTreeMap::new();
        for (original, copies) in &groups {
            let mut members = Vec::with_capacity(copies.len() + 1);
            members.push(*original);
            members.extend(copies.iter().copied());
            for &m in &members {
                out.insert(m, members.iter().copied().filter(|&o| o != m).collect());
            }
        }
        out
    }
}

/// Rewrites `workload` so that, within the byte budget, every request
/// holding a *shared* object gets its own private copy (the first sharer
/// keeps the original).
///
/// Requests' probabilities and cardinalities are unchanged; only object
/// identity is rewritten, so any [`crate::Workload`]-consuming placement
/// scheme benefits without modification.
pub fn replicate_workload(workload: &Workload, spec: ReplicationSpec) -> (Workload, ReplicaMap) {
    let probs = workload.object_probabilities();

    // Sharing degree per object.
    let mut sharers: Vec<Vec<usize>> = vec![Vec::new(); workload.objects().len()];
    for (r_idx, r) in workload.requests().iter().enumerate() {
        for o in &r.objects {
            sharers[o.idx()].push(r_idx);
        }
    }

    // Value-ordered candidates: switch savings per byte. Each copy beyond
    // the first sharer saves roughly one foreign-cartridge visit weighted
    // by the object's probability.
    let mut candidates: Vec<usize> = (0..workload.objects().len())
        .filter(|&i| sharers[i].len() >= 2)
        .collect();
    let value = |i: usize| -> f64 {
        let extra = (sharers[i].len() - 1) as f64;
        probs[i] * extra / workload.objects()[i].size.get().max(1) as f64
    };
    candidates.sort_by(|&a, &b| {
        value(b)
            .partial_cmp(&value(a))
            .expect("finite values")
            .then(a.cmp(&b))
    });

    let mut objects: Vec<ObjectRecord> = workload.objects().to_vec();
    let mut requests: Vec<Request> = workload.requests().to_vec();
    let mut copies = Vec::new();
    let mut spent = Bytes::ZERO;
    for i in candidates {
        let size = workload.objects()[i].size;
        let extra_copies = sharers[i].len() - 1;
        let cost = Bytes(size.get() * extra_copies as u64);
        if spent + cost > spec.budget {
            continue; // try cheaper candidates further down the list
        }
        spent += cost;
        // First sharer keeps the original; the rest get private copies.
        for &r_idx in &sharers[i][1..] {
            let copy = ObjectId(objects.len() as u32);
            objects.push(ObjectRecord { id: copy, size });
            copies.push((ObjectId(i as u32), copy));
            let slot = requests[r_idx]
                .objects
                .iter()
                .position(|&o| o.idx() == i)
                .expect("sharer references the object");
            requests[r_idx].objects[slot] = copy;
        }
    }

    (
        Workload::new(objects, requests),
        ReplicaMap { copies, spent },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Objects 0..6 of 2 GB; object 0 shared by all three requests,
    /// object 1 by two.
    fn base() -> Workload {
        let objects = (0..6)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(2),
            })
            .collect();
        let requests = vec![
            Request {
                rank: 0,
                probability: 0.5,
                objects: vec![ObjectId(0), ObjectId(1), ObjectId(2)],
            },
            Request {
                rank: 1,
                probability: 0.3,
                objects: vec![ObjectId(0), ObjectId(1), ObjectId(3)],
            },
            Request {
                rank: 2,
                probability: 0.2,
                objects: vec![ObjectId(0), ObjectId(4), ObjectId(5)],
            },
        ];
        Workload::new(objects, requests)
    }

    #[test]
    fn unlimited_budget_privatises_every_shared_object() {
        let w = base();
        let (replicated, map) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::tb(1),
            },
        );
        // Object 0: 2 extra copies; object 1: 1 extra copy.
        assert_eq!(map.n_copies(), 3);
        assert_eq!(map.spent, Bytes::gb(6));
        assert_eq!(replicated.objects().len(), 9);
        // No object is shared any more.
        let probs_sharers = {
            let mut counts = vec![0u32; replicated.objects().len()];
            for r in replicated.requests() {
                for o in &r.objects {
                    counts[o.idx()] += 1;
                }
            }
            counts.into_iter().max().unwrap()
        };
        assert_eq!(probs_sharers, 1, "every object now has exactly one sharer");
        // Request shapes unchanged.
        for (orig, rep) in w.requests().iter().zip(replicated.requests()) {
            assert_eq!(orig.objects.len(), rep.objects.len());
            assert_eq!(orig.probability, rep.probability);
        }
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let w = base();
        let (replicated, map) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::ZERO,
            },
        );
        assert_eq!(map.n_copies(), 0);
        assert_eq!(map.spent, Bytes::ZERO);
        assert_eq!(&replicated, &w);
    }

    #[test]
    fn budget_is_a_hard_cap_and_highest_value_goes_first() {
        let w = base();
        // 4 GB covers object 0 (2 copies × 2 GB) but not object 1 as well.
        let (replicated, map) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::gb(4),
            },
        );
        assert_eq!(map.spent, Bytes::gb(4));
        assert_eq!(map.n_copies(), 2);
        // Object 0 (higher sharing × probability) was chosen.
        assert!(map.copies.iter().all(|&(o, _)| o == ObjectId(0)));
        assert_eq!(replicated.objects().len(), 8);
    }

    #[test]
    fn alternates_link_every_group_member_to_the_others() {
        let w = base();
        let (_, map) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::tb(1),
            },
        );
        let alts = map.alternates();
        // Object 0 got two copies: a three-member group, each member
        // linked to the other two.
        let group0: Vec<ObjectId> = map
            .copies
            .iter()
            .filter(|&&(o, _)| o == ObjectId(0))
            .map(|&(_, c)| c)
            .collect();
        assert_eq!(group0.len(), 2);
        assert_eq!(alts[&ObjectId(0)], group0);
        for &c in &group0 {
            let others = &alts[&c];
            assert_eq!(others.len(), 2);
            assert!(others.contains(&ObjectId(0)));
            assert!(!others.contains(&c));
        }
        // Unreplicated objects have no alternates.
        assert!(!alts.contains_key(&ObjectId(2)));
        // Zero budget: the map is empty.
        let (_, empty) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::ZERO,
            },
        );
        assert!(empty.alternates().is_empty());
    }

    #[test]
    fn total_requested_bytes_are_preserved_per_request() {
        let w = base();
        let (replicated, _) = replicate_workload(
            &w,
            ReplicationSpec {
                budget: Bytes::tb(1),
            },
        );
        for (orig, rep) in w.requests().iter().zip(replicated.requests()) {
            assert_eq!(w.request_bytes(orig), replicated.request_bytes(rep));
        }
    }
}
