//! Weighted request sampling.
//!
//! The simulator services 200 requests "chosen from the 300 pre-defined
//! requests based on the probability distribution" (§6). [`RequestSampler`]
//! implements Vose's alias method: O(n) setup, O(1) per draw, exact with
//! respect to the given weights.

use rand::Rng;

/// O(1) weighted sampler over request indices (Vose's alias method).
#[derive(Debug, Clone)]
pub struct RequestSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl RequestSampler {
    /// Builds the alias table from (not necessarily normalised) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> RequestSampler {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are exactly 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        RequestSampler { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true; construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_range(0.0..1.0) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Draws `count` indices into a fresh vector.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn frequencies_track_weights() {
        let weights = [5.0, 3.0, 1.0, 1.0];
        let s = RequestSampler::new(&weights);
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[s.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0 * n as f64;
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "category {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let s = RequestSampler::new(&[1.0, 0.0, 1.0]);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category() {
        let s = RequestSampler::new(&[42.0]);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = RequestSampler::new(&[0.5, 0.25, 0.25]);
        let a = s.sample_many(50, &mut ChaCha12Rng::seed_from_u64(99));
        let b = s.sample_many(50, &mut ChaCha12Rng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn rejects_all_zero() {
        let _ = RequestSampler::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        let _ = RequestSampler::new(&[1.0, -0.1]);
    }
}
