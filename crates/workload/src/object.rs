//! Object population generation.
//!
//! The paper fixes 30 000 objects whose sizes "follow a power law
//! distribution within a pre-defined range" (§6). [`ObjectSizeSpec`]
//! captures that range plus the tail index, and can be *calibrated*: given a
//! target mean object size, the bounds are rescaled so the analytic mean of
//! the bounded Pareto hits the target. The request-size sweep (Figure 7)
//! changes request size "by changing the object size" exactly this way.

use crate::dist::BoundedPareto;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tapesim_model::{Bytes, ObjectId};

/// One object of the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// Dense identifier (index into the population).
    pub id: ObjectId,
    /// Object size.
    pub size: Bytes,
}

/// Size distribution for the object population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectSizeSpec {
    /// Smallest object, bytes.
    pub min: Bytes,
    /// Largest object, bytes.
    pub max: Bytes,
    /// Bounded-Pareto tail index (density ∝ size^-(shape+1)).
    pub shape: f64,
}

impl Default for ObjectSizeSpec {
    /// 256 MB – 16 GB with tail index 1.2; [`ObjectSizeSpec::calibrated`]
    /// rescales this to hit an experiment's target mean.
    fn default() -> Self {
        ObjectSizeSpec {
            min: Bytes::mb(256),
            max: Bytes::gb(16),
            shape: 1.2,
        }
    }
}

impl ObjectSizeSpec {
    /// The distribution over sizes in bytes.
    pub fn distribution(&self) -> BoundedPareto {
        BoundedPareto::new(self.min.get() as f64, self.max.get() as f64, self.shape)
    }

    /// Analytic mean object size.
    pub fn mean(&self) -> Bytes {
        Bytes(self.distribution().mean().round() as u64)
    }

    /// Rescales the bounds so the analytic mean equals `target_mean`
    /// (the shape, and therefore the *shape* of the distribution, is
    /// preserved; only the scale changes).
    pub fn calibrated(&self, target_mean: Bytes) -> ObjectSizeSpec {
        let current = self.distribution().mean();
        let factor = target_mean.get() as f64 / current;
        ObjectSizeSpec {
            min: self.min.scale(factor),
            max: self.max.scale(factor),
            shape: self.shape,
        }
    }

    /// Generates `count` objects with ids `0..count`.
    pub fn generate<R: Rng + ?Sized>(&self, count: u32, rng: &mut R) -> Vec<ObjectRecord> {
        let dist = self.distribution();
        (0..count)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes(dist.sample(rng).round() as u64),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn generates_dense_ids_in_range() {
        let spec = ObjectSizeSpec::default();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let objs = spec.generate(1000, &mut rng);
        assert_eq!(objs.len(), 1000);
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(o.id, ObjectId(i as u32));
            assert!(o.size >= spec.min && o.size <= spec.max);
        }
    }

    #[test]
    fn calibration_hits_target_mean() {
        let spec = ObjectSizeSpec::default();
        let target = Bytes::gb(2);
        let cal = spec.calibrated(target);
        let got = cal.mean();
        let rel = (got.get() as f64 - target.get() as f64).abs() / target.get() as f64;
        assert!(rel < 1e-6, "calibrated mean {got} vs target {target}");
        assert_eq!(cal.shape, spec.shape, "shape preserved");
    }

    #[test]
    fn calibration_is_deterministic_given_seed() {
        let spec = ObjectSizeSpec::default().calibrated(Bytes::gb(1));
        let a = spec.generate(100, &mut ChaCha12Rng::seed_from_u64(9));
        let b = spec.generate(100, &mut ChaCha12Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_mean_tracks_calibration() {
        let target = Bytes::gb(2);
        let spec = ObjectSizeSpec::default().calibrated(target);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let objs = spec.generate(30_000, &mut rng);
        let total: u64 = objs.iter().map(|o| o.size.get()).sum();
        let mean = total as f64 / objs.len() as f64;
        let rel = (mean - target.get() as f64).abs() / target.get() as f64;
        assert!(rel < 0.05, "empirical mean off by {:.1}%", rel * 100.0);
    }
}
