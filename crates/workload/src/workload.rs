//! The complete workload: objects + requests + derived quantities.
//!
//! A [`Workload`] is what placement schemes and the simulator consume. It
//! owns the object population and the pre-defined request set, and computes
//! the derived quantities the paper's algorithms need:
//!
//! * per-object access probability `P(O_i) = Σ_{R ∋ O_i} P(R)` (§5.3 step 1),
//! * per-object probability **density** `P(O_i)/size(O_i)` (§5.3 step 2),
//! * average request size in bytes (the x-axis of Figures 6–9).

use crate::object::{ObjectRecord, ObjectSizeSpec};
use crate::request::{Request, RequestSpec};
use crate::sampler::RequestSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use tapesim_model::{Bytes, ObjectId};

/// Generation parameters for a complete workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of objects (paper: 30 000).
    pub objects: u32,
    /// Object size distribution.
    pub sizes: ObjectSizeSpec,
    /// Request-set parameters.
    pub requests: RequestSpec,
    /// Master seed; every derived stream is a fixed function of it.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    /// The paper's §6 settings: 30 000 objects, 300 requests of 100–150
    /// objects, α = 0.3, sizes calibrated to a ≈213 GB average request
    /// (the Figure 6 operating point).
    fn default() -> Self {
        let requests = RequestSpec::default();
        // Average request carries ~125 objects; 213 GB / 125 ≈ 1.7 GB.
        let sizes = ObjectSizeSpec::default().calibrated(Bytes::mb(1704));
        WorkloadSpec {
            objects: 30_000,
            sizes,
            requests,
            seed: 0x5EED_7A9E,
        }
    }
}

impl WorkloadSpec {
    /// Returns a copy with the Zipf skew replaced.
    pub fn with_alpha(mut self, alpha: f64) -> WorkloadSpec {
        self.requests.alpha = alpha;
        self
    }

    /// Returns a copy with object sizes recalibrated so the *average
    /// request* is `target` bytes (mean object count × mean object size).
    pub fn with_target_request_size(mut self, target: Bytes) -> WorkloadSpec {
        let mean_count = crate::dist::BoundedPareto::new(
            self.requests.min_objects as f64,
            self.requests.max_objects as f64,
            self.requests.count_shape,
        )
        .mean();
        let per_object = Bytes((target.get() as f64 / mean_count).round() as u64);
        self.sizes = self.sizes.calibrated(per_object);
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> WorkloadSpec {
        self.seed = seed;
        self
    }

    /// Generates the workload deterministically from the spec.
    pub fn generate(&self) -> Workload {
        // Independent, documented sub-streams of the master seed: changing α
        // (stream 2's parameters) must not perturb object sizes (stream 1).
        let mut size_rng = ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(0xA11CE));
        let mut req_rng = ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(0xB0B));
        let objects = self.sizes.generate(self.objects, &mut size_rng);
        let requests = self.requests.generate(self.objects, &mut req_rng);
        Workload::new(objects, requests)
    }
}

/// A generated workload: object population plus pre-defined request set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    objects: Vec<ObjectRecord>,
    requests: Vec<Request>,
}

impl Workload {
    /// Assembles a workload from parts (generated or hand-built in tests).
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense `0..objects.len()` or a request
    /// references a missing object.
    pub fn new(objects: Vec<ObjectRecord>, requests: Vec<Request>) -> Workload {
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(o.id.idx(), i, "object ids must be dense");
        }
        for r in &requests {
            for o in &r.objects {
                assert!(
                    o.idx() < objects.len(),
                    "request {} references unknown object {o}",
                    r.rank
                );
            }
        }
        Workload { objects, requests }
    }

    /// The object population.
    pub fn objects(&self) -> &[ObjectRecord] {
        &self.objects
    }

    /// The pre-defined requests, most popular first.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Size of one object.
    pub fn size_of(&self, id: ObjectId) -> Bytes {
        self.objects[id.idx()].size
    }

    /// Total bytes across the population.
    pub fn total_bytes(&self) -> Bytes {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Bytes requested by one request.
    pub fn request_bytes(&self, request: &Request) -> Bytes {
        request.objects.iter().map(|&o| self.size_of(o)).sum()
    }

    /// Unweighted average request size over the pre-defined set.
    pub fn avg_request_bytes(&self) -> Bytes {
        if self.requests.is_empty() {
            return Bytes::ZERO;
        }
        let total: u64 = self
            .requests
            .iter()
            .map(|r| self.request_bytes(r).get())
            .sum();
        Bytes(total / self.requests.len() as u64)
    }

    /// Per-object access probability `P(O_i) = Σ_{R ∋ O_i} P(R)`
    /// (§5.3 step 1). Objects in no request get probability 0.
    pub fn object_probabilities(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.objects.len()];
        for r in &self.requests {
            for o in &r.objects {
                p[o.idx()] += r.probability;
            }
        }
        p
    }

    /// A sampler over the pre-defined requests weighted by popularity.
    pub fn request_sampler(&self) -> RequestSampler {
        let weights: Vec<f64> = self.requests.iter().map(|r| r.probability).collect();
        RequestSampler::new(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            objects: 2_000,
            sizes: ObjectSizeSpec::default(),
            requests: RequestSpec {
                count: 50,
                min_objects: 10,
                max_objects: 20,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn changing_alpha_keeps_object_sizes() {
        let a = small_spec().generate();
        let b = small_spec().with_alpha(0.9).generate();
        assert_eq!(a.objects(), b.objects(), "size stream independent of α");
        assert_ne!(
            a.requests()[5].probability,
            b.requests()[5].probability,
            "popularity changed"
        );
        // Request *membership* is also preserved (same object choices),
        // which makes α sweeps compare placements on identical requests.
        assert_eq!(a.requests()[5].objects, b.requests()[5].objects);
    }

    #[test]
    fn object_probabilities_sum_to_expected_mass() {
        let w = small_spec().generate();
        let p = w.object_probabilities();
        let total: f64 = p.iter().sum();
        // Each request of k objects contributes k × P(R); the sum equals the
        // popularity-weighted mean request cardinality.
        let expected: f64 = w
            .requests()
            .iter()
            .map(|r| r.probability * r.objects.len() as f64)
            .sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn target_request_size_calibration() {
        let spec = WorkloadSpec::default().with_target_request_size(Bytes::gb(160));
        let w = spec.generate();
        let avg = w.avg_request_bytes();
        let rel = (avg.get() as f64 - 160e9).abs() / 160e9;
        assert!(rel < 0.1, "avg request {avg} vs 160 GB target");
    }

    #[test]
    fn default_spec_matches_paper_operating_point() {
        let w = WorkloadSpec::default().generate();
        assert_eq!(w.objects().len(), 30_000);
        assert_eq!(w.requests().len(), 300);
        let avg = w.avg_request_bytes().as_gb();
        assert!(
            (190.0..=240.0).contains(&avg),
            "average request {avg:.1} GB should sit near the paper's 213 GB"
        );
    }

    #[test]
    fn serde_round_trip() {
        let w = small_spec().generate();
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_non_dense_ids() {
        let objects = vec![ObjectRecord {
            id: ObjectId(5),
            size: Bytes::mb(1),
        }];
        let _ = Workload::new(objects, vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn rejects_dangling_request() {
        let objects = vec![ObjectRecord {
            id: ObjectId(0),
            size: Bytes::mb(1),
        }];
        let requests = vec![Request {
            rank: 0,
            probability: 1.0,
            objects: vec![ObjectId(3)],
        }];
        let _ = Workload::new(objects, requests);
    }
}
