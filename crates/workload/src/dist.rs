//! Probability distributions used by the workload generator.
//!
//! * [`BoundedPareto`] — a power law truncated to `[min, max]`, used for
//!   object sizes and per-request object counts ("follows a power law
//!   distribution within a pre-defined range", §6).
//! * [`Zipf`] — rank-frequency law `P_r = c · r^(−α)` over a finite rank
//!   set, used for request popularity (α = 0 uniform, α = 1 most skewed).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded (truncated) Pareto distribution on `[min, max]` with tail index
/// `shape` (`a > 0`); the density is proportional to `x^-(a+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    shape: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= max` and `shape > 0` (all finite).
    pub fn new(min: f64, max: f64, shape: f64) -> BoundedPareto {
        assert!(
            min.is_finite() && max.is_finite() && shape.is_finite(),
            "parameters must be finite"
        );
        assert!(min > 0.0, "min must be positive, got {min}");
        assert!(max >= min, "max ({max}) must be >= min ({min})");
        assert!(shape > 0.0, "shape must be positive, got {shape}");
        BoundedPareto { min, max, shape }
    }

    /// Lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Tail index `a`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draws one sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.min == self.max {
            return self.min;
        }
        let a = self.shape;
        let l = self.min;
        let h = self.max;
        let u: f64 = rng.gen_range(0.0..1.0);
        // F(x) = (1 - (l/x)^a) / (1 - (l/h)^a) inverted for x.
        let ratio = (l / h).powf(a);
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / a);
        // Clamp away inverse-transform floating point spill.
        x.clamp(l, h)
    }

    /// Analytic mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        if self.min == self.max {
            return self.min;
        }
        let a = self.shape;
        let l = self.min;
        let h = self.max;
        let norm = 1.0 - (l / h).powf(a);
        if (a - 1.0).abs() < 1e-12 {
            // a = 1: E[X] = (l / norm) * ln(h/l)  (limit of the general form)
            l / norm * (h / l).ln()
        } else {
            (a * l.powf(a)) / norm * (h.powf(1.0 - a) - l.powf(1.0 - a)) / (1.0 - a)
        }
    }

    /// Returns a copy with both bounds scaled by `factor` (the mean scales
    /// by the same factor) — used by request-size sweeps.
    pub fn scaled(&self, factor: f64) -> BoundedPareto {
        assert!(factor.is_finite() && factor > 0.0);
        BoundedPareto::new(self.min * factor, self.max * factor, self.shape)
    }
}

/// Zipf rank-popularity law over ranks `1..=n`: `P_r = c · r^(−α)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    alpha: f64,
    probabilities: Vec<f64>,
}

impl Zipf {
    /// Builds the normalised distribution for `n` ranks with skew `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative"
        );
        let mut probabilities: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
        let c: f64 = probabilities.iter().sum();
        for p in &mut probabilities {
            *p /= c;
        }
        Zipf {
            alpha,
            probabilities,
        }
    }

    /// The skew parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Whether there are no ranks (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Probability of rank `r` (0-based index `r-1`).
    pub fn probability(&self, rank0: usize) -> f64 {
        self.probabilities[rank0]
    }

    /// All probabilities, rank order (most popular first).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn pareto_samples_stay_in_bounds() {
        let d = BoundedPareto::new(100.0, 150.0, 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=150.0).contains(&x));
        }
    }

    #[test]
    fn pareto_empirical_mean_matches_analytic() {
        let d = BoundedPareto::new(0.256, 16.0, 1.2);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.02,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn pareto_mean_at_shape_one_uses_log_limit() {
        let d = BoundedPareto::new(1.0, std::f64::consts::E, 1.0);
        // E[X] = ln(e/1) / (1 - 1/e) = 1 / (1 - 1/e)
        let expected = 1.0 / (1.0 - 1.0 / std::f64::consts::E);
        assert!((d.mean() - expected).abs() < 1e-9);
        // The a→1 limit must agree with nearby shapes.
        let near = BoundedPareto::new(1.0, std::f64::consts::E, 1.0 + 1e-7).mean();
        assert!((d.mean() - near).abs() < 1e-5);
    }

    #[test]
    fn pareto_degenerate_point_mass() {
        let d = BoundedPareto::new(5.0, 5.0, 2.0);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 5.0);
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn pareto_scaling_scales_mean() {
        let d = BoundedPareto::new(1.0, 10.0, 1.5);
        let s = d.scaled(3.0);
        assert!((s.mean() - 3.0 * d.mean()).abs() < 1e-9);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn pareto_rejects_bad_shape() {
        let _ = BoundedPareto::new(1.0, 2.0, 0.0);
    }

    #[test]
    fn zipf_normalises() {
        for &alpha in &[0.0, 0.3, 1.0] {
            let z = Zipf::new(300, alpha);
            let total: f64 = z.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha={alpha}");
        }
    }

    #[test]
    fn zipf_zero_alpha_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(50, 0.7);
        for r in 1..50 {
            assert!(z.probability(r - 1) > z.probability(r));
        }
    }

    #[test]
    fn zipf_alpha_one_ratio() {
        let z = Zipf::new(100, 1.0);
        // P_1 / P_2 = 2 exactly for alpha = 1.
        assert!((z.probability(0) / z.probability(1) - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    proptest! {
        /// Samples stay within bounds, and the analytic mean lies inside
        /// them, for arbitrary valid parameters.
        #[test]
        fn pareto_bounds_hold(
            min in 0.1f64..100.0,
            span in 0.0f64..1000.0,
            shape in 0.05f64..5.0,
            seed in any::<u64>(),
        ) {
            let d = BoundedPareto::new(min, min + span, shape);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= d.min() && x <= d.max(), "{x} outside [{}, {}]", d.min(), d.max());
            }
            let m = d.mean();
            prop_assert!(m >= d.min() - 1e-9 && m <= d.max() + 1e-9);
        }

        /// Zipf is a normalised, non-increasing distribution for any size
        /// and skew.
        #[test]
        fn zipf_is_a_distribution(n in 1usize..500, alpha in 0.0f64..2.0) {
            let z = Zipf::new(n, alpha);
            let total: f64 = z.probabilities().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for pair in z.probabilities().windows(2) {
                prop_assert!(pair[0] >= pair[1] - 1e-15);
            }
        }
    }
}
