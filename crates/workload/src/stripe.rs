//! Object striping transformation (§2 of the paper).
//!
//! The paper surveys object-striping techniques for tape arrays
//! (Golubchik et al.; Drapeau & Katz) and pointedly does **not** adopt
//! them: "striping on sequential-accessed tapes suffers from long
//! synchronization latencies … The striping system may perform worse than
//! non-striping system". To let the evaluation check that claim instead
//! of taking it on faith, this module rewrites a workload so that every
//! sufficiently large object becomes `width` fragment-objects; requests
//! ask for all fragments of each original object. Placing and simulating
//! the transformed workload with any scheme then models a striped system:
//! fragments transfer in parallel when they land on different mounted
//! tapes, and the synchronisation penalty appears naturally as extra
//! cartridges per request (and therefore extra switches) when they do not.

use crate::object::ObjectRecord;
use crate::request::Request;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use tapesim_model::{Bytes, ObjectId};

/// Striping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StripeSpec {
    /// Number of fragments per striped object (`w ≥ 2`).
    pub width: u8,
    /// Objects smaller than this stay whole (striping a tiny object buys
    /// nothing and costs a cartridge).
    pub min_object: Bytes,
}

impl Default for StripeSpec {
    /// Width 4 over objects of at least 1 GB.
    fn default() -> Self {
        StripeSpec {
            width: 4,
            min_object: Bytes::gb(1),
        }
    }
}

/// Maps original objects to their fragment ids in the striped workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripeMap {
    /// `fragments[i]` = fragment ids of original object `i` (a single id
    /// when the object stayed whole).
    fragments: Vec<Vec<ObjectId>>,
}

impl StripeMap {
    /// Fragment ids of an original object.
    pub fn fragments_of(&self, original: ObjectId) -> &[ObjectId] {
        &self.fragments[original.idx()]
    }

    /// Number of original objects.
    pub fn n_originals(&self) -> usize {
        self.fragments.len()
    }
}

/// Rewrites `workload` into its striped equivalent.
///
/// Fragment sizes split the original as evenly as whole bytes allow (the
/// first fragments carry the remainder), so total bytes are preserved
/// exactly. Request probabilities are untouched.
///
/// # Panics
///
/// Panics if `spec.width < 2`.
pub fn stripe_workload(workload: &Workload, spec: StripeSpec) -> (Workload, StripeMap) {
    assert!(spec.width >= 2, "striping needs at least two fragments");
    let mut objects: Vec<ObjectRecord> = Vec::new();
    let mut fragments: Vec<Vec<ObjectId>> = Vec::with_capacity(workload.objects().len());

    for o in workload.objects() {
        if o.size < spec.min_object {
            let id = ObjectId(objects.len() as u32);
            objects.push(ObjectRecord { id, size: o.size });
            fragments.push(vec![id]);
            continue;
        }
        let w = spec.width as u64;
        let base = o.size.get() / w;
        let remainder = o.size.get() % w;
        let mut ids = Vec::with_capacity(spec.width as usize);
        for f in 0..w {
            let size = base + if f < remainder { 1 } else { 0 };
            let id = ObjectId(objects.len() as u32);
            objects.push(ObjectRecord {
                id,
                size: Bytes(size),
            });
            ids.push(id);
        }
        fragments.push(ids);
    }

    let requests: Vec<Request> = workload
        .requests()
        .iter()
        .map(|r| Request {
            rank: r.rank,
            probability: r.probability,
            objects: r
                .objects
                .iter()
                .flat_map(|o| fragments[o.idx()].iter().copied())
                .collect(),
        })
        .collect();

    (Workload::new(objects, requests), StripeMap { fragments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_workload() -> Workload {
        let objects = vec![
            ObjectRecord {
                id: ObjectId(0),
                size: Bytes::gb(8),
            },
            ObjectRecord {
                id: ObjectId(1),
                size: Bytes::mb(100),
            }, // below min
            ObjectRecord {
                id: ObjectId(2),
                size: Bytes(4_000_000_003),
            }, // uneven split
        ];
        let requests = vec![Request {
            rank: 0,
            probability: 1.0,
            objects: vec![ObjectId(0), ObjectId(1), ObjectId(2)],
        }];
        Workload::new(objects, requests)
    }

    #[test]
    fn fragments_preserve_total_bytes() {
        let w = base_workload();
        let (striped, map) = stripe_workload(&w, StripeSpec::default());
        assert_eq!(striped.total_bytes(), w.total_bytes());
        // 4 + 1 + 4 fragments.
        assert_eq!(striped.objects().len(), 9);
        assert_eq!(map.fragments_of(ObjectId(0)).len(), 4);
        assert_eq!(map.fragments_of(ObjectId(1)).len(), 1, "small object whole");
        assert_eq!(map.fragments_of(ObjectId(2)).len(), 4);
    }

    #[test]
    fn uneven_sizes_split_to_the_byte() {
        let w = base_workload();
        let (striped, map) = stripe_workload(&w, StripeSpec::default());
        let sizes: Vec<u64> = map
            .fragments_of(ObjectId(2))
            .iter()
            .map(|&f| striped.size_of(f).get())
            .collect();
        assert_eq!(sizes.iter().sum::<u64>(), 4_000_000_003);
        // Max spread of one byte.
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn requests_ask_for_every_fragment() {
        let w = base_workload();
        let (striped, _) = stripe_workload(&w, StripeSpec::default());
        assert_eq!(striped.requests()[0].objects.len(), 9);
        assert_eq!(striped.requests()[0].probability, 1.0);
    }

    #[test]
    fn width_two_minimum() {
        let w = base_workload();
        let (striped, _) = stripe_workload(
            &w,
            StripeSpec {
                width: 2,
                min_object: Bytes::mb(1),
            },
        );
        // Every object striped (all ≥ 1 MB): 2+2+2.
        assert_eq!(striped.objects().len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least two fragments")]
    fn rejects_width_one() {
        let w = base_workload();
        let _ = stripe_workload(
            &w,
            StripeSpec {
                width: 1,
                min_object: Bytes::mb(1),
            },
        );
    }
}
