//! The canonical streaming demand source.
//!
//! Every queued/scheduled operating mode draws its demand the same way:
//! an arrival instant from the shared [`ArrivalProcess`], then a request
//! rank from the popularity [`RequestSampler`] using the pick RNG
//! (`seed ^ 0x9A3E`). [`RequestStream`] packages that pair-draw order as
//! one seedable iterator so batch runs (`tapesim-sched`) and the
//! long-running service (`tapesim-serve`) provably consume *the same
//! demand stream*: same spec, same `(arrival, rank)` sequence, bit for
//! bit — the precondition for the serve-vs-batch equivalence tests.

use crate::arrivals::{ArrivalProcess, ArrivalSpec};
use crate::sampler::RequestSampler;
use crate::workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Salt of the request-pick RNG, shared (by value) with the legacy
/// `sim::queue` loop — part of the cross-crate reproducibility contract.
pub const PICK_SEED_SALT: u64 = 0x9A3E;

/// An infinite stream of `(arrival_seconds, request_rank)` pairs: the
/// demand one [`ArrivalSpec`] generates against one [`Workload`].
///
/// The draw order per item is fixed — arrival gap first, then rank — so
/// a stream consumed incrementally (a service ingesting one request at a
/// time) yields exactly the sequence a batch run materialises up front.
#[derive(Debug, Clone)]
pub struct RequestStream {
    arrivals: ArrivalProcess,
    sampler: RequestSampler,
    pick_rng: ChaCha12Rng,
}

impl RequestStream {
    /// Creates the stream for `spec` against `workload`'s popularity
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not positive (see
    /// [`ArrivalProcess::new`]).
    pub fn new(spec: ArrivalSpec, workload: &Workload) -> RequestStream {
        RequestStream {
            arrivals: ArrivalProcess::new(spec),
            sampler: workload.request_sampler(),
            pick_rng: ChaCha12Rng::seed_from_u64(spec.seed ^ PICK_SEED_SALT),
        }
    }

    /// Draws the next demand item: absolute arrival time (seconds) and
    /// the sampled request rank. Arrival times are strictly increasing.
    pub fn next_request(&mut self) -> (f64, usize) {
        let at = self.arrivals.next_arrival();
        let rank = self.sampler.sample(&mut self.pick_rng);
        (at, rank)
    }

    /// The arrival spec this stream was built from.
    pub fn spec(&self) -> ArrivalSpec {
        self.arrivals.spec()
    }
}

impl Iterator for RequestStream {
    type Item = (f64, usize);

    fn next(&mut self) -> Option<(f64, usize)> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSizeSpec;
    use crate::request::RequestSpec;
    use crate::workload::WorkloadSpec;

    fn workload() -> Workload {
        WorkloadSpec {
            objects: 500,
            sizes: ObjectSizeSpec::default(),
            requests: RequestSpec {
                count: 20,
                min_objects: 3,
                max_objects: 6,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 5,
        }
        .generate()
    }

    #[test]
    fn matches_separate_draws_bit_for_bit() {
        // The stream must reproduce the legacy two-stream draw order:
        // arrival from the arrival process, rank from the pick RNG.
        let spec = ArrivalSpec {
            per_hour: 12.0,
            seed: 77,
        };
        let w = workload();
        let mut legacy_arrivals = ArrivalProcess::new(spec);
        let sampler = w.request_sampler();
        let mut pick_rng = ChaCha12Rng::seed_from_u64(spec.seed ^ 0x9A3E);

        let mut stream = RequestStream::new(spec, &w);
        for _ in 0..200 {
            let want = (
                legacy_arrivals.next_arrival(),
                sampler.sample(&mut pick_rng),
            );
            let got = stream.next_request();
            assert_eq!(got.0.to_bits(), want.0.to_bits());
            assert_eq!(got.1, want.1);
        }
    }

    #[test]
    fn strictly_increasing_arrivals() {
        let spec = ArrivalSpec {
            per_hour: 240.0,
            seed: 9,
        };
        let w = workload();
        let mut stream = RequestStream::new(spec, &w);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..1_000 {
            let (at, rank) = stream.next_request();
            assert!(at > last, "{at} after {last}");
            assert!(rank < w.requests().len());
            last = at;
        }
    }
}
