//! Poisson arrival processes.
//!
//! The single seeded implementation of the exponential inter-arrival
//! stream shared by every queued/scheduled operating mode: the legacy
//! FCFS queue (`tapesim-sim`'s `queue` module) and the concurrent
//! scheduler (`tapesim-sched`) both draw their arrival clocks from
//! [`ArrivalProcess`], so "the same arrival spec" means *the same arrival
//! instants* across operating modes — a precondition for bit-for-bit
//! regression baselines.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A Poisson arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Mean arrivals per hour.
    pub per_hour: f64,
    /// Seed of the inter-arrival stream.
    pub seed: u64,
}

impl ArrivalSpec {
    /// Draws the next exponential inter-arrival gap, seconds.
    pub fn gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * 3600.0 / self.per_hour
    }

    /// Materialises the arrival-time stream for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not positive.
    pub fn process(self) -> ArrivalProcess {
        ArrivalProcess::new(self)
    }
}

/// The materialised arrival stream: an infinite iterator of strictly
/// increasing absolute arrival times (seconds from t = 0).
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    rng: ChaCha12Rng,
    clock: f64,
}

impl ArrivalProcess {
    /// Creates the stream. The RNG seeding (`seed ^ 0x6A1`) is part of the
    /// contract: results keyed by an [`ArrivalSpec`] stay reproducible
    /// across the crates that share it.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not positive.
    pub fn new(spec: ArrivalSpec) -> ArrivalProcess {
        assert!(spec.per_hour > 0.0, "arrival rate must be positive");
        ArrivalProcess {
            spec,
            rng: ChaCha12Rng::seed_from_u64(spec.seed ^ 0x6A1),
            clock: 0.0,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> ArrivalSpec {
        self.spec
    }

    /// Advances to and returns the next absolute arrival time, seconds.
    pub fn next_arrival(&mut self) -> f64 {
        self.clock += self.spec.gap(&mut self.rng);
        self.clock
    }
}

impl Iterator for ArrivalProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let spec = ArrivalSpec {
            per_hour: 6.0,
            seed: 42,
        };
        let a: Vec<f64> = spec.process().take(20).collect();
        let b: Vec<f64> = spec.process().take(20).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn strictly_increasing() {
        let spec = ArrivalSpec {
            per_hour: 60.0,
            seed: 7,
        };
        let times: Vec<f64> = spec.process().take(200).collect();
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?}");
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        let spec = ArrivalSpec {
            per_hour: 12.0, // one every 300 s
            seed: 3,
        };
        let n = 20_000;
        let mut process = spec.process();
        let mut last = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = process.next_arrival();
            sum += t - last;
            last = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 300.0).abs() < 10.0, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = ArrivalSpec {
            per_hour: 0.0,
            seed: 0,
        }
        .process();
    }
}
