//! # tapesim-workload
//!
//! Synthetic workload generation for the parallel tape storage experiments,
//! reproducing the §6 "Simulation Settings" of the ICPP 2006 paper:
//!
//! * a fixed population of objects whose **sizes follow a bounded power
//!   law** within a configurable range (default calibrated so that the
//!   average request is ≈ 213 GB, the paper's Figure 6 operating point),
//! * a fixed set of pre-defined requests, each asking for a **power-law
//!   number of objects in \[100, 150\]** chosen uniformly at random (objects
//!   may appear in several requests),
//! * **Zipf(α) request popularity**: `P_r = c · r^(−α)` over request ranks,
//!   with α = 0 uniform and α = 1 most skewed,
//! * a deterministic, seedable **request sampling stream** (alias method)
//!   that the simulator draws its 200 serviced requests from.
//!
//! Everything is seeded [`rand_chacha::ChaCha12Rng`]; identical specs produce
//! identical workloads on every platform.

pub mod arrivals;
pub mod dist;
pub mod evolve;
pub mod object;
pub mod replicate;
pub mod request;
pub mod sampler;
pub mod stream;
pub mod stripe;
pub mod workload;

pub use arrivals::{ArrivalProcess, ArrivalSpec};
pub use dist::{BoundedPareto, Zipf};
pub use evolve::EvolutionSpec;
pub use object::{ObjectRecord, ObjectSizeSpec};
pub use replicate::{replicate_workload, ReplicaMap, ReplicationSpec};
pub use request::{Request, RequestSpec};
pub use sampler::RequestSampler;
pub use stream::RequestStream;
pub use stripe::{stripe_workload, StripeMap, StripeSpec};
pub use workload::{Workload, WorkloadSpec};
