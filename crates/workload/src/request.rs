//! Request-set generation.
//!
//! The paper pre-defines 300 requests. Each request contains a power-law
//! number of objects in \[100, 150\], "randomly chosen" from the population
//! (without replacement within the request; the same object may appear in
//! several requests). Request popularity follows Zipf(α) over the request
//! rank (§6).

use crate::dist::{BoundedPareto, Zipf};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tapesim_model::ObjectId;

/// One pre-defined request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Rank index (0 = most popular).
    pub rank: u32,
    /// Access probability (`P_r = c · (rank+1)^{-α}`).
    pub probability: f64,
    /// The requested objects (distinct within the request).
    pub objects: Vec<ObjectId>,
}

/// Parameters of the request set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Number of pre-defined requests (paper: 300).
    pub count: u32,
    /// Smallest per-request object count (paper: 100).
    pub min_objects: u32,
    /// Largest per-request object count (paper: 150).
    pub max_objects: u32,
    /// Tail index of the power law over object counts.
    pub count_shape: f64,
    /// Zipf skew α over request ranks (0 uniform, 1 most skewed).
    pub alpha: f64,
}

impl Default for RequestSpec {
    /// The paper's §6 settings with its running α = 0.3.
    fn default() -> Self {
        RequestSpec {
            count: 300,
            min_objects: 100,
            max_objects: 150,
            count_shape: 1.0,
            alpha: 0.3,
        }
    }
}

impl RequestSpec {
    /// Returns a copy with a different Zipf skew.
    pub fn with_alpha(self, alpha: f64) -> RequestSpec {
        RequestSpec { alpha, ..self }
    }

    /// Generates the request set against a population of `num_objects`
    /// objects.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than `max_objects` (a request
    /// must be able to pick distinct objects).
    pub fn generate<R: Rng + ?Sized>(&self, num_objects: u32, rng: &mut R) -> Vec<Request> {
        assert!(
            num_objects >= self.max_objects,
            "population of {num_objects} cannot fill requests of {} objects",
            self.max_objects
        );
        let count_dist = BoundedPareto::new(
            self.min_objects as f64,
            self.max_objects as f64 + 1.0 - 1e-9, // rounding keeps max reachable
            self.count_shape,
        );
        let zipf = Zipf::new(self.count as usize, self.alpha);
        (0..self.count)
            .map(|rank| {
                let k = (count_dist.sample(rng).floor() as u32)
                    .clamp(self.min_objects, self.max_objects);
                let objects = sample_distinct(num_objects, k, rng);
                Request {
                    rank,
                    probability: zipf.probability(rank as usize),
                    objects,
                }
            })
            .collect()
    }
}

/// Draws `k` distinct object ids uniformly from `0..n`.
///
/// Uses Floyd's algorithm when `k ≪ n` (the common case: 150 of 30 000) and
/// a shuffle otherwise.
fn sample_distinct<R: Rng + ?Sized>(n: u32, k: u32, rng: &mut R) -> Vec<ObjectId> {
    debug_assert!(k <= n);
    if k as u64 * 4 >= n as u64 {
        let mut all: Vec<u32> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(k as usize);
        return all.into_iter().map(ObjectId).collect();
    }
    // Floyd's subset sampling: uniform over k-subsets, O(k) expected.
    let mut chosen = std::collections::HashSet::with_capacity(k as usize);
    let mut out = Vec::with_capacity(k as usize);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.insert(t) { t } else { j };
        if pick != t {
            chosen.insert(pick);
        }
        out.push(ObjectId(pick));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use std::collections::HashSet;

    #[test]
    fn generates_the_papers_shape() {
        let spec = RequestSpec::default();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let reqs = spec.generate(30_000, &mut rng);
        assert_eq!(reqs.len(), 300);
        let total_p: f64 = reqs.iter().map(|r| r.probability).sum();
        assert!((total_p - 1.0).abs() < 1e-9);
        for r in &reqs {
            let len = r.objects.len() as u32;
            assert!((spec.min_objects..=spec.max_objects).contains(&len));
            let distinct: HashSet<_> = r.objects.iter().collect();
            assert_eq!(
                distinct.len(),
                r.objects.len(),
                "objects distinct within a request"
            );
        }
        // Popularity is monotone in rank.
        for pair in reqs.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
    }

    #[test]
    fn count_distribution_prefers_small_requests() {
        let spec = RequestSpec {
            count: 2000,
            ..RequestSpec::default()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let reqs = spec.generate(30_000, &mut rng);
        let small = reqs
            .iter()
            .filter(|r| (r.objects.len() as u32) < 125)
            .count();
        // Power law in [100,150] puts well over half the mass below the
        // midpoint.
        assert!(
            small > reqs.len() / 2,
            "expected small-skew, got {small}/{}",
            reqs.len()
        );
    }

    #[test]
    fn sample_distinct_is_uniformish_and_distinct() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut hits = vec![0u32; 100];
        for _ in 0..2000 {
            let s = sample_distinct(100, 10, &mut rng);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
            for o in s {
                hits[o.idx()] += 1;
            }
        }
        // Each element expected 200 times; allow generous slack.
        for (i, &h) in hits.iter().enumerate() {
            assert!((100..=320).contains(&h), "element {i} hit {h} times");
        }
    }

    #[test]
    fn sample_distinct_dense_path() {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let s = sample_distinct(10, 9, &mut rng);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn rejects_tiny_population() {
        let spec = RequestSpec::default();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let _ = spec.generate(10, &mut rng);
    }

    #[test]
    fn alpha_zero_is_uniform_popularity() {
        let spec = RequestSpec::default().with_alpha(0.0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let reqs = spec.generate(30_000, &mut rng);
        for r in &reqs {
            assert!((r.probability - 1.0 / 300.0).abs() < 1e-12);
        }
    }
}
