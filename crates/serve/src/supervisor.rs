//! The supervision tree over the serve runtime: chaos injection, crash
//! detection, checkpoint/replay restart, and health-based admission
//! control.
//!
//! # Topology
//!
//! [`supervisor_run`] replaces `serve_run`'s fire-and-forget spawn with
//! a *seat* per shard: the supervisor (on the ingestion thread) owns
//! each seat's submission channel, its accepted-submission **log**, and
//! its incarnation counter. A shard death never kills the run — the
//! seat is restarted after a capped-exponential backoff with a
//! [`tapesim_sched::EngineCheckpoint`] rebuilt from the log, and the
//! new incarnation *replays* the logged prefix before taking new work.
//!
//! # Determinism
//!
//! Three facts make a supervised run — even one full of crashes —
//! replayable from `(seed, shards, chaos-seed)`:
//!
//! 1. **Chaos is in-band.** A [`ChaosPlan`] keys every kill/stall on a
//!    shard's cumulative accepted-submission count, and the supervisor
//!    injects the poison message immediately after the triggering
//!    submission on the same FIFO channel — so the victim dies having
//!    processed *exactly* that log prefix, on every run.
//! 2. **State is the log.** A `ShardEngine` is a pure function of its
//!    construction inputs and its submission sequence, so checkpoint =
//!    log and restore = replay; the restarted engine's books are
//!    bit-identical to an engine that never died.
//! 3. **Health reads virtual time.** The `Healthy → Degraded →
//!    Overloaded` ladder is a function of the merged snapshot registry
//!    (queue depth, p99 sojourn, lost-rate), which is itself a function
//!    of the submission subsequences — never of wall-clock timing.
//!
//! The wall clock appears in exactly one place: the **watchdog** bound
//! on waiting for tick acks and final books. It is a liveness bound,
//! not a behavior input — an injected stall deterministically *never*
//! acknowledges, so it is detected on every run, while a healthy shard
//! always acknowledges eventually (backpressure only delays it). A
//! shard that wedges *outside* the injected model is still surfaced as
//! a counted [`FailureReason::Unresponsive`] failure with its log shed,
//! provided its thread eventually observes channel disconnect.
//!
//! With an empty `ChaosPlan` and no health policy, the supervised run
//! is bit-identical to `serve_run` — same merged registry, same
//! snapshot sequence, same joined records. Pinned by tests.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread;
use std::time::Duration;

use tapesim_des::SimTime;
use tapesim_faults::{ChaosKind, ChaosPlan, FaultPlan};
use tapesim_model::ObjectId;
use tapesim_obs::MetricsRegistry;
use tapesim_sched::{EngineCheckpoint, PolicyKind, SchedConfig, ShardEngine, TapeJob};
use tapesim_sim::Simulator;
use tapesim_workload::{RequestStream, Workload};

use crate::health::{Health, HealthPolicy};
use crate::runtime::{
    assemble, refresh_registry, topology, FailureReason, Handles, ServeConfig, ServeReport,
    ShardDone, ShardFailure, SupExtra, Tally,
};

/// Supervisor knobs. [`Default`] is a generous watchdog and no
/// admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperviseConfig {
    /// Wall-clock bound, in milliseconds, on any single wait for a
    /// shard's tick acknowledgement or final books. Purely a liveness
    /// bound — see the module docs; virtual-time outcomes under
    /// injected chaos never depend on it.
    pub watchdog_ms: u64,
    /// Health-based admission control over the snapshot stream
    /// (`None` = admit everything).
    pub health: Option<HealthPolicy>,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            watchdog_ms: 30_000,
            health: None,
        }
    }
}

impl SuperviseConfig {
    /// The default config.
    pub fn new() -> SuperviseConfig {
        SuperviseConfig::default()
    }

    /// Sets the watchdog bound (clamped to ≥ 1 ms at use).
    pub fn with_watchdog_ms(mut self, ms: u64) -> SuperviseConfig {
        self.watchdog_ms = ms;
        self
    }

    /// Enables health-based admission control.
    pub fn with_health(mut self, policy: HealthPolicy) -> SuperviseConfig {
        self.health = Some(policy);
        self
    }
}

/// What the supervisor sends a supervised shard. `Crash` and `Stall`
/// are the chaos poison messages; FIFO delivery pins the victim's
/// processed prefix.
enum SupMsg {
    /// One admitted request part (global id, arrival, workload rank).
    Submit { id: u64, at: SimTime, rank: usize },
    /// Snapshot barrier: acknowledge with your registry state.
    Tick { seq: u64 },
    /// Injected kill: return immediately — no drain, no books.
    Crash,
    /// Injected stall: keep consuming (so sends never block) but do no
    /// work and never acknowledge again.
    Stall,
}

/// A shard's tick acknowledgement.
struct SupUpdate {
    shard: usize,
    generation: u64,
    seq: u64,
    registry: MetricsRegistry,
}

/// A shard's final books, tagged with its incarnation so stale
/// generations can never corrupt the join.
struct SupDone {
    shard: usize,
    generation: u64,
    done: ShardDone,
}

/// Supervisor-side state of one shard seat, across incarnations.
#[derive(Default)]
struct Seat {
    /// Every accepted submission, across all generations, in order:
    /// `(global id, arrival, rank)`. This *is* the checkpoint.
    log: Vec<(u64, SimTime, usize)>,
    /// Incarnation counter (0 = original spawn).
    generation: u64,
    /// Next unfired chaos event index in this seat's schedule.
    next_event: usize,
    /// Restarts performed so far (drives the backoff exponent).
    restarts: u64,
    /// `Some(draw)` while dead: the global ingestion draw at which the
    /// seat may be restarted.
    resume_at: Option<u64>,
}

impl Seat {
    /// The restart payload: the logged ids plus the checkpoint that
    /// replays them. `None` when nothing was ever accepted.
    fn checkpoint(&self) -> Option<(Vec<u64>, EngineCheckpoint)> {
        if self.log.is_empty() {
            return None;
        }
        let ids = self.log.iter().map(|&(id, _, _)| id).collect();
        let arrivals = self.log.iter().map(|&(_, at, rank)| (at, rank)).collect();
        Some((ids, EngineCheckpoint::from_arrivals(arrivals)))
    }
}

/// Marks seat `s` dead: hangs up its channel, reaps the thread,
/// records the failure (upgraded to `Panicked` if the join says so)
/// and schedules the restart after the chaos plan's backoff.
#[allow(clippy::too_many_arguments)]
fn declare_dead<'scope>(
    txs: &mut BTreeMap<usize, SyncSender<SupMsg>>,
    joins: &mut BTreeMap<usize, thread::ScopedJoinHandle<'scope, ()>>,
    seats: &mut [Seat],
    extra: &mut SupExtra,
    chaos: &ChaosPlan,
    s: usize,
    reason: FailureReason,
    at_draw: u64,
) {
    txs.remove(&s);
    let panicked = joins.remove(&s).is_some_and(|h| h.join().is_err());
    let Some(seat) = seats.get_mut(s) else {
        return;
    };
    let reason = if panicked {
        FailureReason::Panicked
    } else {
        reason
    };
    extra.failures.push(ShardFailure {
        shard: s,
        generation: seat.generation,
        reason,
        at_draw,
    });
    let backoff = chaos.restart_backoff_draws(seat.restarts);
    seat.restarts += 1;
    extra.restarts += 1;
    seat.resume_at = Some(at_draw.saturating_add(1).saturating_add(backoff));
}

/// Pulls final books off `rx` until every joined shard has reported or
/// the watchdog expires with no progress possible.
fn collect_books(
    rx: &Receiver<SupDone>,
    seats: &[Seat],
    joins: &BTreeMap<usize, thread::ScopedJoinHandle<'_, ()>>,
    books: &mut BTreeMap<usize, ShardDone>,
    watchdog: Duration,
) {
    while joins.keys().any(|s| !books.contains_key(s)) {
        match rx.recv_timeout(watchdog) {
            Ok(d) => {
                let current = seats
                    .get(d.shard)
                    .is_some_and(|seat| seat.generation == d.generation);
                if current {
                    books.insert(d.shard, d.done);
                }
            }
            Err(_) => break,
        }
    }
}

/// One supervised shard incarnation: optionally replay a checkpoint,
/// then serve until hang-up (clean drain + books) or poison.
#[allow(clippy::too_many_arguments)]
fn supervised_shard(
    shard: usize,
    generation: u64,
    sim: &Simulator,
    kind: PolicyKind,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
    catalog: &[Vec<TapeJob>],
    restore: Option<(Vec<u64>, EngineCheckpoint)>,
    rx: Receiver<SupMsg>,
    updates: Sender<SupUpdate>,
    books: Sender<SupDone>,
) {
    let policy = kind.build();
    let mut reg = MetricsRegistry::new();
    let handles = Handles::register(&mut reg);
    let mut tally = Tally::default();
    let (mut engine, mut ids) = match restore {
        Some((ids, ckpt)) => {
            let engine =
                ShardEngine::restore(sim, policy.as_ref(), cfg, plan, alternates, catalog, &ckpt);
            // The replayed prefix counts as this incarnation's
            // submissions: the registry must agree with the log.
            reg.add(handles.submitted, ids.len() as u64);
            (engine, ids)
        }
        None => (
            ShardEngine::new(sim, policy.as_ref(), cfg, plan, alternates, catalog),
            Vec::new(),
        ),
    };
    let mut stalled = false;
    for msg in rx.iter() {
        match msg {
            SupMsg::Submit { id, at, rank } => {
                if stalled {
                    continue;
                }
                if engine.submit(at, rank) {
                    ids.push(id);
                    reg.inc(handles.submitted);
                }
                engine.pump(at);
            }
            SupMsg::Tick { seq } => {
                if stalled {
                    continue;
                }
                refresh_registry(
                    &mut reg,
                    &handles,
                    &mut tally,
                    engine.served_so_far(),
                    engine.lost_so_far(),
                    engine.mounts_so_far(),
                    engine.events_processed(),
                    engine.outstanding_jobs(),
                    engine.records(),
                );
                if updates
                    .send(SupUpdate {
                        shard,
                        generation,
                        seq,
                        registry: reg.clone(),
                    })
                    .is_err()
                {
                    continue;
                }
            }
            SupMsg::Crash => return,
            SupMsg::Stall => stalled = true,
        }
    }
    if stalled {
        // A stalled incarnation exits silently on disconnect: its books
        // live on in the supervisor's log and come back via replay.
        return;
    }
    engine.close();
    let report = engine.finish();
    refresh_registry(
        &mut reg,
        &handles,
        &mut tally,
        report.records.len() as u64,
        report.lost.len() as u64,
        report.outcome.metrics.mounts(),
        report.outcome.metrics.events(),
        0,
        &report.records,
    );
    let payload = SupDone {
        shard,
        generation,
        done: ShardDone {
            ids,
            report,
            registry: reg,
        },
    };
    // A send failure means the supervisor's drain watchdog already gave
    // up on this seat and shed its log; nobody is listening.
    let _delivered = books.send(payload);
}

/// Runs the service under supervision: like
/// [`crate::runtime::serve_run`], but with `chaos` injected in-band,
/// dead shards restarted from their submission logs, and (optionally)
/// health-laddered admission control. See the module docs for the
/// determinism argument; conservation is
/// `submitted = served + lost + shed + rejected`, every leg explicit.
#[allow(clippy::too_many_arguments)]
pub fn supervisor_run(
    sim: &Simulator,
    workload: &Workload,
    kind: PolicyKind,
    cfg: &ServeConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
    chaos: &ChaosPlan,
    sup: &SuperviseConfig,
) -> ServeReport {
    let topo = topology(sim, workload, cfg, plan);
    let nshards = topo.nshards;
    let sched_cfg = &topo.sched_cfg;
    let watchdog = Duration::from_millis(sup.watchdog_ms.max(1));
    let bound = cfg.channel_bound.max(1);

    let (upd_tx, upd_rx) = channel::<SupUpdate>();
    let (done_tx, done_rx) = channel::<SupDone>();

    let mut submitted = 0u64;
    let (dones, snapshots, extra) = thread::scope(|scope| {
        let mut extra = SupExtra::default();
        let mut seats: Vec<Seat> = (0..nshards).map(|_| Seat::default()).collect();
        let mut txs: BTreeMap<usize, SyncSender<SupMsg>> = BTreeMap::new();
        let mut joins = BTreeMap::new();

        let spawn_seat = |s: usize,
                          generation: u64,
                          restore: Option<(Vec<u64>, EngineCheckpoint)>,
                          rx: Receiver<SupMsg>| {
            let updates = upd_tx.clone();
            let books = done_tx.clone();
            let catalog: &[Vec<TapeJob>] = topo.shard_catalogs.get(s).map_or(&[], Vec::as_slice);
            let shard_plan = match topo.shard_plans.get(s) {
                Some(p) => p,
                None => plan,
            };
            scope.spawn(move || {
                supervised_shard(
                    s, generation, sim, kind, sched_cfg, shard_plan, alternates, catalog, restore,
                    rx, updates, books,
                )
            })
        };

        for s in 0..nshards {
            let (tx, rx) = sync_channel::<SupMsg>(bound);
            joins.insert(s, spawn_seat(s, 0, None, rx));
            txs.insert(s, tx);
        }

        let mut stream = RequestStream::new(cfg.arrivals, workload);
        let mut seq = 0u64;
        let mut health = Health::Healthy;
        let mut last_regs: BTreeMap<usize, MetricsRegistry> = BTreeMap::new();
        let mut snapshots = Vec::new();

        for id in 0..cfg.samples as u64 {
            // 1. Resurrect seats whose backoff window has closed:
            //    fresh incarnation, engine replayed from the log.
            for s in 0..nshards {
                let due = seats
                    .get(s)
                    .is_some_and(|seat| seat.resume_at.is_some_and(|d| d <= id));
                if !due {
                    continue;
                }
                let Some(seat) = seats.get_mut(s) else {
                    continue;
                };
                seat.resume_at = None;
                seat.generation += 1;
                let restore = seat.checkpoint();
                let generation = seat.generation;
                let (tx, rx) = sync_channel::<SupMsg>(bound);
                joins.insert(s, spawn_seat(s, generation, restore, rx));
                txs.insert(s, tx);
            }

            // 2. Draw the canonical stream; admit or shed.
            let (at_secs, rank) = stream.next_request();
            let at = SimTime::from_secs(at_secs);
            submitted += 1;
            if health == Health::Overloaded {
                // Admission control: counted, never silently dropped.
                extra.shed_admission.insert(id);
            } else {
                let targets = topo
                    .fanouts
                    .get(rank)
                    .map_or(&[] as &[usize], Vec::as_slice);
                for &s in targets {
                    let sent = match txs.get(&s) {
                        Some(tx) => tx.send(SupMsg::Submit { id, at, rank }).is_ok(),
                        None => false,
                    };
                    if !sent {
                        // Dead seat (restart window) or a panic the
                        // chaos plan never scheduled: shed the part,
                        // and if the seat thought it was alive, declare
                        // it dead now.
                        extra.shed_parts.insert(id);
                        if txs.contains_key(&s) {
                            declare_dead(
                                &mut txs,
                                &mut joins,
                                &mut seats,
                                &mut extra,
                                chaos,
                                s,
                                FailureReason::Panicked,
                                id,
                            );
                        }
                        continue;
                    }
                    // 3. Log the acceptance, then fire any chaos event
                    //    scheduled at this cumulative count. FIFO makes
                    //    the poison land right behind the submission.
                    let (count, mut next_event) = match seats.get_mut(s) {
                        Some(seat) => {
                            seat.log.push((id, at, rank));
                            (seat.log.len() as u64, seat.next_event)
                        }
                        None => continue,
                    };
                    let mut fired_kill = false;
                    let mut fired_stall = false;
                    while let Some(event) = chaos.shard_events(s).get(next_event).copied() {
                        if event.after != count {
                            break;
                        }
                        next_event += 1;
                        match event.kind {
                            ChaosKind::Kill => fired_kill = true,
                            ChaosKind::Stall => fired_stall = true,
                        }
                    }
                    if let Some(seat) = seats.get_mut(s) {
                        seat.next_event = next_event;
                    }
                    if fired_stall {
                        if let Some(tx) = txs.get(&s) {
                            let _ignored = tx.send(SupMsg::Stall);
                        }
                        // Detection is deferred: the next barrier (or
                        // the drain watchdog) sees the missing ack.
                    }
                    if fired_kill {
                        if let Some(tx) = txs.get(&s) {
                            let _ignored = tx.send(SupMsg::Crash);
                        }
                        declare_dead(
                            &mut txs,
                            &mut joins,
                            &mut seats,
                            &mut extra,
                            chaos,
                            s,
                            FailureReason::Killed,
                            id,
                        );
                    }
                }
            }

            // 4. Snapshot barrier: tick the live seats, wait for acks
            //    under the watchdog, declare non-ackers stalled, merge,
            //    and step the health ladder.
            if cfg.snapshot_every > 0 && (id + 1) % cfg.snapshot_every as u64 == 0 {
                seq += 1;
                let live: Vec<usize> = txs.keys().copied().collect();
                for s in &live {
                    if let Some(tx) = txs.get(s) {
                        let _ignored = tx.send(SupMsg::Tick { seq });
                    }
                }
                let mut acked: BTreeSet<usize> = BTreeSet::new();
                while acked.len() < live.len() {
                    match upd_rx.recv_timeout(watchdog) {
                        Ok(up) => {
                            let current = seats
                                .get(up.shard)
                                .is_some_and(|seat| seat.generation == up.generation);
                            if current && up.seq == seq && live.contains(&up.shard) {
                                last_regs.insert(up.shard, up.registry);
                                acked.insert(up.shard);
                            }
                        }
                        Err(_) => break,
                    }
                }
                for &s in &live {
                    if !acked.contains(&s) {
                        declare_dead(
                            &mut txs,
                            &mut joins,
                            &mut seats,
                            &mut extra,
                            chaos,
                            s,
                            FailureReason::Stalled,
                            id,
                        );
                    }
                }
                // Merge in ascending shard order — the collector's
                // arithmetic exactly, so an all-alive barrier is
                // bit-identical to serve_run's snapshot. Dead seats
                // contribute their last acknowledged state.
                let mut merged = MetricsRegistry::new();
                for seat_reg in last_regs.values() {
                    merged.merge(seat_reg);
                }
                if let Some(policy) = &sup.health {
                    health = policy.step(health, &merged);
                    let g = merged.gauge("serve.health");
                    merged.set(g, health.gauge_value());
                    let r = merged.gauge("serve.restarts");
                    merged.set(r, extra.restarts as f64);
                    extra.health_trace.push((seq, health));
                }
                snapshots.push(merged.snapshot(seq));
            }
        }

        // 5. Drain. Dead seats get one final recovery incarnation so
        //    their logged work is replayed and served, not shed.
        for s in 0..nshards {
            let due = seats.get(s).is_some_and(|seat| seat.resume_at.is_some());
            if !due {
                continue;
            }
            let Some(seat) = seats.get_mut(s) else {
                continue;
            };
            seat.resume_at = None;
            seat.generation += 1;
            let restore = seat.checkpoint();
            let generation = seat.generation;
            let (tx, rx) = sync_channel::<SupMsg>(bound);
            joins.insert(s, spawn_seat(s, generation, restore, rx));
            txs.insert(s, tx);
        }
        // Hang up: every live seat drains, finishes and reports.
        txs.clear();

        let mut books: BTreeMap<usize, ShardDone> = BTreeMap::new();
        collect_books(&done_rx, &seats, &joins, &mut books, watchdog);

        // 6. One recovery round for seats that never reported (injected
        //    stalls the run never barriered over, or a late panic):
        //    count the failure, respawn from the log with the channel
        //    already closed — replay, finish, report.
        let missing: Vec<usize> = joins
            .keys()
            .filter(|s| !books.contains_key(s))
            .copied()
            .collect();
        if !missing.is_empty() {
            for &s in &missing {
                let panicked = joins.remove(&s).is_some_and(|h| h.join().is_err());
                let Some(seat) = seats.get_mut(s) else {
                    continue;
                };
                let reason = if panicked {
                    FailureReason::Panicked
                } else {
                    FailureReason::Unresponsive
                };
                extra.failures.push(ShardFailure {
                    shard: s,
                    generation: seat.generation,
                    reason,
                    at_draw: cfg.samples as u64,
                });
                seat.generation += 1;
                seat.restarts += 1;
                extra.restarts += 1;
                let restore = seat.checkpoint();
                let generation = seat.generation;
                let (tx, rx) = sync_channel::<SupMsg>(bound);
                joins.insert(s, spawn_seat(s, generation, restore, rx));
                drop(tx);
            }
            collect_books(&done_rx, &seats, &joins, &mut books, watchdog);
        }

        // 7. Whatever still refuses to report: shed its entire log so
        //    conservation holds with every request accounted for.
        for (s, seat) in seats.iter().enumerate() {
            if !books.contains_key(&s) {
                for &(id, _, _) in &seat.log {
                    extra.shed_parts.insert(id);
                }
            }
        }

        // 8. Reap every remaining thread. Book-holders exit promptly;
        //    a panic after the books were collected is already
        //    accounted for, so swallow it rather than poison the scope.
        for (_, handle) in std::mem::take(&mut joins) {
            let _ignored = handle.join();
        }

        let dones: Vec<(usize, ShardDone)> = books.into_iter().collect();
        (dones, snapshots, extra)
    });

    assemble(sim, plan, cfg, nshards, submitted, dones, snapshots, extra)
}
