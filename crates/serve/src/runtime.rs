//! The actor runtime: ingestion, library shards, collector, shutdown.
//!
//! See the crate docs for the topology. Everything here is
//! deterministic in *virtual* time: thread interleavings only decide
//! when work happens on the wall clock, never what the shards compute —
//! each shard's event loop is a pure function of the submission
//! subsequence it receives, and that subsequence is fixed by
//! `(workload, seed, shard_count)`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread;

use tapesim_des::audit::AuditReport;
use tapesim_des::SimTime;
use tapesim_faults::FaultPlan;
use tapesim_model::ObjectId;
use tapesim_obs::{MetricsRegistry, RegistrySnapshot};
use tapesim_sched::{
    tape_jobs, PolicyKind, RequestRecord, SchedConfig, SchedMetrics, ShardEngine, ShardReport,
    TapeJob,
};
use tapesim_sim::{SeekPolicy, Simulator};
use tapesim_workload::{ArrivalSpec, RequestStream, Workload};

use crate::health::Health;

/// Sojourn histogram bucket upper edges, seconds: 1 min to 32 h in
/// doublings. Fixed so every shard (and every run) shares one layout —
/// the precondition for registry merging.
pub(crate) const SOJOURN_BOUNDS: [f64; 12] = [
    60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0, 57600.0, 115200.0, 230400.0,
    460800.0,
];

/// Configuration of one service run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The Poisson arrival stream (rate + seed).
    pub arrivals: ArrivalSpec,
    /// Number of requests to ingest before shutdown.
    pub samples: usize,
    /// Requested library shards. Clamped to `[1, libraries]` — a shard
    /// with no library would idle forever.
    pub shards: usize,
    /// Largest number of jobs one mount may serve (0 = unlimited).
    pub max_batch: usize,
    /// Whether shards record and audit their event traces.
    pub audit: bool,
    /// Whether shards run the span accountant (`tapesim-obs` budgets).
    pub obs: bool,
    /// The in-tape service-order planner every shard uses
    /// ([`SeekPolicy::Greedy`] by default — bit-identical to pre-policy
    /// runs).
    pub seek: SeekPolicy,
    /// Capacity of each shard's submission channel. Full channel blocks
    /// ingestion — backpressure, never loss.
    pub channel_bound: usize,
    /// Broadcast a snapshot tick every this many ingested requests
    /// (0 = no periodic snapshots, final state only).
    pub snapshot_every: usize,
}

impl ServeConfig {
    /// A single-shard run of `samples` requests with default bounds and
    /// no periodic snapshots.
    pub fn new(arrivals: ArrivalSpec, samples: usize) -> ServeConfig {
        ServeConfig {
            arrivals,
            samples,
            shards: 1,
            max_batch: 0,
            audit: false,
            obs: false,
            seek: SeekPolicy::Greedy,
            channel_bound: 256,
            snapshot_every: 0,
        }
    }

    /// Sets the shard count (clamped to the library count at run time).
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    /// Caps batch size (0 = unlimited).
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch;
        self
    }

    /// Enables trace auditing in every shard.
    pub fn with_audit(mut self, audit: bool) -> ServeConfig {
        self.audit = audit;
        self
    }

    /// Selects the in-tape service-order planner for every shard.
    pub fn with_seek(mut self, seek: SeekPolicy) -> ServeConfig {
        self.seek = seek;
        self
    }

    /// Sets the per-shard submission channel capacity (min 1).
    pub fn with_channel_bound(mut self, bound: usize) -> ServeConfig {
        self.channel_bound = bound;
        self
    }

    /// Sets the periodic snapshot cadence in ingested requests.
    pub fn with_snapshot_every(mut self, every: usize) -> ServeConfig {
        self.snapshot_every = every;
        self
    }

    /// The per-shard engine config this service config induces.
    fn sched_config(&self) -> SchedConfig {
        let mut cfg = SchedConfig::new(self.arrivals, self.samples);
        cfg.max_batch = self.max_batch;
        cfg.audit = self.audit;
        cfg.obs = self.obs;
        cfg.seek = self.seek;
        cfg
    }
}

/// Per-shard tail numbers for the final report.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index (owns libraries `lib % shards == shard`).
    pub shard: usize,
    /// Submissions this shard accepted (counts fan-out parts).
    pub submitted: u64,
    /// Requests this shard served to completion.
    pub served: u64,
    /// Requests this shard terminally lost.
    pub lost: u64,
    /// Submissions rejected after close (0 in a clean shutdown).
    pub rejected: u64,
    /// Tape exchanges this shard performed.
    pub mounts: u64,
    /// DES events this shard dispatched.
    pub events: u64,
    /// The shard's final virtual clock.
    pub end: SimTime,
}

/// How a supervised shard died (or was declared dead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// An injected `ChaosKind::Kill` — the actor returned without a
    /// drain or report.
    Killed,
    /// The shard stopped acknowledging liveness ticks (injected stall,
    /// or a genuine wedge surfaced by the watchdog).
    Stalled,
    /// The shard thread panicked (its channel disconnected mid-run).
    Panicked,
    /// The shard never returned its books inside the drain watchdog,
    /// even after a recovery restart.
    Unresponsive,
}

/// One shard failure the supervisor detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailure {
    /// Which shard failed.
    pub shard: usize,
    /// The shard's incarnation (0 = original spawn) when it failed.
    pub generation: u64,
    /// Why the supervisor declared it dead.
    pub reason: FailureReason,
    /// The global ingestion draw at which the failure was detected
    /// (`cfg.samples` when detected during drain).
    pub at_draw: u64,
}

/// The final report of one service run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Merged per-request metrics: accumulators rebuilt from the joined
    /// records in deterministic order, run counters folded across
    /// shards ([`SchedMetrics::merge_counters`]). For a single shard
    /// this is bit-identical to the equivalent batch run's metrics.
    /// Note `metrics.lost()` counts shard-local losses (fan-out parts);
    /// [`ServeReport::lost`] counts distinct lost requests.
    pub metrics: SchedMetrics,
    /// Joined per-request records keyed by global submission id.
    /// Single shard: the engine's completion order, untouched. Multiple
    /// shards: sorted by `(finish, id)` — a deterministic total order,
    /// since the per-shard streams are only ordered within themselves.
    pub records: Vec<RequestRecord>,
    /// Final merged registry, canonical (name-sorted) form.
    pub registry: MetricsRegistry,
    /// Periodic snapshots, one per completed tick round, in tick order.
    /// Deterministic: snapshot `k` merges every shard's registry state
    /// after exactly the submissions that preceded tick `k`.
    pub snapshots: Vec<RegistrySnapshot>,
    /// Every shard's audit reports, concatenated in shard order.
    pub reports: Vec<AuditReport>,
    /// Per-shard tail numbers, in shard order.
    pub per_shard: Vec<ShardStats>,
    /// Distinct requests ingested.
    pub submitted: u64,
    /// Distinct requests served to completion (all fan-out parts done).
    pub served: u64,
    /// Distinct requests lost (at least one part terminally lost).
    pub lost: u64,
    /// Submissions rejected after close, summed over shards (0 in a
    /// clean shutdown).
    pub rejected: u64,
    /// Distinct requests shed under supervision: admission-control
    /// sheds while `Overloaded`, plus requests with a part dropped into
    /// a dead shard's restart window. Always 0 without a supervisor.
    pub shed: u64,
    /// Shard restarts the supervisor performed (0 without one).
    pub restarts: u64,
    /// Every shard failure the supervisor detected, in detection order.
    pub failures: Vec<ShardFailure>,
    /// Health state at each snapshot barrier, `(seq, health)` — empty
    /// unless a health policy was active.
    pub health_trace: Vec<(u64, Health)>,
    /// Effective shard count.
    pub shards: usize,
    /// Latest virtual instant any shard reached.
    pub end: SimTime,
}

impl ServeReport {
    /// Whether the run conserved requests — every ingested request is
    /// served, lost, shed or rejected, never silently vanished — and
    /// every audit came back clean.
    pub fn is_clean(&self) -> bool {
        self.submitted == self.served + self.lost + self.shed + self.rejected
            && self.reports.iter().all(AuditReport::is_clean)
    }
}

/// What ingestion sends a shard.
enum ShardMsg {
    /// One admitted request part: global id, arrival instant, workload
    /// rank (index into the shard's filtered catalog).
    Submit { id: u64, at: SimTime, rank: usize },
    /// Snapshot barrier `seq`: report your registry to the collector.
    Tick { seq: u64 },
}

/// A shard's answer to a tick.
struct Update {
    shard: usize,
    seq: u64,
    registry: MetricsRegistry,
}

/// Everything a shard thread hands back at join time.
pub(crate) struct ShardDone {
    /// Global id of each local submission, in submission order: the
    /// key that maps [`RequestRecord::request`] back to the service-
    /// wide request.
    pub(crate) ids: Vec<u64>,
    pub(crate) report: ShardReport,
    pub(crate) registry: MetricsRegistry,
}

/// What supervision adds on top of the fault-free books: the shed
/// ledgers and the failure/restart/health history. `Default` is the
/// unsupervised (serve_run) case and leaves the assembled report
/// bit-identical to PR 7's.
#[derive(Default)]
pub(crate) struct SupExtra {
    /// Global ids shed at admission (health `Overloaded`): never sent
    /// to any shard.
    pub(crate) shed_admission: BTreeSet<u64>,
    /// Global ids with at least one fan-out part dropped into a dead
    /// shard's restart window (or an unrecoverable shard's log).
    pub(crate) shed_parts: BTreeSet<u64>,
    /// Shard restarts performed.
    pub(crate) restarts: u64,
    /// Failures detected, in detection order.
    pub(crate) failures: Vec<ShardFailure>,
    /// Health state per snapshot barrier.
    pub(crate) health_trace: Vec<(u64, Health)>,
}

/// Registry handles one shard updates through.
pub(crate) struct Handles {
    pub(crate) submitted: tapesim_obs::CounterId,
    served: tapesim_obs::CounterId,
    lost: tapesim_obs::CounterId,
    mounts: tapesim_obs::CounterId,
    events: tapesim_obs::CounterId,
    depth: tapesim_obs::GaugeId,
    sojourn: tapesim_obs::HistogramId,
}

impl Handles {
    pub(crate) fn register(reg: &mut MetricsRegistry) -> Handles {
        Handles {
            submitted: reg.counter("serve.submitted"),
            served: reg.counter("serve.served"),
            lost: reg.counter("serve.lost"),
            mounts: reg.counter("serve.mounts"),
            events: reg.counter("serve.events"),
            depth: reg.gauge("serve.queue_depth"),
            sojourn: reg.histogram("serve.sojourn", &SOJOURN_BOUNDS),
        }
    }
}

/// Last-published values, so counter updates are deltas.
#[derive(Default)]
pub(crate) struct Tally {
    served: u64,
    lost: u64,
    mounts: u64,
    events: u64,
    records: usize,
}

/// Publishes the engine's current totals into the registry: counters
/// advance by their delta since the last refresh, the queue-depth gauge
/// is overwritten, and every record not yet observed lands in the
/// sojourn histogram.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refresh_registry(
    reg: &mut MetricsRegistry,
    h: &Handles,
    tally: &mut Tally,
    served: u64,
    lost: u64,
    mounts: u64,
    events: u64,
    depth: usize,
    records: &[RequestRecord],
) {
    reg.add(h.served, served.saturating_sub(tally.served));
    reg.add(h.lost, lost.saturating_sub(tally.lost));
    reg.add(h.mounts, mounts.saturating_sub(tally.mounts));
    reg.add(h.events, events.saturating_sub(tally.events));
    reg.set(h.depth, depth as f64);
    for r in records.iter().skip(tally.records) {
        reg.observe(h.sojourn, r.sojourn_secs());
    }
    tally.served = served;
    tally.lost = lost;
    tally.mounts = mounts;
    tally.events = events;
    tally.records = records.len();
}

/// One library-shard actor: pull messages until ingestion hangs up,
/// then drain and report.
#[allow(clippy::too_many_arguments)]
fn shard_actor(
    shard: usize,
    sim: &Simulator,
    kind: PolicyKind,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
    catalog: &[Vec<TapeJob>],
    rx: Receiver<ShardMsg>,
    tx: Sender<Update>,
) -> ShardDone {
    let policy = kind.build();
    let mut engine = ShardEngine::new(sim, policy.as_ref(), cfg, plan, alternates, catalog);
    let mut ids: Vec<u64> = Vec::new();
    let mut reg = MetricsRegistry::new();
    let handles = Handles::register(&mut reg);
    let mut tally = Tally::default();

    for msg in rx.iter() {
        match msg {
            ShardMsg::Submit { id, at, rank } => {
                if engine.submit(at, rank) {
                    ids.push(id);
                    reg.inc(handles.submitted);
                }
                // Advance the shard's virtual clock through this
                // arrival; the next submission is strictly later, so
                // this never reorders events.
                engine.pump(at);
            }
            ShardMsg::Tick { seq } => {
                refresh_registry(
                    &mut reg,
                    &handles,
                    &mut tally,
                    engine.served_so_far(),
                    engine.lost_so_far(),
                    engine.mounts_so_far(),
                    engine.events_processed(),
                    engine.outstanding_jobs(),
                    engine.records(),
                );
                // A vanished collector only costs us snapshots, never
                // correctness; keep serving.
                if tx
                    .send(Update {
                        shard,
                        seq,
                        registry: reg.clone(),
                    })
                    .is_err()
                {
                    continue;
                }
            }
        }
    }

    // Ingestion hung up: stop admissions, finish in-flight work.
    engine.close();
    let report = engine.finish();
    refresh_registry(
        &mut reg,
        &handles,
        &mut tally,
        report.records.len() as u64,
        report.lost.len() as u64,
        report.outcome.metrics.mounts(),
        report.outcome.metrics.events(),
        0,
        &report.records,
    );
    ShardDone {
        ids,
        report,
        registry: reg,
    }
}

/// The collector: assemble one merged snapshot per completed tick
/// round. Shard channels are FIFO and every shard answers every tick in
/// order, so rounds complete in `seq` order and each round's merge
/// (ascending shard index, via `BTreeMap`) is deterministic.
fn collector_loop(rx: Receiver<Update>, nshards: usize) -> Vec<RegistrySnapshot> {
    let mut pending: BTreeMap<u64, BTreeMap<usize, MetricsRegistry>> = BTreeMap::new();
    let mut snapshots = Vec::new();
    for up in rx.iter() {
        let slot = pending.entry(up.seq).or_default();
        slot.insert(up.shard, up.registry);
        if slot.len() == nshards {
            if let Some(round) = pending.remove(&up.seq) {
                let mut merged = MetricsRegistry::new();
                for reg in round.values() {
                    merged.merge(reg);
                }
                snapshots.push(merged.snapshot(up.seq));
            }
        }
    }
    snapshots
}

/// One joined request across its fan-out parts.
struct Join {
    arrival: SimTime,
    first_start: SimTime,
    finish: SimTime,
    parts: u32,
    lost: bool,
}

/// The sharded topology `(cfg, plan)` induce over the simulator:
/// effective shard count, per-shard catalog slices, per-shard
/// restricted fault plans, and the fan-out of every workload rank.
/// Shared by [`serve_run`] and the supervisor so the two runtimes
/// cannot drift.
pub(crate) struct Topology {
    pub(crate) nshards: usize,
    pub(crate) sched_cfg: SchedConfig,
    pub(crate) shard_catalogs: Vec<Vec<Vec<TapeJob>>>,
    pub(crate) fanouts: Vec<Vec<usize>>,
    pub(crate) shard_plans: Vec<FaultPlan>,
}

pub(crate) fn topology(
    sim: &Simulator,
    workload: &Workload,
    cfg: &ServeConfig,
    plan: &FaultPlan,
) -> Topology {
    let placement = sim.placement();
    let system = placement.config();
    let n_libs = (system.libraries as usize).max(1);
    let nshards = cfg.shards.max(1).min(n_libs);
    let sched_cfg = cfg.sched_config();

    // The global job catalog, then each shard's filtered view: shard s
    // owns the libraries congruent to s, and sees only jobs on them.
    let catalog: Vec<Vec<TapeJob>> = workload
        .requests()
        .iter()
        .map(|r| tape_jobs(placement, &r.objects))
        .collect();
    let shard_catalogs: Vec<Vec<Vec<TapeJob>>> = (0..nshards)
        .map(|s| {
            catalog
                .iter()
                .map(|jobs| {
                    jobs.iter()
                        .filter(|j| j.tape.library.idx() % nshards == s)
                        .cloned()
                        .collect()
                })
                .collect()
        })
        .collect();
    // Fan-out per workload rank: every shard holding work for it, or a
    // deterministic fallback shard (which serves the empty request
    // instantaneously) so each request reaches at least one actor.
    let fanouts: Vec<Vec<usize>> = catalog
        .iter()
        .enumerate()
        .map(|(rank, _)| {
            let targets: Vec<usize> = shard_catalogs
                .iter()
                .enumerate()
                .filter(|(_, c)| c.get(rank).is_some_and(|jobs| !jobs.is_empty()))
                .map(|(s, _)| s)
                .collect();
            if targets.is_empty() {
                vec![rank % nshards]
            } else {
                targets
            }
        })
        .collect();
    let shard_plans: Vec<FaultPlan> = (0..nshards)
        .map(|s| {
            let owned: Vec<bool> = (0..n_libs).map(|lib| lib % nshards == s).collect();
            plan.restrict_to_libraries(system, &owned)
        })
        .collect();

    Topology {
        nshards,
        sched_cfg,
        shard_catalogs,
        fanouts,
        shard_plans,
    }
}

/// Runs the service end to end: ingest `cfg.samples` requests from the
/// canonical demand stream, serve them across per-library shards, and
/// join everything into one deterministic [`ServeReport`].
///
/// `plan` is the *global* fault plan; each shard sees only the faults
/// on the libraries it owns ([`FaultPlan::restrict_to_libraries`]).
/// `alternates` maps objects to replica copies for failover, exactly as
/// in [`tapesim_sched::run_scheduled_faulty`].
pub fn serve_run(
    sim: &Simulator,
    workload: &Workload,
    kind: PolicyKind,
    cfg: &ServeConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
) -> ServeReport {
    let topo = topology(sim, workload, cfg, plan);
    let nshards = topo.nshards;
    let sched_cfg = &topo.sched_cfg;
    let shard_catalogs = &topo.shard_catalogs;
    let fanouts = &topo.fanouts;
    let shard_plans = &topo.shard_plans;

    let bound = cfg.channel_bound.max(1);
    let (shard_txs, shard_rxs): (Vec<SyncSender<ShardMsg>>, Vec<Receiver<ShardMsg>>) =
        (0..nshards).map(|_| sync_channel(bound)).unzip();
    let (coll_tx, coll_rx) = channel::<Update>();

    let mut submitted = 0u64;
    let (dones, snapshots) = thread::scope(|scope| {
        let mut shard_handles = Vec::new();
        for (shard, ((rx, shard_catalog), shard_plan)) in shard_rxs
            .into_iter()
            .zip(shard_catalogs.iter())
            .zip(shard_plans.iter())
            .enumerate()
        {
            let tx = coll_tx.clone();
            shard_handles.push(scope.spawn(move || {
                shard_actor(
                    shard,
                    sim,
                    kind,
                    sched_cfg,
                    shard_plan,
                    alternates,
                    shard_catalog,
                    rx,
                    tx,
                )
            }));
        }
        // The collector's channel closes when the last shard exits (the
        // shards hold the only sender clones once this one is dropped).
        drop(coll_tx);
        let collector = scope.spawn(move || collector_loop(coll_rx, nshards));

        // Ingestion, on this thread: the canonical demand stream,
        // fanned out with backpressure. A full shard channel blocks the
        // send — ingestion slows to the slowest shard instead of
        // buffering unboundedly or dropping.
        let mut stream = RequestStream::new(cfg.arrivals, workload);
        let mut seq = 0u64;
        for id in 0..cfg.samples as u64 {
            let (at_secs, rank) = stream.next_request();
            let at = SimTime::from_secs(at_secs);
            let targets = fanouts.get(rank).map_or(&[] as &[usize], Vec::as_slice);
            let mut sent = false;
            for (s, tx) in shard_txs.iter().enumerate() {
                if targets.contains(&s) && tx.send(ShardMsg::Submit { id, at, rank }).is_ok() {
                    sent = true;
                }
            }
            if sent {
                submitted += 1;
            }
            if cfg.snapshot_every > 0 && (id + 1) % cfg.snapshot_every as u64 == 0 {
                seq += 1;
                for tx in &shard_txs {
                    if tx.send(ShardMsg::Tick { seq }).is_err() {
                        continue;
                    }
                }
            }
        }
        // Hang up: every shard drains its queue, finishes in-flight
        // batches and returns its books.
        drop(shard_txs);

        let mut dones = Vec::new();
        for (shard, handle) in shard_handles.into_iter().enumerate() {
            match handle.join() {
                Ok(done) => dones.push((shard, done)),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        let snapshots = match collector.join() {
            Ok(snapshots) => snapshots,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (dones, snapshots)
    });

    assemble(
        sim,
        plan,
        cfg,
        nshards,
        submitted,
        dones,
        snapshots,
        SupExtra::default(),
    )
}

/// Joins the per-shard books into the final report. Pure and
/// single-threaded: everything deterministic about the run funnels
/// through here. `dones` carries explicit shard indices because a
/// supervised run may lose a shard's books entirely; `extra` is the
/// supervisor's shed/failure ledger ([`SupExtra::default`] for the
/// unsupervised path).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    sim: &Simulator,
    plan: &FaultPlan,
    cfg: &ServeConfig,
    nshards: usize,
    submitted: u64,
    dones: Vec<(usize, ShardDone)>,
    snapshots: Vec<RegistrySnapshot>,
    extra: SupExtra,
) -> ServeReport {
    let system = sim.placement().config();
    let clock = plan.clock();

    // Every id with any shed part: classified shed unless it is lost.
    let shed_ids: BTreeSet<u64> = extra
        .shed_admission
        .union(&extra.shed_parts)
        .copied()
        .collect();

    // Expected fan-out per global id: how many shards accepted it.
    let mut expected: BTreeMap<u64, u32> = BTreeMap::new();
    for (_, done) in &dones {
        for &id in &done.ids {
            *expected.entry(id).or_insert(0) += 1;
        }
    }

    // Join records (and losses) by global id.
    let mut joined: BTreeMap<u64, Join> = BTreeMap::new();
    for (_, done) in &dones {
        for r in &done.report.records {
            let Some(&id) = done.ids.get(r.request) else {
                continue;
            };
            let entry = joined.entry(id).or_insert(Join {
                arrival: r.arrival,
                first_start: r.first_start,
                finish: r.finish,
                parts: 0,
                lost: false,
            });
            entry.first_start = entry.first_start.min(r.first_start);
            entry.finish = entry.finish.max(r.finish);
            entry.parts += 1;
        }
        for &local in &done.report.lost {
            if let Some(&id) = done.ids.get(local) {
                joined
                    .entry(id)
                    .or_insert(Join {
                        arrival: SimTime::ZERO,
                        first_start: SimTime::ZERO,
                        finish: SimTime::ZERO,
                        parts: 0,
                        lost: true,
                    })
                    .lost = true;
            }
        }
    }

    let mut lost = 0u64;
    let mut shed = 0u64;
    let mut records: Vec<RequestRecord> = Vec::new();
    if let (1, true, Some((_, done))) = (dones.len(), shed_ids.is_empty(), dones.first()) {
        // Single shard, nothing shed: the engine's completion order IS
        // the batch engine's record stream — pass it through untouched
        // so the rebuilt metrics reproduce the batch bits.
        lost = done.report.lost.len() as u64;
        records.extend(done.report.records.iter().map(|r| RequestRecord {
            request: done.ids.get(r.request).map_or(r.request, |&id| id as usize),
            ..*r
        }));
    } else {
        for (&id, join) in &joined {
            if join.lost {
                lost += 1;
                continue;
            }
            if shed_ids.contains(&id) {
                // A part was shed: the request cannot be complete, and
                // the supervisor already promised to count it.
                shed += 1;
                continue;
            }
            if expected.get(&id).copied() == Some(join.parts) {
                records.push(RequestRecord {
                    request: id as usize,
                    arrival: join.arrival,
                    first_start: join.first_start,
                    finish: join.finish,
                });
            } else {
                // Incomplete without a recorded shed or loss (a shard's
                // books vanished): count it shed so conservation holds.
                shed += 1;
            }
        }
        // Sheds that never reached a surviving shard at all: admission
        // sheds and requests whose every part was dropped.
        for &id in &shed_ids {
            if !joined.contains_key(&id) {
                shed += 1;
            }
        }
        // Per-shard streams are each nondecreasing in finish but
        // mutually unordered; `(finish, id)` is the canonical total
        // order the merged accumulators are fed in.
        records.sort_by(|a, b| a.finish.cmp(&b.finish).then(a.request.cmp(&b.request)));
    }

    let mut metrics = SchedMetrics::new(system.total_drives() as u32);
    for r in &records {
        metrics.record(r);
        if clock.degraded_at(r.arrival) {
            metrics.record_degraded_sojourn(r);
        }
    }

    let mut registry = MetricsRegistry::new();
    let mut reports = Vec::new();
    let mut per_shard = Vec::new();
    let mut rejected = 0u64;
    let mut end = SimTime::ZERO;
    for (shard, done) in dones.into_iter() {
        metrics.merge_counters(&done.report.outcome.metrics);
        registry.merge(&done.registry);
        rejected += done.report.rejected;
        end = end.max(done.report.end);
        per_shard.push(ShardStats {
            shard,
            submitted: done.report.submitted as u64,
            served: done.report.records.len() as u64,
            lost: done.report.lost.len() as u64,
            rejected: done.report.rejected,
            mounts: done.report.outcome.metrics.mounts(),
            events: done.report.outcome.metrics.events(),
            end: done.report.end,
        });
        reports.extend(done.report.outcome.reports);
    }

    let served = records.len() as u64;
    ServeReport {
        metrics,
        records,
        registry: registry.canonical(),
        snapshots,
        reports,
        per_shard,
        submitted,
        served,
        lost,
        rejected,
        shed,
        restarts: extra.restarts,
        failures: extra.failures,
        health_trace: extra.health_trace,
        shards: nshards,
        end,
    }
    .checked(cfg)
}

impl ServeReport {
    /// Debug-time conservation check: every ingested request is served,
    /// lost, shed or rejected, never silently vanished.
    fn checked(self, cfg: &ServeConfig) -> ServeReport {
        debug_assert_eq!(
            self.submitted,
            self.served + self.lost + self.shed + self.rejected,
            "request conservation violated (samples={})",
            cfg.samples
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report whose only nonzero legs are the ones a test sets: the
    /// conservation identity `submitted = served + lost + shed +
    /// rejected` is exercised one leg at a time.
    fn base(submitted: u64) -> ServeReport {
        ServeReport {
            metrics: SchedMetrics::default(),
            records: Vec::new(),
            registry: MetricsRegistry::new(),
            snapshots: Vec::new(),
            reports: Vec::new(),
            per_shard: Vec::new(),
            submitted,
            served: 0,
            lost: 0,
            rejected: 0,
            shed: 0,
            restarts: 0,
            failures: Vec::new(),
            health_trace: Vec::new(),
            shards: 1,
            end: SimTime::ZERO,
        }
    }

    #[test]
    fn conservation_closes_on_the_served_leg() {
        let mut r = base(7);
        r.served = 7;
        assert!(r.is_clean());
        r.served = 6;
        assert!(!r.is_clean(), "a vanished request must not audit clean");
    }

    #[test]
    fn conservation_closes_on_the_lost_leg() {
        let mut r = base(5);
        r.served = 3;
        r.lost = 2;
        assert!(r.is_clean());
        r.lost = 3;
        assert!(!r.is_clean(), "a double-counted loss must not audit clean");
    }

    #[test]
    fn conservation_closes_on_the_shed_leg() {
        let mut r = base(9);
        r.served = 4;
        r.shed = 5;
        assert!(r.is_clean());
        r.shed = 0;
        assert!(!r.is_clean());
    }

    #[test]
    fn conservation_closes_on_the_rejected_leg() {
        let mut r = base(4);
        r.served = 1;
        r.rejected = 3;
        assert!(
            r.is_clean(),
            "post-close rejections are an accounted leg, not a failure"
        );
        r.rejected = 2;
        assert!(!r.is_clean());
    }

    #[test]
    fn conservation_closes_with_every_leg_nonzero() {
        let mut r = base(10);
        r.served = 4;
        r.lost = 2;
        r.shed = 3;
        r.rejected = 1;
        assert!(r.is_clean());
    }
}
