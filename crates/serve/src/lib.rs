//! # tapesim-serve
//!
//! A long-running, sharded scheduling service over the batch simulator:
//! the substrate for sustained-traffic experiments (TALICS³-style
//! multi-library archival serving) that the one-shot `tapesim sched`
//! runs cannot express.
//!
//! The workspace is offline and shim-only — no async runtime — so the
//! service is a hand-rolled actor system on std threads and bounded
//! mpsc channels:
//!
//! * an **ingestion stage** drawing the canonical seeded demand stream
//!   ([`tapesim_workload::RequestStream`]) and fanning each request out
//!   to the library shards holding its tapes, with explicit
//!   backpressure (bounded `sync_channel`: a slow shard stalls
//!   ingestion, nothing is ever dropped);
//! * **N library shards**, each a thread owning the libraries
//!   `lib % N == shard` and running its own virtual-time event loop — a
//!   [`tapesim_sched::ShardEngine`] over the shard's slice of the job
//!   catalog and of the (globally generated, per-shard restricted)
//!   fault plan;
//! * a **collector thread** assembling periodic
//!   [`tapesim_obs::RegistrySnapshot`]s: ingestion broadcasts a tick
//!   every `snapshot_every` submissions, every shard answers with its
//!   registry state at that tick, and the collector merges each round
//!   in shard order — so the snapshot *sequence* is deterministic, not
//!   just the final state;
//! * **clean shutdown**: ingestion closes the shard channels, shards
//!   drain in-flight work ([`ShardEngine::close`] → `finish`), and the
//!   main thread joins everything into one [`ServeReport`].
//!
//! # Supervision ([`supervisor_run`])
//!
//! The supervised runtime layers self-healing on top: a supervisor
//! owns every shard's submission channel and accepted-submission log,
//! injects seeded [`tapesim_faults::ChaosPlan`] kills/stalls as
//! in-band poison messages, detects death via channel disconnect and
//! liveness-tick acknowledgements, and restarts dead shards from a
//! [`tapesim_sched::EngineCheckpoint`] replay after capped-exponential
//! backoff. A [`HealthPolicy`] over the deterministic snapshot stream
//! (`Healthy → Degraded → Overloaded`) sheds at admission when the
//! service is queue-unstable — every shed counted, conservation
//! generalized to `submitted = served + lost + shed + rejected`.
//!
//! # Determinism
//!
//! A single-shard run reproduces the equivalent `tapesim sched` batch
//! run bit for bit (same records, same metric bits), and a multi-shard
//! run is a pure function of `(seed, shard_count)`: same inputs, same
//! merged canonical registry, same snapshot sequence, same joined
//! records. A supervised run with an empty chaos plan is bit-identical
//! to the unsupervised path, and a chaotic one replays identically
//! from `(seed, shards, chaos-seed)`. All pinned by tests in this
//! crate.
//!
//! [`ShardEngine::close`]: tapesim_sched::ShardEngine::close

pub mod health;
pub mod runtime;
pub mod supervisor;

pub use health::{Health, HealthPolicy};
pub use runtime::{serve_run, FailureReason, ServeConfig, ServeReport, ShardFailure, ShardStats};
pub use supervisor::{supervisor_run, SuperviseConfig};
