//! The service health state machine: `Healthy → Degraded → Overloaded`,
//! derived from the deterministic snapshot stream.
//!
//! Health is a function of *virtual-time* metrics only — queue depth,
//! p99 sojourn, lost-rate — read off the merged registry at each
//! snapshot barrier. Because that registry is a pure function of the
//! submission subsequences (never of wall-clock interleavings), the
//! entire health trace of a run replays bit-identically from
//! `(seed, shards, chaos-seed)`.
//!
//! Transitions are *laddered*: one level per snapshot in either
//! direction. A single pathological snapshot therefore degrades the
//! service before it sheds, and recovery likewise passes back through
//! `Degraded` — no flapping straight between the extremes.

use tapesim_obs::MetricsRegistry;

/// The admission-control state of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// All signals under their degraded thresholds: admit everything.
    Healthy,
    /// At least one signal crossed its degraded threshold: keep
    /// admitting, but the dashboards show it and the next step is shed.
    Degraded,
    /// At least one signal crossed its overload threshold: shed new
    /// requests at admission (counted, never silently dropped) until
    /// the signals recede.
    Overloaded,
}

impl Health {
    /// The value stamped into the `serve.health` gauge.
    pub fn gauge_value(self) -> f64 {
        match self {
            Health::Healthy => 0.0,
            Health::Degraded => 1.0,
            Health::Overloaded => 2.0,
        }
    }

    /// Stable lowercase name, for renders and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Overloaded => "overloaded",
        }
    }

    /// One ladder step from `self` toward `target`.
    fn toward(self, target: Health) -> Health {
        match (self, target) {
            (a, b) if a == b => a,
            (Health::Healthy, _) => Health::Degraded,
            (Health::Overloaded, _) => Health::Degraded,
            (Health::Degraded, t) => t,
        }
    }
}

/// Thresholds the health classifier reads against the merged registry.
///
/// Each signal has a degraded and an overloaded threshold; the
/// classified state is the worst over all signals. A signal absent from
/// the registry (or an empty histogram) never triggers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// `serve.queue_depth` (summed outstanding jobs) degraded edge.
    pub degraded_depth: f64,
    /// `serve.queue_depth` overload edge.
    pub overloaded_depth: f64,
    /// `serve.sojourn` p99 degraded edge, seconds.
    pub degraded_p99_secs: f64,
    /// `serve.sojourn` p99 overload edge, seconds.
    pub overloaded_p99_secs: f64,
    /// `serve.lost / serve.submitted` degraded edge.
    pub degraded_lost_rate: f64,
    /// Lost-rate overload edge.
    pub overloaded_lost_rate: f64,
}

impl Default for HealthPolicy {
    /// Edges tuned to the bench cells: a healthy cell idles well under
    /// depth 64 and p99 4 h; a queue-unstable one blows through both.
    fn default() -> HealthPolicy {
        HealthPolicy {
            degraded_depth: 64.0,
            overloaded_depth: 256.0,
            degraded_p99_secs: 14_400.0,
            overloaded_p99_secs: 57_600.0,
            degraded_lost_rate: 0.02,
            overloaded_lost_rate: 0.10,
        }
    }
}

impl HealthPolicy {
    /// The raw (un-laddered) state `reg`'s signals map to.
    pub fn classify(&self, reg: &MetricsRegistry) -> Health {
        let depth = reg.gauge_by_name("serve.queue_depth").unwrap_or(0.0);
        // NaN (empty histogram) compares false against every edge.
        let p99 = reg
            .histogram_by_name("serve.sojourn")
            .map_or(f64::NAN, |h| h.percentile(99.0));
        let submitted = reg.counter_by_name("serve.submitted").unwrap_or(0);
        let lost = reg.counter_by_name("serve.lost").unwrap_or(0);
        let lost_rate = if submitted > 0 {
            lost as f64 / submitted as f64
        } else {
            0.0
        };
        if depth >= self.overloaded_depth
            || p99 >= self.overloaded_p99_secs
            || lost_rate >= self.overloaded_lost_rate
        {
            Health::Overloaded
        } else if depth >= self.degraded_depth
            || p99 >= self.degraded_p99_secs
            || lost_rate >= self.degraded_lost_rate
        {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    /// One snapshot's transition: ladder `current` a single level
    /// toward [`HealthPolicy::classify`]'s target.
    pub fn step(&self, current: Health, reg: &MetricsRegistry) -> Health {
        current.toward(self.classify(reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(depth: f64, lost: u64, submitted: u64) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let d = reg.gauge("serve.queue_depth");
        reg.set(d, depth);
        let l = reg.counter("serve.lost");
        reg.add(l, lost);
        let s = reg.counter("serve.submitted");
        reg.add(s, submitted);
        reg
    }

    #[test]
    fn classify_is_worst_signal() {
        let policy = HealthPolicy::default();
        assert_eq!(policy.classify(&reg(0.0, 0, 100)), Health::Healthy);
        assert_eq!(policy.classify(&reg(64.0, 0, 100)), Health::Degraded);
        assert_eq!(policy.classify(&reg(256.0, 0, 100)), Health::Overloaded);
        // Lost-rate alone can overload a shallow queue.
        assert_eq!(policy.classify(&reg(0.0, 10, 100)), Health::Overloaded);
        assert_eq!(policy.classify(&reg(0.0, 2, 100)), Health::Degraded);
        // No traffic at all: healthy, not a 0/0 panic.
        assert_eq!(policy.classify(&reg(0.0, 0, 0)), Health::Healthy);
        // A registry with none of the signals is healthy.
        assert_eq!(policy.classify(&MetricsRegistry::new()), Health::Healthy);
    }

    #[test]
    fn transitions_are_laddered_one_level_per_snapshot() {
        let policy = HealthPolicy::default();
        let hot = reg(1000.0, 0, 100);
        let cold = reg(0.0, 0, 100);
        // Up: Healthy → Degraded → Overloaded, never a direct jump.
        let d = policy.step(Health::Healthy, &hot);
        assert_eq!(d, Health::Degraded);
        assert_eq!(policy.step(d, &hot), Health::Overloaded);
        // Down mirrors it.
        let d = policy.step(Health::Overloaded, &cold);
        assert_eq!(d, Health::Degraded);
        assert_eq!(policy.step(d, &cold), Health::Healthy);
        // Fixed points hold.
        assert_eq!(
            policy.step(Health::Degraded, &reg(64.0, 0, 100)),
            Health::Degraded
        );
        assert_eq!(policy.step(Health::Healthy, &cold), Health::Healthy);
        assert_eq!(policy.step(Health::Overloaded, &hot), Health::Overloaded);
    }

    #[test]
    fn gauge_values_and_names_are_stable() {
        assert_eq!(Health::Healthy.gauge_value(), 0.0);
        assert_eq!(Health::Degraded.gauge_value(), 1.0);
        assert_eq!(Health::Overloaded.gauge_value(), 2.0);
        assert_eq!(Health::Healthy.name(), "healthy");
        assert_eq!(Health::Degraded.name(), "degraded");
        assert_eq!(Health::Overloaded.name(), "overloaded");
        assert!(Health::Healthy < Health::Degraded);
        assert!(Health::Degraded < Health::Overloaded);
    }
}
