//! The supervised runtime's three load-bearing claims:
//!
//! 1. with an **empty chaos plan** and no health policy, `supervisor_run`
//!    is bit-identical to `serve_run` — same merged canonical registry,
//!    same snapshot sequence, same joined records;
//! 2. a run with **shard kills** (and stalls) replays identically from
//!    `(seed, shards, chaos-seed)`, with conservation generalized to
//!    `submitted = served + lost + shed + rejected`;
//! 3. a **wedged shard never hangs the process**: the drain watchdog
//!    surfaces it as a counted failure and a recovery incarnation
//!    replays its log.

use std::collections::BTreeMap;
use tapesim_faults::{ChaosPlan, ChaosSpec, FaultPlan, FaultSpec};
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::PolicyKind;
use tapesim_serve::{
    serve_run, supervisor_run, FailureReason, Health, HealthPolicy, ServeConfig, SuperviseConfig,
};
use tapesim_sim::Simulator;
use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

fn setup() -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 17,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
    (Simulator::with_natural_policy(p, 4), w)
}

fn arrivals() -> ArrivalSpec {
    ArrivalSpec {
        per_hour: 30.0,
        seed: 5,
    }
}

#[test]
fn empty_chaos_supervised_run_is_bit_identical_to_serve_run() {
    let cfg = ServeConfig::new(arrivals(), 40)
        .with_shards(3)
        .with_audit(true)
        .with_snapshot_every(10)
        .with_channel_bound(4);

    let (sim, w) = setup();
    let plan = FaultPlan::zero(sim.placement().config());
    let plain = serve_run(
        &sim,
        &w,
        PolicyKind::BatchByTape,
        &cfg,
        &plan,
        &BTreeMap::new(),
    );

    let (sim, w) = setup();
    let plan = FaultPlan::zero(sim.placement().config());
    let supervised = supervisor_run(
        &sim,
        &w,
        PolicyKind::BatchByTape,
        &cfg,
        &plan,
        &BTreeMap::new(),
        &ChaosPlan::zero(3),
        &SuperviseConfig::new(),
    );

    assert!(supervised.is_clean());
    assert_eq!(supervised.shed, 0);
    assert_eq!(supervised.restarts, 0);
    assert!(supervised.failures.is_empty());
    assert!(supervised.health_trace.is_empty());
    assert_eq!(
        supervised.registry, plain.registry,
        "supervision with no chaos must not perturb a single registry bit"
    );
    assert_eq!(supervised.snapshots, plain.snapshots);
    assert_eq!(supervised.records, plain.records);
    assert_eq!(supervised.submitted, plain.submitted);
    assert_eq!(supervised.served, plain.served);
    assert_eq!(supervised.lost, plain.lost);
    assert_eq!(supervised.end, plain.end);
    assert_eq!(
        supervised.metrics.avg_sojourn().to_bits(),
        plain.metrics.avg_sojourn().to_bits()
    );
    assert_eq!(
        supervised.metrics.sojourn_percentile(99.0).to_bits(),
        plain.metrics.sojourn_percentile(99.0).to_bits()
    );
}

#[test]
fn kill_chaos_replays_identically_and_conserves() {
    let spec = ChaosSpec {
        seed: 41,
        kills_per_shard: 2.5,
        stalls_per_shard: 0.0,
        horizon_submissions: 12,
        restart_base_draws: 2,
        restart_cap_draws: 8,
    };
    let run = || {
        let (sim, w) = setup();
        // Hardware faults and process chaos at the same time: the
        // degraded-mode worst case.
        let plan = FaultPlan::generate(
            &FaultSpec {
                horizon_hours: 4.0,
                ..FaultSpec::moderate(23)
            },
            sim.placement().config(),
        );
        supervisor_run(
            &sim,
            &w,
            PolicyKind::BatchByTape,
            &ServeConfig::new(arrivals(), 40)
                .with_shards(3)
                .with_snapshot_every(10)
                .with_channel_bound(2),
            &plan,
            &BTreeMap::new(),
            &ChaosPlan::generate(&spec, 3),
            &SuperviseConfig::new(),
        )
    };
    let a = run();
    let b = run();

    assert!(
        a.restarts > 0 && !a.failures.is_empty(),
        "the chaos plan must actually fire (restarts={}, failures={:?})",
        a.restarts,
        a.failures
    );
    assert!(a.failures.iter().all(|f| f.reason == FailureReason::Killed));
    assert!(a.is_clean(), "kills must never break conservation");
    assert_eq!(a.submitted, 40);
    assert_eq!(a.submitted, a.served + a.lost + a.shed + a.rejected);

    assert_eq!(
        a.registry, b.registry,
        "chaos runs must replay bit-identically"
    );
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.records, b.records);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.end, b.end);
    assert_eq!(
        a.metrics.avg_sojourn().to_bits(),
        b.metrics.avg_sojourn().to_bits()
    );

    // Every joined record id is unique and accounted for.
    let mut ids: Vec<usize> = a.records.iter().map(|r| r.request).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, a.served);
}

#[test]
fn stall_is_detected_at_the_barrier_and_recovered() {
    let spec = ChaosSpec {
        seed: 3,
        kills_per_shard: 0.0,
        stalls_per_shard: 2.0,
        horizon_submissions: 10,
        restart_base_draws: 1,
        restart_cap_draws: 4,
    };
    let run = || {
        let (sim, w) = setup();
        let plan = FaultPlan::zero(sim.placement().config());
        supervisor_run(
            &sim,
            &w,
            PolicyKind::SltfTape,
            &ServeConfig::new(arrivals(), 36)
                .with_shards(3)
                .with_snapshot_every(6),
            &plan,
            &BTreeMap::new(),
            &ChaosPlan::generate(&spec, 3),
            &SuperviseConfig::new().with_watchdog_ms(1_500),
        )
    };
    let a = run();
    assert!(
        a.failures
            .iter()
            .any(|f| f.reason == FailureReason::Stalled),
        "a stall inside the barrier cadence must be detected as Stalled: {:?}",
        a.failures
    );
    assert!(a.restarts > 0);
    assert!(a.is_clean());
    assert_eq!(a.submitted, 36);
    let b = run();
    assert_eq!(a.registry, b.registry, "stall detection must replay");
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.shed, b.shed);
}

#[test]
fn wedged_shard_surfaces_via_drain_watchdog_not_a_hang() {
    // No snapshot barriers at all: the only stall detector left is the
    // drain watchdog. The test *completing* is the no-hang claim; the
    // report carries the counted failure and the replayed books.
    let spec = ChaosSpec {
        seed: 11,
        kills_per_shard: 0.0,
        stalls_per_shard: 3.0,
        horizon_submissions: 8,
        restart_base_draws: 0,
        restart_cap_draws: 0,
    };
    let (sim, w) = setup();
    let plan = FaultPlan::zero(sim.placement().config());
    let report = supervisor_run(
        &sim,
        &w,
        PolicyKind::BatchByTape,
        &ServeConfig::new(arrivals(), 24).with_shards(2),
        &plan,
        &BTreeMap::new(),
        &ChaosPlan::generate(&spec, 2),
        &SuperviseConfig::new().with_watchdog_ms(600),
    );
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.reason == FailureReason::Unresponsive),
        "an unbarriered stall must surface at drain: {:?}",
        report.failures
    );
    assert!(report.restarts > 0);
    assert!(report.is_clean());
    assert_eq!(report.submitted, 24);
    // The recovery incarnation replays the stalled shard's entire log,
    // so nothing needs shedding in this zero-hardware-fault run.
    assert_eq!(report.served + report.lost + report.shed, 24);
}

#[test]
fn overload_sheds_at_admission_with_laddered_health() {
    // Thresholds of zero force the target state to Overloaded from the
    // first barrier; the ladder must still pass through Degraded.
    let policy = HealthPolicy {
        degraded_depth: 0.0,
        overloaded_depth: 0.0,
        ..HealthPolicy::default()
    };
    let (sim, w) = setup();
    let plan = FaultPlan::zero(sim.placement().config());
    let report = supervisor_run(
        &sim,
        &w,
        PolicyKind::BatchByTape,
        &ServeConfig::new(arrivals(), 30)
            .with_shards(2)
            .with_snapshot_every(5),
        &plan,
        &BTreeMap::new(),
        &ChaosPlan::zero(2),
        &SuperviseConfig::new().with_health(policy),
    );
    assert!(report.is_clean());
    assert_eq!(report.submitted, 30);
    // Barrier 1 (after draw 5): Healthy→Degraded. Barrier 2 (after
    // draw 10): Degraded→Overloaded. Draws 10..30 are shed.
    assert_eq!(
        report.shed, 20,
        "admission control must shed exactly the overloaded window"
    );
    assert_eq!(report.served + report.lost, 10);
    assert_eq!(
        report.health_trace.first().map(|&(seq, h)| (seq, h)),
        Some((1, Health::Degraded))
    );
    assert!(report
        .health_trace
        .iter()
        .skip(1)
        .all(|&(_, h)| h == Health::Overloaded));
    // The health gauge rides the snapshot stream for dashboards.
    let gauge_at = |i: usize| {
        report
            .snapshots
            .get(i)
            .and_then(|s| s.registry.gauge_by_name("serve.health"))
    };
    assert_eq!(gauge_at(0), Some(1.0));
    assert_eq!(gauge_at(1), Some(2.0));
}
