//! Backpressure conservation law (ISSUE satellite): a bounded ingestion
//! channel feeding slow shards never drops or duplicates a request.
//! Whatever the channel bound, shard count, snapshot cadence or demand
//! seed, at shutdown `submitted = served + lost`, nothing is rejected,
//! and every global id appears at most once in the joined records.
//!
//! The channel bound goes down to 1 — maximal backpressure — so the
//! ingestion thread spends most of the run blocked on full channels;
//! any drop/duplicate bug in the hand-rolled actor plumbing shows up
//! here as a conservation violation.
//!
//! The chaos family extends the law to the supervised runtime: across a
//! `(seed, shards, kill-schedule)` grid — still at channel bound 1 —
//! killing and restarting shards mid-stream must keep
//! `submitted = served + lost + shed + rejected` closed, every joined
//! record id unique, and the whole run replayable bit for bit.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tapesim_faults::{ChaosPlan, ChaosSpec, FaultPlan};
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::PolicyKind;
use tapesim_serve::{serve_run, supervisor_run, ServeConfig, SuperviseConfig};
use tapesim_sim::Simulator;
use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

/// A small, fast fixture: enough objects that requests span several
/// tapes (real fan-out across shards), small enough that a proptest
/// case finishes in milliseconds.
fn setup(seed: u64) -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 600,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
        requests: RequestSpec {
            count: 15,
            min_objects: 4,
            max_objects: 10,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(2).place(&w, &cfg).unwrap();
    (Simulator::with_natural_policy(p, 2), w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_ingestion_conserves_requests(
        wl_seed in 1u64..500,
        arrival_seed in 1u64..500,
        samples in 1usize..48,
        shards in 1usize..=3,
        channel_bound in 1usize..=3,
        snapshot_every in 0usize..8,
        kind_pick in 0usize..3,
    ) {
        let (sim, w) = setup(wl_seed);
        let plan = FaultPlan::zero(sim.placement().config());
        let kind = match kind_pick {
            0 => PolicyKind::Fcfs,
            1 => PolicyKind::BatchByTape,
            _ => PolicyKind::SltfTape,
        };
        let report = serve_run(
            &sim,
            &w,
            kind,
            &ServeConfig::new(
                ArrivalSpec { per_hour: 120.0, seed: arrival_seed },
                samples,
            )
            .with_shards(shards)
            .with_channel_bound(channel_bound)
            .with_snapshot_every(snapshot_every),
            &plan,
            &BTreeMap::new(),
        );

        // Conservation: nothing dropped, nothing duplicated, nothing
        // rejected in a clean shutdown.
        prop_assert_eq!(report.submitted, samples as u64);
        prop_assert_eq!(report.submitted, report.served + report.lost);
        prop_assert_eq!(report.rejected, 0);
        prop_assert!(report.is_clean());

        // Every joined record answers a distinct ingested id.
        let mut ids: Vec<usize> =
            report.records.iter().map(|r| r.request).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicated request id");
        prop_assert!(ids.iter().all(|&id| id < samples));

        // The per-shard ledgers agree with the global ones.
        let part_served: u64 = report.per_shard.iter().map(|s| s.served).sum();
        let part_sub: u64 = report.per_shard.iter().map(|s| s.submitted).sum();
        prop_assert!(part_served >= report.served, "fan-out parts >= joined");
        prop_assert!(part_sub >= report.submitted);

        // Snapshot rounds: one per full cadence interval, seq ascending.
        match samples.checked_div(snapshot_every) {
            Some(rounds) => {
                prop_assert_eq!(report.snapshots.len(), rounds);
                for (i, s) in report.snapshots.iter().enumerate() {
                    prop_assert_eq!(s.seq, i as u64 + 1);
                }
            }
            None => prop_assert!(report.snapshots.is_empty()),
        }
    }
}

proptest! {
    // Each case runs the supervised service twice (for the replay
    // check), and a stalled barrier costs a watchdog timeout — so this
    // family runs fewer, heavier cases than the backpressure one.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chaos_restarts_conserve_requests_and_replay(
        wl_seed in 1u64..300,
        arrival_seed in 1u64..300,
        samples in 6usize..36,
        shards in 1usize..=3,
        chaos_seed in 1u64..1000,
        kills in 1u32..=3,
        stall_flag in 0u32..=1,
        kind_pick in 0usize..3,
    ) {
        let spec = ChaosSpec {
            seed: chaos_seed,
            kills_per_shard: kills as f64,
            stalls_per_shard: stall_flag as f64,
            horizon_submissions: (samples / shards).max(1) as u64,
            restart_base_draws: 1,
            restart_cap_draws: 4,
        };
        let kind = match kind_pick {
            0 => PolicyKind::Fcfs,
            1 => PolicyKind::BatchByTape,
            _ => PolicyKind::SltfTape,
        };
        let run = || {
            let (sim, w) = setup(wl_seed);
            let plan = FaultPlan::zero(sim.placement().config());
            supervisor_run(
                &sim,
                &w,
                kind,
                &ServeConfig::new(
                    ArrivalSpec { per_hour: 120.0, seed: arrival_seed },
                    samples,
                )
                .with_shards(shards)
                .with_channel_bound(1)
                .with_snapshot_every((samples / 3).max(1)),
                &plan,
                &BTreeMap::new(),
                &ChaosPlan::generate(&spec, shards),
                // Injected stalls are detected deterministically (they
                // never ack a tick), so the watchdog only bounds the
                // wait — keep it short.
                &SuperviseConfig::new().with_watchdog_ms(400),
            )
        };
        let a = run();

        // The generalized conservation ledger closes under any
        // kill/stall schedule, with no silent losses.
        prop_assert_eq!(a.submitted, samples as u64);
        prop_assert_eq!(
            a.submitted,
            a.served + a.lost + a.shed + a.rejected,
            "ledger must close: served {} lost {} shed {} rejected {}",
            a.served, a.lost, a.shed, a.rejected
        );
        prop_assert!(a.is_clean());

        // No duplicated record even across restart incarnations.
        let mut ids: Vec<usize> = a.records.iter().map(|r| r.request).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicated request id");
        prop_assert_eq!(ids.len() as u64, a.served);
        prop_assert!(ids.iter().all(|&id| id < samples));

        // The whole run — failures, restarts, books — replays from
        // `(seed, shards, chaos-seed)`.
        let b = run();
        prop_assert_eq!(&a.registry, &b.registry);
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.failures, &b.failures);
        prop_assert_eq!(a.restarts, b.restarts);
        prop_assert_eq!(a.shed, b.shed);
    }
}
