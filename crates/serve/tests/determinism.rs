//! The two determinism pins the serve subsystem stands on:
//!
//! 1. a **single-shard** fixed-seed serve run reproduces the equivalent
//!    `tapesim sched` batch run's per-request metrics *bit for bit*
//!    (same Welford state, same percentile samples, same counters);
//! 2. a **multi-shard** run is a pure function of `(seed, shard_count)`:
//!    replaying it yields the identical merged canonical
//!    `MetricsRegistry`, the identical snapshot sequence and the
//!    identical joined records.

use std::collections::BTreeMap;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{run_scheduled, PolicyKind, SchedConfig};
use tapesim_serve::{serve_run, ServeConfig};
use tapesim_sim::Simulator;
use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

/// The sched crate's `heavy_setup` fixture: a working set that
/// overflows the initially mounted capacity, so runs actually exchange
/// tapes and the schedulers have real decisions to make.
fn setup() -> (Simulator, Workload) {
    let w = WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 17,
    }
    .generate();
    let cfg = paper_table1();
    let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
    (Simulator::with_natural_policy(p, 4), w)
}

fn arrivals() -> ArrivalSpec {
    ArrivalSpec {
        per_hour: 30.0,
        seed: 5,
    }
}

#[test]
fn single_shard_reproduces_batch_bit_for_bit() {
    for kind in [PolicyKind::BatchByTape, PolicyKind::SltfTape] {
        let (mut batch_sim, w) = setup();
        let policy = kind.build();
        let batch = run_scheduled(
            &mut batch_sim,
            &w,
            policy.as_ref(),
            &SchedConfig::new(arrivals(), 30).with_audit(true),
        );

        let (serve_sim, _) = setup();
        let plan = FaultPlan::zero(serve_sim.placement().config());
        let report = serve_run(
            &serve_sim,
            &w,
            kind,
            &ServeConfig::new(arrivals(), 30)
                .with_shards(1)
                .with_audit(true),
            &plan,
            &BTreeMap::new(),
        );

        assert!(report.is_clean(), "serve run must audit clean");
        assert!(batch.is_clean());
        assert_eq!(report.submitted, 30);
        assert_eq!(report.metrics.served(), batch.metrics.served());
        assert_eq!(
            report.metrics.avg_wait().to_bits(),
            batch.metrics.avg_wait().to_bits(),
            "{kind:?}: wait accumulator diverged"
        );
        assert_eq!(
            report.metrics.avg_service().to_bits(),
            batch.metrics.avg_service().to_bits()
        );
        assert_eq!(
            report.metrics.avg_sojourn().to_bits(),
            batch.metrics.avg_sojourn().to_bits()
        );
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(
                report.metrics.wait_percentile(p).to_bits(),
                batch.metrics.wait_percentile(p).to_bits()
            );
            assert_eq!(
                report.metrics.sojourn_percentile(p).to_bits(),
                batch.metrics.sojourn_percentile(p).to_bits()
            );
        }
        assert_eq!(
            report.metrics.utilisation().to_bits(),
            batch.metrics.utilisation().to_bits()
        );
        assert_eq!(report.metrics.mounts(), batch.metrics.mounts());
        assert_eq!(report.metrics.events(), batch.metrics.events());
        assert_eq!(report.metrics.lost(), batch.metrics.lost());
    }
}

#[test]
fn multi_shard_replay_is_deterministic() {
    let run = || {
        let (sim, w) = setup();
        let plan = FaultPlan::zero(sim.placement().config());
        serve_run(
            &sim,
            &w,
            PolicyKind::BatchByTape,
            &ServeConfig::new(arrivals(), 40)
                .with_shards(3)
                .with_audit(true)
                .with_snapshot_every(10)
                .with_channel_bound(4),
            &plan,
            &BTreeMap::new(),
        )
    };
    let a = run();
    let b = run();

    assert_eq!(a.shards, 3);
    assert!(a.is_clean(), "multi-shard run must audit clean");
    assert_eq!(
        a.registry, b.registry,
        "merged canonical registry must be a pure function of (seed, shards)"
    );
    assert_eq!(a.snapshots, b.snapshots, "snapshot sequence must replay");
    assert_eq!(a.records, b.records, "joined records must replay");
    assert_eq!(a.end, b.end);
    assert_eq!(
        a.metrics.avg_sojourn().to_bits(),
        b.metrics.avg_sojourn().to_bits()
    );
    assert_eq!(a.snapshots.len(), 4, "40 requests / tick every 10");
    let seqs: Vec<u64> = a.snapshots.iter().map(|s| s.seq).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4], "rounds complete in tick order");
    // Snapshot renders are stable text — the diffable live view.
    assert_eq!(
        a.snapshots.first().map(|s| s.render()),
        b.snapshots.first().map(|s| s.render())
    );
}

#[test]
fn shard_counts_agree_on_conservation() {
    for shards in [1, 2, 3] {
        let (sim, w) = setup();
        let plan = FaultPlan::zero(sim.placement().config());
        let report = serve_run(
            &sim,
            &w,
            PolicyKind::SltfTape,
            &ServeConfig::new(arrivals(), 25).with_shards(shards),
            &plan,
            &BTreeMap::new(),
        );
        assert_eq!(report.shards, shards);
        assert_eq!(report.submitted, 25);
        assert_eq!(
            report.submitted,
            report.served + report.lost,
            "{shards} shards: conservation"
        );
        assert_eq!(report.rejected, 0);
        assert_eq!(report.served, 25, "zero-fault runs lose nothing");
        // Every global id appears exactly once in the joined records.
        let mut ids: Vec<usize> = report.records.iter().map(|r| r.request).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }
}

#[test]
fn faulty_multi_shard_run_is_deterministic_and_audited() {
    let run = || {
        let (sim, w) = setup();
        let plan = FaultPlan::generate(
            &FaultSpec {
                horizon_hours: 4.0,
                ..FaultSpec::moderate(23)
            },
            sim.placement().config(),
        );
        serve_run(
            &sim,
            &w,
            PolicyKind::BatchByTape,
            &ServeConfig::new(arrivals(), 30)
                .with_shards(2)
                .with_audit(true)
                .with_snapshot_every(8),
            &plan,
            &BTreeMap::new(),
        )
    };
    let a = run();
    let b = run();
    assert!(a.is_clean(), "degraded runs must still audit clean");
    assert_eq!(a.registry, b.registry);
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.records, b.records);
    assert_eq!(a.submitted, a.served + a.lost);
    assert!(
        a.metrics.availability() <= 1.0,
        "fault plan must be visible in merged availability"
    );
}
