//! Named hardware presets.
//!
//! [`paper_table1`] is the exact configuration of the paper's evaluation
//! (IBM LTO Gen 3 drives in StorageTek L80 libraries, 3 libraries). The LTO
//! generation ladder supports the paper's closing "technology improvement"
//! discussion: each generation roughly doubles capacity and raises the
//! native rate.

use crate::drive::DriveSpec;
use crate::library::{LibrarySpec, SystemConfig};
use crate::robot::RobotSpec;
use crate::tape::TapeSpec;
use crate::units::{Bytes, BytesPerSec};

/// IBM LTO Ultrium generation 1 drive (100 GB, 15 MB/s native).
pub fn lto1_drive() -> DriveSpec {
    DriveSpec {
        native_rate: BytesPerSec::mb_per_sec(15.0),
        load_time: 19.0,
        unload_time: 19.0,
        full_pass_time: 98.0,
    }
}

/// LTO-1 cartridge (100 GB native).
pub fn lto1_tape() -> TapeSpec {
    TapeSpec::with_capacity(Bytes::gb(100))
}

/// IBM LTO Ultrium generation 2 drive (200 GB, 35 MB/s native).
pub fn lto2_drive() -> DriveSpec {
    DriveSpec {
        native_rate: BytesPerSec::mb_per_sec(35.0),
        load_time: 19.0,
        unload_time: 19.0,
        full_pass_time: 98.0,
    }
}

/// LTO-2 cartridge (200 GB native).
pub fn lto2_tape() -> TapeSpec {
    TapeSpec::with_capacity(Bytes::gb(200))
}

/// IBM LTO Ultrium generation 3 drive — the paper's Table 1 drive
/// (400 GB, 80 MB/s native, 19 s load/unload, 98 s max rewind).
pub fn lto3_drive() -> DriveSpec {
    DriveSpec {
        native_rate: BytesPerSec::mb_per_sec(80.0),
        load_time: 19.0,
        unload_time: 19.0,
        full_pass_time: 98.0,
    }
}

/// LTO-3 cartridge (400 GB native) — the paper's Table 1 cartridge.
pub fn lto3_tape() -> TapeSpec {
    TapeSpec::with_capacity(Bytes::gb(400))
}

/// IBM LTO Ultrium generation 4 drive (800 GB, 120 MB/s native).
pub fn lto4_drive() -> DriveSpec {
    DriveSpec {
        native_rate: BytesPerSec::mb_per_sec(120.0),
        load_time: 19.0,
        unload_time: 19.0,
        full_pass_time: 98.0,
    }
}

/// LTO-4 cartridge (800 GB native).
pub fn lto4_tape() -> TapeSpec {
    TapeSpec::with_capacity(Bytes::gb(800))
}

/// StorageTek L80 robot (7.6 s average cell↔drive move, Table 1).
pub fn stk_l80_robot() -> RobotSpec {
    RobotSpec {
        cell_to_drive_time: 7.6,
        arms: 1,
    }
}

/// A StorageTek L80 library populated with the given drive/tape generation:
/// 8 drives, 80 cartridge cells (Table 1).
pub fn stk_l80_library(drive: DriveSpec, tape: TapeSpec) -> LibrarySpec {
    LibrarySpec {
        drives: 8,
        tapes: 80,
        drive,
        tape,
        robot: stk_l80_robot(),
    }
}

/// The paper's full Table 1 configuration: **3 StorageTek L80 libraries with
/// IBM LTO Gen 3 drives**.
pub fn paper_table1() -> SystemConfig {
    SystemConfig::new(3, stk_l80_library(lto3_drive(), lto3_tape()))
        .expect("Table 1 configuration is valid")
}

/// The Table 1 configuration with a different library count (Figure 8 sweep).
pub fn paper_table1_with_libraries(libraries: u16) -> SystemConfig {
    SystemConfig::new(libraries, stk_l80_library(lto3_drive(), lto3_tape()))
        .expect("valid configuration")
}

/// The LTO generation ladder `(name, drive, tape)` used by the
/// technology-improvement extension experiment.
pub fn lto_generations() -> Vec<(&'static str, DriveSpec, TapeSpec)> {
    vec![
        ("LTO-1", lto1_drive(), lto1_tape()),
        ("LTO-2", lto2_drive(), lto2_tape()),
        ("LTO-3", lto3_drive(), lto3_tape()),
        ("LTO-4", lto4_drive(), lto4_tape()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let sys = paper_table1();
        assert_eq!(sys.libraries, 3);
        assert_eq!(sys.library.drives, 8);
        assert_eq!(sys.library.tapes, 80);
        assert_eq!(sys.library.tape.capacity, Bytes::gb(400));
        assert!((sys.library.drive.native_rate.get() - 80e6).abs() < 1.0);
        assert!((sys.library.drive.load_time - 19.0).abs() < 1e-12);
        assert!((sys.library.drive.unload_time - 19.0).abs() < 1e-12);
        assert!((sys.library.drive.full_pass_time - 98.0).abs() < 1e-12);
        assert!((sys.library.robot.cell_to_drive_time - 7.6).abs() < 1e-12);
        assert_eq!(sys.total_capacity(), Bytes::tb(96));
    }

    #[test]
    fn table1_average_access_time_is_consistent() {
        // Table 1 quotes 72 s "average file access time (first file)". With
        // the linear model this is load (19 s) + average half-pass seek
        // (49 s) = 68 s, within 6% of the quoted figure — the residual is
        // drive calibration overhead the linear model folds away.
        let d = lto3_drive();
        let avg_seek = d.position_time(Bytes::ZERO, Bytes::gb(200), Bytes::gb(400));
        let access = d.load_time + avg_seek;
        assert!((access - 68.0).abs() < 1e-9);
        assert!((access - 72.0).abs() / 72.0 < 0.06);
    }

    #[test]
    fn generation_ladder_is_monotone() {
        let gens = lto_generations();
        assert_eq!(gens.len(), 4);
        for pair in gens.windows(2) {
            assert!(pair[1].1.native_rate.get() > pair[0].1.native_rate.get());
            assert!(pair[1].2.capacity > pair[0].2.capacity);
        }
    }

    #[test]
    fn library_count_variant() {
        for n in 1..=6 {
            let sys = paper_table1_with_libraries(n);
            assert_eq!(sys.libraries, n);
            assert_eq!(sys.total_drives(), 8 * n as usize);
        }
    }
}
