//! Identifier newtypes shared across the workspace.
//!
//! All identifiers are small dense indices. Objects are numbered globally;
//! tapes and drives carry their owning library so that the "one robot per
//! library" and "tapes never leave their library" constraints are visible in
//! the type rather than maintained by convention.

use serde::{Deserialize, Serialize};
use std::fmt;
use tapesim_des::{DriveKey, TapeKey};

/// A data object (file / dataset) identifier. Dense, 0-based.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// A tape library identifier. Dense, 0-based.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LibraryId(pub u16);

impl LibraryId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LibraryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A tape cartridge: `slot` within its owning `library`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TapeId {
    /// The library whose storage cells hold this cartridge.
    pub library: LibraryId,
    /// Storage-cell slot within the library, 0-based.
    pub slot: u16,
}

impl TapeId {
    /// Creates a tape id.
    pub fn new(library: LibraryId, slot: u16) -> TapeId {
        TapeId { library, slot }
    }
}

impl fmt::Display for TapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:T{}", self.library, self.slot)
    }
}

/// Packs into the engine's trace key (`library << 32 | slot`); the key's
/// `Display` matches [`TapeId`]'s.
impl From<TapeId> for TapeKey {
    fn from(id: TapeId) -> TapeKey {
        TapeKey::pack(id.library.0 as u32, id.slot as u32)
    }
}

impl From<TapeKey> for TapeId {
    fn from(key: TapeKey) -> TapeId {
        TapeId::new(LibraryId(key.library() as u16), key.slot() as u16)
    }
}

/// A tape drive: `bay` within its owning `library`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DriveId {
    /// The library this drive is installed in.
    pub library: LibraryId,
    /// Drive bay within the library, 0-based.
    pub bay: u8,
}

impl DriveId {
    /// Creates a drive id.
    pub fn new(library: LibraryId, bay: u8) -> DriveId {
        DriveId { library, bay }
    }
}

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:D{}", self.library, self.bay)
    }
}

/// Packs into the engine's trace key (`library << 16 | bay`); the key's
/// `Display` matches [`DriveId`]'s.
impl From<DriveId> for DriveKey {
    fn from(id: DriveId) -> DriveKey {
        DriveKey::pack(id.library.0, id.bay as u16)
    }
}

impl From<DriveKey> for DriveId {
    fn from(key: DriveKey) -> DriveId {
        DriveId::new(LibraryId(key.library()), key.bay() as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let lib = LibraryId(2);
        assert_eq!(format!("{}", ObjectId(7)), "O7");
        assert_eq!(format!("{lib}"), "L2");
        assert_eq!(format!("{}", TapeId::new(lib, 15)), "L2:T15");
        assert_eq!(format!("{}", DriveId::new(lib, 3)), "L2:D3");
    }

    #[test]
    fn ordering_groups_by_library() {
        let a = TapeId::new(LibraryId(0), 99);
        let b = TapeId::new(LibraryId(1), 0);
        assert!(a < b, "library is the major sort key");
    }

    #[test]
    fn trace_keys_round_trip() {
        let tape = TapeId::new(LibraryId(3), 41);
        let key = TapeKey::from(tape);
        assert_eq!(TapeId::from(key), tape);
        assert_eq!(format!("{key}"), format!("{tape}"));

        let drive = DriveId::new(LibraryId(1), 7);
        let key = DriveKey::from(drive);
        assert_eq!(DriveId::from(key), drive);
        assert_eq!(format!("{key}"), format!("{drive}"));
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TapeId::new(LibraryId(0), 1), "x");
        assert_eq!(m[&TapeId::new(LibraryId(0), 1)], "x");
    }
}
