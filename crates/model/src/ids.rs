//! Identifier newtypes shared across the workspace.
//!
//! All identifiers are small dense indices. Objects are numbered globally;
//! tapes and drives carry their owning library so that the "one robot per
//! library" and "tapes never leave their library" constraints are visible in
//! the type rather than maintained by convention.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data object (file / dataset) identifier. Dense, 0-based.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// A tape library identifier. Dense, 0-based.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LibraryId(pub u16);

impl LibraryId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LibraryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A tape cartridge: `slot` within its owning `library`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TapeId {
    /// The library whose storage cells hold this cartridge.
    pub library: LibraryId,
    /// Storage-cell slot within the library, 0-based.
    pub slot: u16,
}

impl TapeId {
    /// Creates a tape id.
    pub fn new(library: LibraryId, slot: u16) -> TapeId {
        TapeId { library, slot }
    }
}

impl fmt::Display for TapeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:T{}", self.library, self.slot)
    }
}

/// A tape drive: `bay` within its owning `library`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DriveId {
    /// The library this drive is installed in.
    pub library: LibraryId,
    /// Drive bay within the library, 0-based.
    pub bay: u8,
}

impl DriveId {
    /// Creates a drive id.
    pub fn new(library: LibraryId, bay: u8) -> DriveId {
        DriveId { library, bay }
    }
}

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:D{}", self.library, self.bay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let lib = LibraryId(2);
        assert_eq!(format!("{}", ObjectId(7)), "O7");
        assert_eq!(format!("{lib}"), "L2");
        assert_eq!(format!("{}", TapeId::new(lib, 15)), "L2:T15");
        assert_eq!(format!("{}", DriveId::new(lib, 3)), "L2:D3");
    }

    #[test]
    fn ordering_groups_by_library() {
        let a = TapeId::new(LibraryId(0), 99);
        let b = TapeId::new(LibraryId(1), 0);
        assert!(a < b, "library is the major sort key");
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TapeId::new(LibraryId(0), 1), "x");
        assert_eq!(m[&TapeId::new(LibraryId(0), 1)], "x");
    }
}
