//! Tape cartridges and their on-tape data layout.
//!
//! A [`TapeLayout`] is the physical content of one cartridge: an ordered run
//! of objects at byte offsets from the load point (beginning of tape).
//! Layouts are append-only during placement and validated for overlap and
//! capacity.

use crate::ids::ObjectId;
use crate::units::Bytes;
use serde::{Deserialize, Serialize};

/// Static properties of a cartridge model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapeSpec {
    /// Native (uncompressed) capacity.
    pub capacity: Bytes,
}

impl TapeSpec {
    /// A spec with the given capacity.
    pub fn with_capacity(capacity: Bytes) -> TapeSpec {
        TapeSpec { capacity }
    }
}

/// One object's extent on a tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// The stored object.
    pub object: ObjectId,
    /// Byte offset of the object's first byte from the load point.
    pub offset: Bytes,
    /// Object length.
    pub size: Bytes,
}

impl Extent {
    /// Offset one past the object's last byte.
    pub fn end(&self) -> Bytes {
        self.offset + self.size
    }
}

/// The physical content of one cartridge.
///
/// Extents are stored in increasing-offset order; [`TapeLayout::append`]
/// writes at the current end of data, which is how placement schemes build
/// tapes (they decide an *order* and then stream objects out).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TapeLayout {
    extents: Vec<Extent>,
    used: Bytes,
}

impl TapeLayout {
    /// An empty (blank) tape.
    pub fn new() -> TapeLayout {
        TapeLayout::default()
    }

    /// Appends `object` of `size` at the current end of data; returns its
    /// extent.
    pub fn append(&mut self, object: ObjectId, size: Bytes) -> Extent {
        let extent = Extent {
            object,
            offset: self.used,
            size,
        };
        self.used += size;
        self.extents.push(extent);
        extent
    }

    /// Bytes written so far.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Whether the tape is blank.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The stored extents in increasing-offset order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Finds the extent of `object`, if stored on this tape.
    pub fn find(&self, object: ObjectId) -> Option<Extent> {
        self.extents.iter().copied().find(|e| e.object == object)
    }

    /// Checks structural invariants: offsets strictly increasing and
    /// contiguous with sizes, and total within `spec.capacity`.
    pub fn validate(&self, spec: &TapeSpec) -> Result<(), LayoutError> {
        let mut cursor = Bytes::ZERO;
        for e in &self.extents {
            if e.offset != cursor {
                return Err(LayoutError::Gap {
                    object: e.object,
                    expected: cursor,
                    found: e.offset,
                });
            }
            cursor = e.end();
        }
        if cursor > spec.capacity {
            return Err(LayoutError::OverCapacity {
                used: cursor,
                capacity: spec.capacity,
            });
        }
        if cursor != self.used {
            return Err(LayoutError::Accounting {
                tracked: self.used,
                actual: cursor,
            });
        }
        Ok(())
    }
}

/// Violations reported by [`TapeLayout::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Extents are not contiguous (placement must stream objects back to
    /// back; gaps would silently inflate seek distances).
    Gap {
        /// Object found after the gap.
        object: ObjectId,
        /// Where the object should start.
        expected: Bytes,
        /// Where it actually starts.
        found: Bytes,
    },
    /// More data than the cartridge holds.
    OverCapacity {
        /// Total bytes laid out.
        used: Bytes,
        /// Cartridge capacity.
        capacity: Bytes,
    },
    /// Internal accounting mismatch.
    Accounting {
        /// The `used` counter.
        tracked: Bytes,
        /// Sum of extent sizes.
        actual: Bytes,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Gap {
                object,
                expected,
                found,
            } => write!(
                f,
                "gap before {object}: expected offset {expected}, found {found}"
            ),
            LayoutError::OverCapacity { used, capacity } => {
                write!(f, "layout uses {used} of a {capacity} cartridge")
            }
            LayoutError::Accounting { tracked, actual } => {
                write!(f, "used counter {tracked} != extent sum {actual}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TapeSpec {
        TapeSpec::with_capacity(Bytes::gb(400))
    }

    #[test]
    fn append_is_contiguous() {
        let mut t = TapeLayout::new();
        let a = t.append(ObjectId(1), Bytes::gb(2));
        let b = t.append(ObjectId(2), Bytes::gb(3));
        assert_eq!(a.offset, Bytes::ZERO);
        assert_eq!(b.offset, Bytes::gb(2));
        assert_eq!(t.used(), Bytes::gb(5));
        assert_eq!(t.len(), 2);
        t.validate(&spec()).unwrap();
    }

    #[test]
    fn find_locates_objects() {
        let mut t = TapeLayout::new();
        t.append(ObjectId(7), Bytes::gb(1));
        t.append(ObjectId(9), Bytes::gb(1));
        assert_eq!(t.find(ObjectId(9)).unwrap().offset, Bytes::gb(1));
        assert!(t.find(ObjectId(8)).is_none());
    }

    #[test]
    fn validate_rejects_overflow() {
        let mut t = TapeLayout::new();
        t.append(ObjectId(1), Bytes::gb(500));
        let err = t.validate(&spec()).unwrap_err();
        assert!(matches!(err, LayoutError::OverCapacity { .. }));
        assert!(format!("{err}").contains("400.00 GB"));
    }

    #[test]
    fn empty_tape_is_valid() {
        let t = TapeLayout::new();
        assert!(t.is_empty());
        t.validate(&spec()).unwrap();
    }
}
