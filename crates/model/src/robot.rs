//! The robot arm model.
//!
//! Each library has exactly one robot (the paper's key serialisation
//! constraint): all cartridge movement between storage cells and drive bays
//! within a library goes through it, one operation at a time. Across
//! libraries, robots work independently.
//!
//! The paper models robot operations as constants for a given library
//! (Table 1: 7.6 s average cell↔drive move). A complete exchange at a drive
//! decomposes into an *eject phase* (take the unloaded cartridge, return it
//! to its cell) and an *inject phase* (fetch the new cartridge, insert it in
//! the bay); the load/thread and unload times themselves belong to the drive.

use serde::{Deserialize, Serialize};

/// Static timing of a library's robot arm(s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobotSpec {
    /// Average storage-cell ↔ drive-bay move time, seconds.
    pub cell_to_drive_time: f64,
    /// Number of independent arms in the library. The paper's L80 has one
    /// (its key serialisation constraint); larger silos ship with two —
    /// the `ext_robots` experiment measures what a second arm buys.
    #[serde(default = "default_arms")]
    pub arms: u8,
}

fn default_arms() -> u8 {
    1
}

impl RobotSpec {
    /// Robot time to take an ejected cartridge from a drive back to its cell.
    #[inline]
    pub fn eject_handling_time(&self) -> f64 {
        self.cell_to_drive_time
    }

    /// Robot time to fetch a cartridge from its cell and insert it at a
    /// drive.
    #[inline]
    pub fn inject_handling_time(&self) -> f64 {
        self.cell_to_drive_time
    }

    /// Total robot occupation for one full exchange (eject + inject); the
    /// drive's own unload/load times are *not* included.
    #[inline]
    pub fn exchange_handling_time(&self) -> f64 {
        self.eject_handling_time() + self.inject_handling_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_is_eject_plus_inject() {
        let r = RobotSpec {
            cell_to_drive_time: 7.6,
            arms: 1,
        };
        assert!((r.eject_handling_time() - 7.6).abs() < 1e-12);
        assert!((r.inject_handling_time() - 7.6).abs() < 1e-12);
        assert!((r.exchange_handling_time() - 15.2).abs() < 1e-12);
    }
}
