//! # tapesim-model
//!
//! Physical models of the hardware a parallel tape storage system is built
//! from: tape cartridges, tape drives, robot arms and tape libraries, plus
//! named specification presets matching the hardware the ICPP 2006 paper
//! simulates (IBM LTO Gen 3 drives in StorageTek L80 libraries, Table 1).
//!
//! The models are *kinematic*, not mechanical: each component answers "how
//! long does operation X take from state S" using the same cost models the
//! paper uses —
//!
//! * constant robot cell↔drive move time,
//! * constant load/thread and unload times,
//! * a **linear positioning model** (Johnson & Miller, VLDB'98) for seeks and
//!   rewinds: head travel time is proportional to travelled tape length,
//! * streaming transfer at the drive's native rate once positioned.
//!
//! Nothing in this crate schedules anything; the simulator crate composes
//! these costs into an event-driven simulation.

pub mod drive;
pub mod ids;
pub mod library;
pub mod robot;
pub mod specs;
pub mod tape;
pub mod units;

pub use drive::{DriveSpec, DriveState};
pub use ids::{DriveId, LibraryId, ObjectId, TapeId};
pub use library::{LibrarySpec, SystemConfig};
pub use robot::RobotSpec;
pub use tape::{TapeLayout, TapeSpec};
pub use units::{Bytes, BytesPerSec};
