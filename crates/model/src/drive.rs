//! The tape drive model.
//!
//! A drive is a state machine: empty, or loaded with a cartridge whose head
//! sits at a byte position. Operations return their duration in seconds and
//! advance the state, using the paper's cost models:
//!
//! * **Linear positioning** (Johnson & Miller VLDB'98): moving the head over
//!   `d` bytes of a `C`-byte tape takes `d / C × full_pass_time`. The same
//!   model gives rewind time (`position / C × full_pass_time`), which
//!   reproduces Table 1's 98 s maximum / 49 s average rewind.
//! * **Streaming transfer**: once positioned at an object's first byte the
//!   drive reads at its native rate.
//! * Constant **load/thread** and **unload** times.

use crate::ids::TapeId;
use crate::tape::Extent;
use crate::units::{Bytes, BytesPerSec};
use serde::{Deserialize, Serialize};

/// Static performance properties of a drive model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriveSpec {
    /// Native (uncompressed) streaming transfer rate.
    pub native_rate: BytesPerSec,
    /// "Load and thread to ready" time, seconds.
    pub load_time: f64,
    /// Unload time, seconds.
    pub unload_time: f64,
    /// Time for a full end-to-end tape pass (equals the maximum rewind
    /// time), seconds. Positioning any distance scales linearly from this.
    pub full_pass_time: f64,
}

impl DriveSpec {
    /// Transfer time for `size` at the native rate.
    #[inline]
    pub fn transfer_time(&self, size: Bytes) -> f64 {
        self.native_rate.time_for(size)
    }

    /// Head travel time between two byte positions on a tape of
    /// `capacity` bytes (linear positioning model).
    #[inline]
    pub fn position_time(&self, from: Bytes, to: Bytes, capacity: Bytes) -> f64 {
        debug_assert!(capacity > Bytes::ZERO);
        from.distance(to).get() as f64 / capacity.get() as f64 * self.full_pass_time
    }

    /// Rewind time from `position` back to the load point.
    #[inline]
    pub fn rewind_time(&self, position: Bytes, capacity: Bytes) -> f64 {
        self.position_time(position, Bytes::ZERO, capacity)
    }
}

/// Dynamic state of one drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DriveState {
    /// No cartridge loaded.
    #[default]
    Empty,
    /// A cartridge is loaded with the head at `head`.
    Loaded {
        /// The mounted cartridge.
        tape: TapeId,
        /// Head position, bytes from the load point.
        head: Bytes,
    },
}

impl DriveState {
    /// The mounted tape, if any.
    pub fn mounted(&self) -> Option<TapeId> {
        match self {
            DriveState::Empty => None,
            DriveState::Loaded { tape, .. } => Some(*tape),
        }
    }

    /// Head position.
    ///
    /// # Panics
    ///
    /// Panics if no cartridge is loaded.
    pub fn head(&self) -> Bytes {
        match self {
            DriveState::Empty => panic!("drive is empty"),
            DriveState::Loaded { head, .. } => *head,
        }
    }

    /// Loads `tape`; the head starts at the load point. Returns the load
    /// duration.
    ///
    /// # Panics
    ///
    /// Panics if a cartridge is already loaded.
    pub fn load(&mut self, tape: TapeId, spec: &DriveSpec) -> f64 {
        assert!(
            matches!(self, DriveState::Empty),
            "cannot load {tape}: drive already has {:?}",
            self.mounted()
        );
        *self = DriveState::Loaded {
            tape,
            head: Bytes::ZERO,
        };
        spec.load_time
    }

    /// Rewinds to the load point and unloads. Returns
    /// `(rewind_secs, unload_secs)`.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn rewind_and_unload(&mut self, spec: &DriveSpec, capacity: Bytes) -> (f64, f64) {
        let DriveState::Loaded { head, .. } = *self else {
            panic!("cannot unload an empty drive");
        };
        let rewind = spec.rewind_time(head, capacity);
        *self = DriveState::Empty;
        (rewind, spec.unload_time)
    }

    /// Seeks to `offset` on the mounted tape. Returns the seek duration.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn seek_to(&mut self, offset: Bytes, spec: &DriveSpec, capacity: Bytes) -> f64 {
        let DriveState::Loaded { head, .. } = self else {
            panic!("cannot seek an empty drive");
        };
        let t = spec.position_time(*head, offset, capacity);
        *head = offset;
        t
    }

    /// Streams `extent` (head must already be at its first byte); the head
    /// ends one past the extent. Returns the transfer duration.
    ///
    /// # Panics
    ///
    /// Panics if empty or mispositioned.
    pub fn read(&mut self, extent: Extent, spec: &DriveSpec) -> f64 {
        let DriveState::Loaded { head, .. } = self else {
            panic!("cannot read from an empty drive");
        };
        assert_eq!(
            *head, extent.offset,
            "read requires the head at the extent start"
        );
        *head = extent.end();
        spec.transfer_time(extent.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LibraryId, ObjectId};

    fn spec() -> DriveSpec {
        DriveSpec {
            native_rate: BytesPerSec::mb_per_sec(80.0),
            load_time: 19.0,
            unload_time: 19.0,
            full_pass_time: 98.0,
        }
    }

    const CAP: Bytes = Bytes::gb(400);

    fn tape() -> TapeId {
        TapeId::new(LibraryId(0), 0)
    }

    #[test]
    fn linear_positioning_model() {
        let s = spec();
        // Full pass = 98 s.
        assert!((s.position_time(Bytes::ZERO, CAP, CAP) - 98.0).abs() < 1e-9);
        // Half pass = 49 s (Table 1's average rewind).
        assert!((s.rewind_time(Bytes::gb(200), CAP) - 49.0).abs() < 1e-9);
        // Symmetric.
        assert_eq!(
            s.position_time(Bytes::gb(10), Bytes::gb(60), CAP),
            s.position_time(Bytes::gb(60), Bytes::gb(10), CAP)
        );
    }

    #[test]
    fn load_seek_read_cycle() {
        let s = spec();
        let mut d = DriveState::Empty;
        assert_eq!(d.mounted(), None);

        let load = d.load(tape(), &s);
        assert_eq!(load, 19.0);
        assert_eq!(d.head(), Bytes::ZERO);

        let seek = d.seek_to(Bytes::gb(100), &s, CAP);
        assert!((seek - 24.5).abs() < 1e-9, "quarter pass");

        let extent = Extent {
            object: ObjectId(3),
            offset: Bytes::gb(100),
            size: Bytes::gb(8),
        };
        let read = d.read(extent, &s);
        assert!((read - 100.0).abs() < 1e-9, "8 GB at 80 MB/s");
        assert_eq!(d.head(), Bytes::gb(108), "head rests after the object");

        let (rewind, unload) = d.rewind_and_unload(&s, CAP);
        assert!((rewind - 108.0 / 400.0 * 98.0).abs() < 1e-9);
        assert_eq!(unload, 19.0);
        assert_eq!(d, DriveState::Empty);
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn double_load_panics() {
        let s = spec();
        let mut d = DriveState::Empty;
        d.load(tape(), &s);
        d.load(tape(), &s);
    }

    #[test]
    #[should_panic(expected = "head at the extent start")]
    fn read_requires_position() {
        let s = spec();
        let mut d = DriveState::Empty;
        d.load(tape(), &s);
        d.read(
            Extent {
                object: ObjectId(0),
                offset: Bytes::gb(5),
                size: Bytes::gb(1),
            },
            &s,
        );
    }

    #[test]
    #[should_panic(expected = "empty drive")]
    fn unload_empty_panics() {
        let mut d = DriveState::Empty;
        d.rewind_and_unload(&spec(), CAP);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> DriveSpec {
        DriveSpec {
            native_rate: BytesPerSec::mb_per_sec(80.0),
            load_time: 19.0,
            unload_time: 19.0,
            full_pass_time: 98.0,
        }
    }

    proptest! {
        /// The linear positioning model is symmetric, satisfies the
        /// triangle equality along a line, and never exceeds a full pass.
        #[test]
        fn positioning_is_linear(a in 0u64..400, b in 0u64..400, c in 0u64..400) {
            let s = spec();
            let cap = Bytes::gb(400);
            let (a, b, c) = (Bytes::gb(a), Bytes::gb(b), Bytes::gb(c));
            let t_ab = s.position_time(a, b, cap);
            prop_assert!((t_ab - s.position_time(b, a, cap)).abs() < 1e-12);
            prop_assert!(t_ab <= s.full_pass_time + 1e-12);
            // Monotone path: going a→b→c costs at least a→c.
            prop_assert!(
                s.position_time(a, b, cap) + s.position_time(b, c, cap)
                    >= s.position_time(a, c, cap) - 1e-9
            );
        }

        /// A load/seek/read/rewind/unload cycle keeps the state machine
        /// coherent for any extent on the tape.
        #[test]
        fn drive_cycle_is_coherent(offset in 0u64..390, size in 1u64..10) {
            let s = spec();
            let cap = Bytes::gb(400);
            let tape = TapeId::new(tapesim_model_test_lib(), 3);
            let mut d = DriveState::Empty;
            d.load(tape, &s);
            let seek = d.seek_to(Bytes::gb(offset), &s, cap);
            prop_assert!(seek >= 0.0 && seek <= s.full_pass_time);
            let e = Extent {
                object: crate::ids::ObjectId(1),
                offset: Bytes::gb(offset),
                size: Bytes::gb(size),
            };
            let read = d.read(e, &s);
            prop_assert!((read - size as f64 * 12.5).abs() < 1e-6, "1 GB = 12.5 s at 80 MB/s");
            prop_assert_eq!(d.head(), e.end());
            let (rewind, unload) = d.rewind_and_unload(&s, cap);
            prop_assert!((rewind - (offset + size) as f64 / 400.0 * 98.0).abs() < 1e-9);
            prop_assert_eq!(unload, 19.0);
            prop_assert_eq!(d, DriveState::Empty);
        }
    }

    fn tapesim_model_test_lib() -> crate::ids::LibraryId {
        crate::ids::LibraryId(0)
    }
}
