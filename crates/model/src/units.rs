//! Storage units.
//!
//! [`Bytes`] is a `u64` newtype for data sizes and on-tape positions;
//! [`BytesPerSec`] a rate. The paper quotes decimal units (400 GB tapes,
//! 80 MB/s native rate), so the constructors here use powers of ten.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A size or on-tape position in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// `n` kilobytes (10^3).
    pub const fn kb(n: u64) -> Bytes {
        Bytes(n * 1_000)
    }

    /// `n` megabytes (10^6).
    pub const fn mb(n: u64) -> Bytes {
        Bytes(n * 1_000_000)
    }

    /// `n` gigabytes (10^9).
    pub const fn gb(n: u64) -> Bytes {
        Bytes(n * 1_000_000_000)
    }

    /// `n` terabytes (10^12).
    pub const fn tb(n: u64) -> Bytes {
        Bytes(n * 1_000_000_000_000)
    }

    /// Raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Value in (decimal) gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in (decimal) megabytes.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Absolute distance between two positions.
    pub fn distance(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.abs_diff(rhs.0))
    }

    /// Multiplies the size by a non-negative scale factor, rounding to the
    /// nearest byte. Used by experiment sweeps that scale object sizes.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_sub(rhs.0).expect("Bytes underflow"))
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e12 {
            write!(f, "{:.2} TB", b / 1e12)
        } else if b >= 1e9 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} KB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BytesPerSec(pub f64);

impl BytesPerSec {
    /// `n` megabytes per second (10^6).
    pub fn mb_per_sec(n: f64) -> BytesPerSec {
        assert!(n.is_finite() && n > 0.0, "rate must be positive");
        BytesPerSec(n * 1e6)
    }

    /// Raw bytes per second.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Seconds needed to move `size` at this rate.
    pub fn time_for(self, size: Bytes) -> f64 {
        size.0 as f64 / self.0
    }

    /// Scales the rate (used by technology-improvement sweeps).
    pub fn scale(self, factor: f64) -> BytesPerSec {
        assert!(factor.is_finite() && factor > 0.0);
        BytesPerSec(self.0 * factor)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MB/s", self.0 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bytes::kb(2).get(), 2_000);
        assert_eq!(Bytes::mb(3).get(), 3_000_000);
        assert_eq!(Bytes::gb(4).get(), 4_000_000_000);
        assert_eq!(Bytes::tb(1).get(), 1_000_000_000_000);
    }

    #[test]
    fn arithmetic_and_distance() {
        let a = Bytes::gb(3);
        let b = Bytes::gb(1);
        assert_eq!(a + b, Bytes::gb(4));
        assert_eq!(a - b, Bytes::gb(2));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.distance(b), Bytes::gb(2));
        assert_eq!(b.distance(a), Bytes::gb(2));
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::gb(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Bytes::gb(1) - Bytes::gb(2);
    }

    #[test]
    fn scaling() {
        assert_eq!(Bytes::gb(4).scale(0.5), Bytes::gb(2));
        assert_eq!(Bytes(3).scale(1.5), Bytes(5), "rounds to nearest");
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Bytes(512)), "512 B");
        assert_eq!(format!("{}", Bytes::kb(2)), "2.00 KB");
        assert_eq!(format!("{}", Bytes::gb(400)), "400.00 GB");
        assert_eq!(format!("{}", Bytes::tb(96)), "96.00 TB");
    }

    #[test]
    fn rate_timing() {
        let r = BytesPerSec::mb_per_sec(80.0);
        // 80 MB at 80 MB/s = 1 second.
        assert!((r.time_for(Bytes::mb(80)) - 1.0).abs() < 1e-12);
        // 400 GB at 80 MB/s = 5000 seconds.
        assert!((r.time_for(Bytes::gb(400)) - 5000.0).abs() < 1e-9);
        assert!((r.scale(2.0).time_for(Bytes::gb(400)) - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn as_unit_views() {
        assert!((Bytes::gb(400).as_gb() - 400.0).abs() < 1e-12);
        assert!((Bytes::mb(5).as_mb() - 5.0).abs() < 1e-12);
    }
}
