//! Library and whole-system configuration.
//!
//! A [`LibrarySpec`] bundles the per-library hardware (drives, tapes, robot);
//! a [`SystemConfig`] is `n` identical libraries — the "parallel tape storage
//! system" of the paper (Figure 1). Helper iterators enumerate all drives
//! and tapes in a fixed, deterministic order.

use crate::drive::DriveSpec;
use crate::ids::{DriveId, LibraryId, TapeId};
use crate::robot::RobotSpec;
use crate::tape::TapeSpec;
use crate::units::Bytes;
use serde::{Deserialize, Serialize};

/// Hardware of one tape library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibrarySpec {
    /// Number of drive bays (`d` in the paper).
    pub drives: u8,
    /// Number of cartridge storage cells (`t` in the paper, `d ≪ t`).
    pub tapes: u16,
    /// Drive model installed in every bay.
    pub drive: DriveSpec,
    /// Cartridge model in every cell.
    pub tape: TapeSpec,
    /// The robot arm.
    pub robot: RobotSpec,
}

impl LibrarySpec {
    /// Total native capacity of all cartridges in this library.
    pub fn capacity(&self) -> Bytes {
        Bytes(self.tape.capacity.get() * self.tapes as u64)
    }

    /// Validates the paper's structural assumptions.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.drives == 0 {
            return Err(ConfigError::NoDrives);
        }
        if self.tapes == 0 {
            return Err(ConfigError::NoTapes);
        }
        if (self.tapes as u32) < self.drives as u32 {
            return Err(ConfigError::FewerTapesThanDrives {
                tapes: self.tapes,
                drives: self.drives,
            });
        }
        if self.robot.arms == 0 {
            // `RobotSpec { arms: 0 }` deserializes fine but would wedge
            // the first exchange forever; reject it up front.
            return Err(ConfigError::NoRobotArms);
        }
        Ok(())
    }
}

/// The whole parallel tape storage system: `n` identical libraries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of libraries (`n` in the paper).
    pub libraries: u16,
    /// The per-library hardware (identical across libraries).
    pub library: LibrarySpec,
}

impl SystemConfig {
    /// Creates and validates a configuration.
    pub fn new(libraries: u16, library: LibrarySpec) -> Result<SystemConfig, ConfigError> {
        if libraries == 0 {
            return Err(ConfigError::NoLibraries);
        }
        library.validate()?;
        Ok(SystemConfig { libraries, library })
    }

    /// Total number of drives across the system (`n × d`).
    pub fn total_drives(&self) -> usize {
        self.libraries as usize * self.library.drives as usize
    }

    /// Total number of tapes across the system (`n × t`).
    pub fn total_tapes(&self) -> usize {
        self.libraries as usize * self.library.tapes as usize
    }

    /// Total native capacity of the system.
    pub fn total_capacity(&self) -> Bytes {
        Bytes(self.library.capacity().get() * self.libraries as u64)
    }

    /// All library ids, in order.
    pub fn library_ids(&self) -> impl Iterator<Item = LibraryId> {
        (0..self.libraries).map(LibraryId)
    }

    /// All drive ids, grouped by library then bay.
    pub fn drive_ids(&self) -> impl Iterator<Item = DriveId> + '_ {
        self.library_ids()
            .flat_map(move |lib| (0..self.library.drives).map(move |bay| DriveId::new(lib, bay)))
    }

    /// All tape ids, grouped by library then slot.
    pub fn tape_ids(&self) -> impl Iterator<Item = TapeId> + '_ {
        self.library_ids()
            .flat_map(move |lib| (0..self.library.tapes).map(move |slot| TapeId::new(lib, slot)))
    }

    /// Dense 0-based index of a tape across the whole system
    /// (library-major), for flat arrays keyed by tape.
    pub fn tape_index(&self, tape: TapeId) -> usize {
        tape.library.idx() * self.library.tapes as usize + tape.slot as usize
    }

    /// Dense 0-based index of a drive across the whole system.
    pub fn drive_index(&self, drive: DriveId) -> usize {
        drive.library.idx() * self.library.drives as usize + drive.bay as usize
    }
}

/// Configuration validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A system needs at least one library.
    NoLibraries,
    /// A library needs at least one drive.
    NoDrives,
    /// A library needs at least one tape.
    NoTapes,
    /// The paper assumes `d ≤ t` (in fact `d ≪ t`).
    FewerTapesThanDrives {
        /// Configured tape count.
        tapes: u16,
        /// Configured drive count.
        drives: u8,
    },
    /// A robot with zero arms can never perform an exchange.
    NoRobotArms,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoLibraries => write!(f, "at least one library is required"),
            ConfigError::NoDrives => write!(f, "at least one drive per library is required"),
            ConfigError::NoTapes => write!(f, "at least one tape per library is required"),
            ConfigError::FewerTapesThanDrives { tapes, drives } => {
                write!(f, "{tapes} tapes cannot feed {drives} drives (need t >= d)")
            }
            ConfigError::NoRobotArms => {
                write!(f, "the robot needs at least one arm to exchange tapes")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::BytesPerSec;

    fn lib_spec() -> LibrarySpec {
        LibrarySpec {
            drives: 8,
            tapes: 80,
            drive: DriveSpec {
                native_rate: BytesPerSec::mb_per_sec(80.0),
                load_time: 19.0,
                unload_time: 19.0,
                full_pass_time: 98.0,
            },
            tape: TapeSpec::with_capacity(Bytes::gb(400)),
            robot: RobotSpec {
                cell_to_drive_time: 7.6,
                arms: 1,
            },
        }
    }

    #[test]
    fn capacities() {
        let sys = SystemConfig::new(3, lib_spec()).unwrap();
        assert_eq!(sys.library.capacity(), Bytes::tb(32));
        assert_eq!(sys.total_capacity(), Bytes::tb(96));
        assert_eq!(sys.total_drives(), 24);
        assert_eq!(sys.total_tapes(), 240);
    }

    #[test]
    fn id_enumeration_is_dense_and_ordered() {
        let sys = SystemConfig::new(2, lib_spec()).unwrap();
        let drives: Vec<_> = sys.drive_ids().collect();
        assert_eq!(drives.len(), 16);
        assert_eq!(drives[0], DriveId::new(LibraryId(0), 0));
        assert_eq!(drives[8], DriveId::new(LibraryId(1), 0));
        for (i, d) in drives.iter().enumerate() {
            assert_eq!(sys.drive_index(*d), i);
        }
        let tapes: Vec<_> = sys.tape_ids().collect();
        assert_eq!(tapes.len(), 160);
        for (i, t) in tapes.iter().enumerate() {
            assert_eq!(sys.tape_index(*t), i);
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            SystemConfig::new(0, lib_spec()).unwrap_err(),
            ConfigError::NoLibraries
        );
        let mut bad = lib_spec();
        bad.drives = 0;
        assert_eq!(
            SystemConfig::new(1, bad).unwrap_err(),
            ConfigError::NoDrives
        );
        let mut bad = lib_spec();
        bad.tapes = 4;
        assert!(matches!(
            SystemConfig::new(1, bad).unwrap_err(),
            ConfigError::FewerTapesThanDrives {
                tapes: 4,
                drives: 8
            }
        ));
        let mut bad = lib_spec();
        bad.tapes = 0;
        assert_eq!(SystemConfig::new(1, bad).unwrap_err(), ConfigError::NoTapes);
    }

    #[test]
    fn zero_arm_robot_is_rejected() {
        let mut bad = lib_spec();
        bad.robot.arms = 0;
        assert_eq!(
            SystemConfig::new(1, bad).unwrap_err(),
            ConfigError::NoRobotArms
        );
        assert_eq!(bad.validate().unwrap_err(), ConfigError::NoRobotArms);
        assert!(
            ConfigError::NoRobotArms.to_string().contains("arm"),
            "error message should name the arm"
        );
    }
}
