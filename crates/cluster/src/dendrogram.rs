//! Single-linkage hierarchical clustering.
//!
//! Built with Kruskal's algorithm over edges sorted by descending
//! similarity: every successful union records a merge node, giving the
//! single-linkage dendrogram of the co-access graph in O(E log E).
//!
//! Because Kruskal consumes edges in non-increasing weight order, merge
//! weights along any root path are non-increasing — a *threshold cut* is a
//! prefix of the merge list, and every subtree of a qualifying merge also
//! qualifies. [`Dendrogram::cut_with_caps`] exploits the tree structure for
//! the paper's §5.1 size rule: an oversized cluster is split at its weakest
//! merge (the subtree root), recursively, which severs the least-similar
//! boundary first.

use crate::similarity::CoAccessGraph;
use crate::unionfind::UnionFind;
use tapesim_model::{Bytes, ObjectId};

/// One agglomeration step. Node ids `< n_leaves` are objects; node id
/// `n_leaves + i` is `merges[i]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child node.
    pub left: usize,
    /// Second child node.
    pub right: usize,
    /// Similarity at which the children merged.
    pub weight: f64,
}

/// A single-linkage dendrogram (in general a forest: objects that never
/// co-occur stay unconnected).
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the dendrogram of `graph` by Kruskal's algorithm.
    pub fn single_linkage(graph: &CoAccessGraph) -> Dendrogram {
        let n = graph.n_objects();
        let mut uf = UnionFind::new(n);
        // Current tree node representing each DSU root.
        let mut node_of: Vec<usize> = (0..n).collect();
        let mut merges = Vec::new();
        for (a, b, w) in graph.edges_by_weight_desc() {
            let (ra, rb) = (uf.find(a.idx()), uf.find(b.idx()));
            if ra == rb {
                continue;
            }
            let new_node = n + merges.len();
            merges.push(Merge {
                left: node_of[ra],
                right: node_of[rb],
                weight: w,
            });
            uf.union(ra, rb);
            let root = uf.find(ra);
            node_of[root] = new_node;
        }
        Dendrogram {
            n_leaves: n,
            merges,
        }
    }

    /// Number of leaf objects.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge steps, in the order they occurred (non-increasing weight).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// All leaf objects under `node`, ascending.
    pub fn leaves_of(&self, node: usize) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if n < self.n_leaves {
                out.push(ObjectId(n as u32));
            } else {
                let m = self.merges[n - self.n_leaves];
                stack.push(m.left);
                stack.push(m.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Flat clusters at similarity `threshold`: objects joined by merges of
    /// weight ≥ `threshold`. Singletons included; the result partitions the
    /// population. Clusters ordered by smallest member.
    pub fn cut(&self, threshold: f64) -> Vec<Vec<ObjectId>> {
        let mut uf = UnionFind::new(self.n_leaves);
        // Merge weights are non-increasing, so qualifying merges are a
        // prefix — but walk the whole list to stay robust to exact ties.
        for m in &self.merges {
            if m.weight >= threshold {
                let la = self.any_leaf(m.left);
                let lb = self.any_leaf(m.right);
                uf.union(la, lb);
            }
        }
        uf.groups()
            .into_iter()
            .map(|g| g.into_iter().map(|x| ObjectId(x as u32)).collect())
            .collect()
    }

    /// Like [`Dendrogram::cut`], but recursively splits any cluster larger
    /// than `max_objects` members or `max_bytes` total size at its weakest
    /// merge. A single leaf larger than `max_bytes` is kept as a singleton.
    pub fn cut_with_caps(
        &self,
        threshold: f64,
        max_objects: usize,
        max_bytes: Bytes,
        size_of: &dyn Fn(ObjectId) -> Bytes,
    ) -> Vec<Vec<ObjectId>> {
        assert!(max_objects >= 1, "cap must allow at least one object");
        // Roots of the cut forest: qualifying merge nodes that are not a
        // child of another qualifying merge, plus leaves never merged at or
        // above the threshold.
        let qualifies: Vec<bool> = self.merges.iter().map(|m| m.weight >= threshold).collect();
        let mut is_child = vec![false; self.n_leaves + self.merges.len()];
        for (i, m) in self.merges.iter().enumerate() {
            if qualifies[i] {
                is_child[m.left] = true;
                is_child[m.right] = true;
            }
        }
        let mut out = Vec::new();
        // Leaf roots (never merged above threshold).
        for (leaf, _) in is_child
            .iter()
            .enumerate()
            .take(self.n_leaves)
            .filter(|(_, &c)| !c)
        {
            out.push(vec![ObjectId(leaf as u32)]);
        }
        // Merge-node roots, split to caps.
        for (i, _) in self
            .merges
            .iter()
            .enumerate()
            .filter(|(i, _)| qualifies[*i])
        {
            let node = self.n_leaves + i;
            if !is_child[node] {
                self.split_node(node, max_objects, max_bytes, size_of, &mut out);
            }
        }
        out.sort_by_key(|c| c[0]);
        out
    }

    fn split_node(
        &self,
        node: usize,
        max_objects: usize,
        max_bytes: Bytes,
        size_of: &dyn Fn(ObjectId) -> Bytes,
        out: &mut Vec<Vec<ObjectId>>,
    ) {
        if node < self.n_leaves {
            out.push(vec![ObjectId(node as u32)]);
            return;
        }
        let leaves = self.leaves_of(node);
        let total: Bytes = leaves.iter().map(|&o| size_of(o)).sum();
        if leaves.len() <= max_objects && total <= max_bytes {
            out.push(leaves);
            return;
        }
        let m = self.merges[node - self.n_leaves];
        self.split_node(m.left, max_objects, max_bytes, size_of, out);
        self.split_node(m.right, max_objects, max_bytes, size_of, out);
    }

    /// Any one leaf under `node` (the leftmost), used to address DSU sets.
    fn any_leaf(&self, mut node: usize) -> usize {
        while node >= self.n_leaves {
            node = self.merges[node - self.n_leaves].left;
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::ObjectId;
    use tapesim_workload::Request;

    fn graph(n: usize, reqs: &[(f64, &[u32])]) -> CoAccessGraph {
        let requests: Vec<Request> = reqs
            .iter()
            .enumerate()
            .map(|(rank, (p, objs))| Request {
                rank: rank as u32,
                probability: *p,
                objects: objs.iter().map(|&o| ObjectId(o)).collect(),
            })
            .collect();
        CoAccessGraph::from_requests(n, &requests)
    }

    #[test]
    fn merge_weights_are_non_increasing() {
        let g = graph(
            8,
            &[(0.5, &[0, 1, 2]), (0.3, &[2, 3]), (0.2, &[4, 5, 6, 7])],
        );
        let d = Dendrogram::single_linkage(&g);
        for pair in d.merges().windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn cut_recovers_components() {
        let g = graph(6, &[(0.6, &[0, 1]), (0.4, &[2, 3, 4])]);
        let d = Dendrogram::single_linkage(&g);
        let at_half = d.cut(0.5);
        assert!(at_half.contains(&vec![ObjectId(0), ObjectId(1)]));
        assert!(at_half.contains(&vec![ObjectId(2)]), "0.4-edges cut away");
        let at_low = d.cut(0.1);
        assert!(at_low.contains(&vec![ObjectId(2), ObjectId(3), ObjectId(4)]));
        // Partition property.
        let count: usize = at_low.iter().map(|c| c.len()).sum();
        assert_eq!(count, 6);
    }

    #[test]
    fn cut_with_caps_splits_at_weakest_merge() {
        // Chain: {0,1} strong (0.9), {2,3} strong (0.8), bridged weakly (0.5).
        let g = graph(4, &[(0.9, &[0, 1]), (0.8, &[2, 3]), (0.5, &[1, 2])]);
        let d = Dendrogram::single_linkage(&g);
        let whole = d.cut(0.4);
        assert_eq!(whole.len(), 1, "all four objects chain together");
        let capped = d.cut_with_caps(0.4, 2, Bytes(u64::MAX), &|_| Bytes::gb(1));
        assert_eq!(
            capped,
            vec![
                vec![ObjectId(0), ObjectId(1)],
                vec![ObjectId(2), ObjectId(3)]
            ],
            "split severs the weak bridge, not a strong pair"
        );
    }

    #[test]
    fn byte_cap_splits() {
        let g = graph(3, &[(0.9, &[0, 1, 2])]);
        let d = Dendrogram::single_linkage(&g);
        let capped = d.cut_with_caps(0.1, usize::MAX, Bytes::gb(2), &|_| Bytes::gb(1));
        for c in &capped {
            assert!(c.len() <= 2);
        }
        let total: usize = capped.iter().map(|c| c.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn oversize_single_leaf_stays_singleton() {
        let g = graph(2, &[(0.9, &[0, 1])]);
        let d = Dendrogram::single_linkage(&g);
        let capped = d.cut_with_caps(0.1, usize::MAX, Bytes::gb(1), &|_| Bytes::gb(5));
        assert_eq!(capped.len(), 2, "each oversized leaf alone");
    }

    #[test]
    fn leaves_of_collects_subtree() {
        let g = graph(4, &[(0.9, &[0, 1]), (0.5, &[1, 2])]);
        let d = Dendrogram::single_linkage(&g);
        let root = d.n_leaves() + d.merges().len() - 1;
        assert_eq!(
            d.leaves_of(root),
            vec![ObjectId(0), ObjectId(1), ObjectId(2)]
        );
        assert_eq!(d.leaves_of(3), vec![ObjectId(3)]);
    }
}
