//! Sparse average-linkage agglomerative clustering.
//!
//! Average linkage scores a cluster pair by the *mean* pairwise similarity
//! across the pair (absent pairs count as zero):
//! `score(A,B) = Σ_{a∈A,b∈B} w(a,b) / (|A|·|B|)`.
//!
//! This is the linkage the placement schemes use on the paper's workload:
//! requests share objects aggressively (two 125-object requests out of a
//! 30 000-object population overlap with probability ≈ ½), and single
//! linkage would chain the whole workload into one mega-cluster through
//! those shared objects. Average linkage dilutes one-object bridges by
//! `1/(|A|·|B|)` and keeps requests apart.
//!
//! ## Implementation
//!
//! Per live cluster: a sparse adjacency map of cross-cluster weight sums
//! (fast integer hashing). A lazy max-heap holds merge candidates with
//! per-cluster version stamps; merging is smaller-into-larger. Stale heap
//! entries are **revalidated at pop time** — the current score is
//! recomputed and re-pushed if still above threshold — so a merge only has
//! to push fresh candidates for the pairs whose weight sum actually
//! changed (the dropped side's neighbours). This keeps total work near
//! `O(E log E)`; the paper-scale graph (2.2 M edges, 30 k vertices)
//! clusters in well under a second.

use crate::similarity::CoAccessGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use tapesim_model::ObjectId;

/// Multiplicative hasher for small integer keys (FxHash-style); adjacency
/// maps are hot enough that SipHash shows up in profiles.
#[derive(Default)]
pub struct IntHasher(u64);

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys; not used on the hot path.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// `HashMap` keyed by small integers with [`IntHasher`].
pub type IntMap<V> = HashMap<usize, V, BuildHasherDefault<IntHasher>>;

#[derive(Debug)]
struct Candidate {
    score: f64,
    a: usize,
    b: usize,
    ver_a: u32,
    ver_b: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score; deterministic tie-break on indices (smaller
        // pair wins).
        self.score
            .partial_cmp(&other.score)
            .expect("scores are finite")
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Cluster {
    members: Vec<ObjectId>,
    /// Sum of cross-pair weights to each other live cluster.
    adj: IntMap<f64>,
    version: u32,
}

/// Flat average-linkage clusters of `graph` at similarity `threshold`.
///
/// Returns a partition of all objects (singletons included), clusters
/// ordered by smallest member, members ascending.
pub fn average_linkage_clusters(graph: &CoAccessGraph, threshold: f64) -> Vec<Vec<ObjectId>> {
    let n = graph.n_objects();
    let mut clusters: Vec<Option<Cluster>> = (0..n)
        .map(|i| {
            Some(Cluster {
                members: vec![ObjectId(i as u32)],
                adj: IntMap::default(),
                version: 0,
            })
        })
        .collect();

    let mut heap = BinaryHeap::new();
    for (a, b, w) in graph.edges_by_weight_desc() {
        let (ia, ib) = (a.idx(), b.idx());
        clusters[ia].as_mut().unwrap().adj.insert(ib, w);
        clusters[ib].as_mut().unwrap().adj.insert(ia, w);
        if w >= threshold {
            heap.push(Candidate {
                score: w,
                a: ia.min(ib),
                b: ia.max(ib),
                ver_a: 0,
                ver_b: 0,
            });
        }
    }

    while let Some(cand) = heap.pop() {
        if cand.score < threshold {
            break; // heap is score-ordered: nothing below can merge
        }
        let (Some(ca), Some(cb)) = (&clusters[cand.a], &clusters[cand.b]) else {
            continue; // one side already absorbed
        };
        if ca.version != cand.ver_a || cb.version != cand.ver_b {
            // Stale: revalidate with the live score (the sum may have
            // changed since this entry was pushed).
            if let Some(&sum) = ca.adj.get(&cand.b) {
                let score = sum / (ca.members.len() as f64 * cb.members.len() as f64);
                if score >= threshold {
                    heap.push(Candidate {
                        score,
                        a: cand.a,
                        b: cand.b,
                        ver_a: ca.version,
                        ver_b: cb.version,
                    });
                }
            }
            continue;
        }

        // Merge the smaller cluster into the larger one.
        let (keep, drop) = if ca.members.len() >= cb.members.len() {
            (cand.a, cand.b)
        } else {
            (cand.b, cand.a)
        };
        let dropped = clusters[drop].take().expect("live cluster");
        let kept = clusters[keep].as_mut().expect("live cluster");
        kept.members.extend(dropped.members);
        kept.version += 1;
        kept.adj.remove(&drop);
        let kept_version = kept.version;
        let kept_len = kept.members.len();

        // Fold the dropped side's adjacency into the kept side and push
        // fresh candidates for exactly the pairs whose sum changed. Pairs
        // adjacent only to `keep` are revalidated lazily at pop time.
        for (&other, &w) in dropped.adj.iter() {
            if other == keep {
                continue;
            }
            let kept = clusters[keep].as_mut().expect("live cluster");
            let sum = kept.adj.entry(other).or_insert(0.0);
            *sum += w;
            let sum = *sum;
            let oc = clusters[other].as_mut().expect("adjacent cluster is live");
            let from_drop = oc.adj.remove(&drop).unwrap_or(0.0);
            *oc.adj.entry(keep).or_insert(0.0) += from_drop;
            let score = sum / (kept_len as f64 * oc.members.len() as f64);
            if score >= threshold {
                let (a, b) = (keep.min(other), keep.max(other));
                let (ver_a, ver_b) = if a == keep {
                    (kept_version, oc.version)
                } else {
                    (oc.version, kept_version)
                };
                heap.push(Candidate {
                    score,
                    a,
                    b,
                    ver_a,
                    ver_b,
                });
            }
        }
    }

    let mut out: Vec<Vec<ObjectId>> = clusters
        .into_iter()
        .flatten()
        .map(|c| {
            let mut m = c.members;
            m.sort_unstable();
            m
        })
        .collect();
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_workload::Request;

    fn graph(n: usize, reqs: &[(f64, &[u32])]) -> CoAccessGraph {
        let requests: Vec<Request> = reqs
            .iter()
            .enumerate()
            .map(|(rank, (p, objs))| Request {
                rank: rank as u32,
                probability: *p,
                objects: objs.iter().map(|&o| ObjectId(o)).collect(),
            })
            .collect();
        CoAccessGraph::from_requests(n, &requests)
    }

    fn partition_size(cs: &[Vec<ObjectId>]) -> usize {
        cs.iter().map(|c| c.len()).sum()
    }

    #[test]
    fn disjoint_requests_cluster_separately() {
        let g = graph(8, &[(0.6, &[0, 1, 2]), (0.4, &[4, 5])]);
        let cs = average_linkage_clusters(&g, 0.1);
        assert!(cs.contains(&vec![ObjectId(0), ObjectId(1), ObjectId(2)]));
        assert!(cs.contains(&vec![ObjectId(4), ObjectId(5)]));
        assert_eq!(partition_size(&cs), 8);
    }

    #[test]
    fn threshold_blocks_weak_merges() {
        let g = graph(4, &[(0.9, &[0, 1]), (0.2, &[1, 2])]);
        let cs = average_linkage_clusters(&g, 0.5);
        assert!(cs.contains(&vec![ObjectId(0), ObjectId(1)]));
        assert!(cs.contains(&vec![ObjectId(2)]));
    }

    #[test]
    fn average_linkage_resists_chaining() {
        // A strong pair {0,1} and a strong pair {2,3} bridged by one weak
        // edge (1,2). Average linkage dilutes the bridge:
        // score({0,1},{2,3}) = 0.3/4 = 0.075 < threshold, while single
        // linkage at 0.25 would chain everything.
        let g = graph(4, &[(0.9, &[0, 1]), (0.9, &[2, 3]), (0.3, &[1, 2])]);
        let cs = average_linkage_clusters(&g, 0.25);
        assert!(cs.contains(&vec![ObjectId(0), ObjectId(1)]));
        assert!(cs.contains(&vec![ObjectId(2), ObjectId(3)]));

        let d = crate::Dendrogram::single_linkage(&g);
        let sl = d.cut(0.25);
        assert_eq!(sl.len(), 1, "single linkage chains the same graph");
    }

    #[test]
    fn shared_object_requests_stay_separate() {
        // Two 5-object requests sharing one object: the bridge dilutes to
        // well under either request's internal cohesion.
        let g = graph(9, &[(0.5, &[0, 1, 2, 3, 4]), (0.5, &[4, 5, 6, 7, 8])]);
        let cs = average_linkage_clusters(&g, 0.25);
        let big: Vec<_> = cs.iter().filter(|c| c.len() >= 4).collect();
        assert_eq!(big.len(), 2, "two request cores: {cs:?}");
        // The shared object 4 belongs to exactly one of them.
        assert_eq!(partition_size(&cs), 9);
    }

    #[test]
    fn rising_scores_are_not_lost_by_lazy_revalidation() {
        // (0,1) strong; 2 connects weakly to 0 and to 1 separately — the
        // pair score of ({0,1}, {2}) is (0.2+0.2)/2 = 0.2, above a 0.15
        // threshold even though each single edge diluted alone would be
        // 0.2/2 = 0.1 after the first merge… the sum must be combined.
        let g = graph(3, &[(0.9, &[0, 1]), (0.2, &[0, 2]), (0.2, &[1, 2])]);
        let cs = average_linkage_clusters(&g, 0.15);
        assert_eq!(cs.len(), 1, "all three merge: {cs:?}");
    }

    #[test]
    fn empty_graph_yields_singletons() {
        let g = graph(5, &[]);
        let cs = average_linkage_clusters(&g, 0.1);
        assert_eq!(cs.len(), 5);
        assert_eq!(partition_size(&cs), 5);
    }

    #[test]
    fn result_is_deterministic() {
        let g = graph(
            10,
            &[
                (0.5, &[0, 1, 2, 3]),
                (0.5, &[3, 4, 5]),
                (0.2, &[6, 7]),
                (0.2, &[8, 9]),
            ],
        );
        let a = average_linkage_clusters(&g, 0.15);
        let b = average_linkage_clusters(&g, 0.15);
        assert_eq!(a, b);
        assert_eq!(partition_size(&a), 10);
    }
}
