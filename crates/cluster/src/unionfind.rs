//! Disjoint-set forest (union-find) with union by rank and path halving.

/// A union-find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        assert!(n <= u32::MAX as usize, "UnionFind capped at u32 elements");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by representative, each group sorted ascending;
    /// groups ordered by their smallest element.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        uf.union(1, 4);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn groups_are_sorted_partitions() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 0);
        uf.union(2, 4);
        let g = uf.groups();
        assert_eq!(g, vec![vec![0, 5], vec![1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn long_chain_resolves() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, n - 1));
    }
}
