//! # tapesim-cluster
//!
//! Object clustering by co-access relationship (§5.1 of the paper).
//!
//! The similarity between objects is "the probability they will be accessed
//! together": the weight of a pair `(O_i, O_j)` is the sum of probabilities
//! of all requests containing both. Following the paper's reference to
//! Johnson's 1967 hierarchical scheme, we build an agglomerative hierarchy
//! over this sparse similarity graph and cut it at a preset probability
//! threshold; objects with a high chance of being accessed together land in
//! the same cluster.
//!
//! Two linkages are provided:
//!
//! * [`Dendrogram::single_linkage`] — exact single-linkage via Kruskal over
//!   descending edge weights; cheap, and the dendrogram supports both
//!   threshold cuts and the paper's cluster-size caps by recursive subtree
//!   splitting.
//! * [`average_linkage_clusters`] — sparse average linkage, used by the
//!   ablation experiments to check the scheme is not sensitive to the
//!   linkage choice.
//!
//! The driver type is [`ClusterParams`]: it derives the absolute threshold
//! from the workload's request probabilities and enforces the §5.1
//! size-cap rule (clusters should not exceed the tape-batch width).

pub mod average;
pub mod dendrogram;
pub mod similarity;
pub mod unionfind;

pub use average::average_linkage_clusters;
pub use dendrogram::Dendrogram;
pub use similarity::CoAccessGraph;
pub use unionfind::UnionFind;

use serde::{Deserialize, Serialize};
use tapesim_model::{Bytes, ObjectId};
use tapesim_workload::Workload;

/// Linkage criterion for the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Linkage {
    /// Maximum pairwise similarity (Kruskal/MST); the default.
    #[default]
    Single,
    /// Mean pairwise similarity between clusters.
    Average,
}

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// The cut threshold as a fraction of the *smallest* request
    /// probability. At the default `0.5`, every request's object set merges
    /// (its internal pair weights are at least one request probability) and
    /// only chance co-occurrence across requests chains clusters together.
    pub threshold_fraction: f64,
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Upper bound on the number of objects per cluster, if any
    /// (§5.1: close to `n×(d−m)` or `n×m` for maximum parallelism).
    pub max_objects: Option<usize>,
    /// Upper bound on a cluster's total bytes, if any (a batch's capacity).
    pub max_bytes: Option<Bytes>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            threshold_fraction: 0.5,
            linkage: Linkage::Single,
            max_objects: None,
            max_bytes: None,
        }
    }
}

impl ClusterParams {
    /// Absolute cut threshold for `workload`.
    pub fn absolute_threshold(&self, workload: &Workload) -> f64 {
        let min_p = workload
            .requests()
            .iter()
            .map(|r| r.probability)
            .fold(f64::INFINITY, f64::min);
        if min_p.is_finite() {
            min_p * self.threshold_fraction
        } else {
            0.0
        }
    }

    /// Clusters `workload` under these parameters.
    pub fn cluster(&self, workload: &Workload) -> ClusterSet {
        let graph = CoAccessGraph::from_workload(workload);
        let threshold = self.absolute_threshold(workload);
        let mut clusters = match self.linkage {
            Linkage::Single => {
                let dendro = Dendrogram::single_linkage(&graph);
                match (self.max_objects, self.max_bytes) {
                    (None, None) => dendro.cut(threshold),
                    _ => dendro.cut_with_caps(
                        threshold,
                        self.max_objects.unwrap_or(usize::MAX),
                        self.max_bytes.unwrap_or(Bytes(u64::MAX)),
                        &|o| workload.size_of(o),
                    ),
                }
            }
            Linkage::Average => {
                let flat = average_linkage_clusters(&graph, threshold);
                match (self.max_objects, self.max_bytes) {
                    (None, None) => flat,
                    _ => split_flat_to_caps(
                        flat,
                        self.max_objects.unwrap_or(usize::MAX),
                        self.max_bytes.unwrap_or(Bytes(u64::MAX)),
                        &|o| workload.size_of(o),
                    ),
                }
            }
        };
        // Deterministic presentation order: by smallest member id.
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        ClusterSet::new(clusters, workload.objects().len())
    }
}

/// Splits flat clusters that exceed the caps by greedy chunking in member
/// order (used for average linkage, which has no subtree structure to
/// follow).
fn split_flat_to_caps(
    clusters: Vec<Vec<ObjectId>>,
    max_objects: usize,
    max_bytes: Bytes,
    size_of: &dyn Fn(ObjectId) -> Bytes,
) -> Vec<Vec<ObjectId>> {
    let mut out = Vec::with_capacity(clusters.len());
    for cluster in clusters {
        let mut current: Vec<ObjectId> = Vec::new();
        let mut current_bytes = Bytes::ZERO;
        for o in cluster {
            let s = size_of(o);
            let over = current.len() + 1 > max_objects
                || (!current.is_empty() && current_bytes + s > max_bytes);
            if over {
                out.push(std::mem::take(&mut current));
                current_bytes = Bytes::ZERO;
            }
            current_bytes += s;
            current.push(o);
        }
        if !current.is_empty() {
            out.push(current);
        }
    }
    out
}

/// A partition of the object population into co-access clusters.
///
/// Every object appears in exactly one cluster; objects that never co-occur
/// with anything form singleton clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSet {
    clusters: Vec<Vec<ObjectId>>,
    n_objects: usize,
}

impl ClusterSet {
    /// Wraps and validates a partition over `n_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if the clusters are not a partition of `0..n_objects`.
    pub fn new(clusters: Vec<Vec<ObjectId>>, n_objects: usize) -> ClusterSet {
        let mut seen = vec![false; n_objects];
        let mut count = 0usize;
        for c in &clusters {
            assert!(!c.is_empty(), "empty cluster");
            for o in c {
                assert!(o.idx() < n_objects, "object {o} out of range");
                assert!(!seen[o.idx()], "object {o} in two clusters");
                seen[o.idx()] = true;
                count += 1;
            }
        }
        assert_eq!(count, n_objects, "clusters must cover every object");
        ClusterSet {
            clusters,
            n_objects,
        }
    }

    /// The clusters (each non-empty, members sorted when built through
    /// [`ClusterParams::cluster`]).
    pub fn clusters(&self) -> &[Vec<ObjectId>] {
        &self.clusters
    }

    /// Number of objects covered.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of clusters with at least two members.
    pub fn n_nontrivial(&self) -> usize {
        self.clusters.iter().filter(|c| c.len() > 1).count()
    }

    /// Map from object to its cluster index.
    pub fn membership(&self) -> Vec<usize> {
        let mut m = vec![usize::MAX; self.n_objects];
        for (i, c) in self.clusters.iter().enumerate() {
            for o in c {
                m[o.idx()] = i;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::Bytes;
    use tapesim_workload::{ObjectRecord, Request};

    /// Builds a workload with explicit requests over `n` 1 GB objects.
    fn toy_workload(n: u32, reqs: &[(&[u32], f64)]) -> Workload {
        let objects = (0..n)
            .map(|i| ObjectRecord {
                id: ObjectId(i),
                size: Bytes::gb(1),
            })
            .collect();
        let requests = reqs
            .iter()
            .enumerate()
            .map(|(rank, (objs, p))| Request {
                rank: rank as u32,
                probability: *p,
                objects: objs.iter().map(|&o| ObjectId(o)).collect(),
            })
            .collect();
        Workload::new(objects, requests)
    }

    #[test]
    fn requests_become_clusters() {
        let w = toy_workload(10, &[(&[0, 1, 2], 0.6), (&[5, 6], 0.4)]);
        let set = ClusterParams::default().cluster(&w);
        let clusters: Vec<_> = set
            .clusters()
            .iter()
            .filter(|c| c.len() > 1)
            .cloned()
            .collect();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
        assert_eq!(clusters[1], vec![ObjectId(5), ObjectId(6)]);
        // Untouched objects are singletons; the set is a partition.
        assert_eq!(set.n_objects(), 10);
    }

    #[test]
    fn shared_object_chains_clusters_under_single_linkage() {
        let w = toy_workload(6, &[(&[0, 1, 2], 0.5), (&[2, 3, 4], 0.5)]);
        let set = ClusterParams::default().cluster(&w);
        let big = set.clusters().iter().find(|c| c.len() == 5).unwrap();
        assert_eq!(
            *big,
            vec![
                ObjectId(0),
                ObjectId(1),
                ObjectId(2),
                ObjectId(3),
                ObjectId(4)
            ]
        );
    }

    #[test]
    fn high_threshold_keeps_only_strong_pairs() {
        // Pair (0,1) co-occurs in both requests (weight 1.0); the rest only
        // in one.
        let w = toy_workload(5, &[(&[0, 1, 2], 0.5), (&[0, 1, 3], 0.5)]);
        let params = ClusterParams {
            threshold_fraction: 1.5, // 0.75 absolute: above any single request
            ..ClusterParams::default()
        };
        let set = params.cluster(&w);
        let nontrivial: Vec<_> = set.clusters().iter().filter(|c| c.len() > 1).collect();
        assert_eq!(nontrivial.len(), 1);
        assert_eq!(*nontrivial[0], vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn object_caps_split_clusters() {
        let w = toy_workload(8, &[(&[0, 1, 2, 3, 4, 5], 1.0)]);
        let params = ClusterParams {
            max_objects: Some(2),
            ..ClusterParams::default()
        };
        let set = params.cluster(&w);
        for c in set.clusters() {
            assert!(c.len() <= 2, "cap violated: {c:?}");
        }
        assert_eq!(set.n_objects(), 8);
    }

    #[test]
    fn byte_caps_split_clusters() {
        let w = toy_workload(6, &[(&[0, 1, 2, 3], 1.0)]);
        let params = ClusterParams {
            max_bytes: Some(Bytes::gb(2)),
            ..ClusterParams::default()
        };
        let set = params.cluster(&w);
        for c in set.clusters() {
            let total: Bytes = c.iter().map(|&o| w.size_of(o)).sum();
            assert!(total <= Bytes::gb(2), "byte cap violated: {c:?}");
        }
    }

    #[test]
    fn average_linkage_agrees_on_disjoint_requests() {
        let w = toy_workload(10, &[(&[0, 1, 2], 0.6), (&[5, 6], 0.4)]);
        let single = ClusterParams::default().cluster(&w);
        let avg = ClusterParams {
            linkage: Linkage::Average,
            ..ClusterParams::default()
        }
        .cluster(&w);
        assert_eq!(single, avg);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn cluster_set_rejects_overlap() {
        let _ = ClusterSet::new(vec![vec![ObjectId(0)], vec![ObjectId(0)]], 1);
    }

    #[test]
    #[should_panic(expected = "cover every object")]
    fn cluster_set_rejects_missing() {
        let _ = ClusterSet::new(vec![vec![ObjectId(0)]], 2);
    }

    #[test]
    fn membership_maps_back() {
        let w = toy_workload(4, &[(&[0, 1], 1.0)]);
        let set = ClusterParams::default().cluster(&w);
        let m = set.membership();
        assert_eq!(m[0], m[1]);
        assert_ne!(m[2], m[3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;
    use tapesim_model::Bytes;
    use tapesim_workload::{ObjectRecord, Request};

    /// Random overlapping request sets over a small population.
    fn random_workload(seed: u64, n_obj: u32, n_req: usize) -> Workload {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let objects = (0..n_obj)
            .map(|i| ObjectRecord {
                id: tapesim_model::ObjectId(i),
                size: Bytes::gb(1 + rng.gen_range(0..8)),
            })
            .collect();
        let mut requests = Vec::new();
        for rank in 0..n_req {
            let k = rng.gen_range(2..=(n_obj.min(10)));
            let mut objs: Vec<_> = (0..k)
                .map(|_| tapesim_model::ObjectId(rng.gen_range(0..n_obj)))
                .collect();
            objs.sort_unstable();
            objs.dedup();
            requests.push(Request {
                rank: rank as u32,
                probability: 1.0 / n_req as f64,
                objects: objs,
            });
        }
        Workload::new(objects, requests)
    }

    proptest! {
        /// Both linkages always yield a valid partition, with and without
        /// caps, over random overlapping workloads.
        #[test]
        fn clustering_always_partitions(
            seed in any::<u64>(),
            n_obj in 5u32..60,
            n_req in 1usize..20,
            linkage_avg in any::<bool>(),
            cap in proptest::option::of(1usize..6),
        ) {
            let w = random_workload(seed, n_obj, n_req);
            let params = ClusterParams {
                linkage: if linkage_avg { Linkage::Average } else { Linkage::Single },
                max_objects: cap,
                ..ClusterParams::default()
            };
            // `cluster` panics internally (via ClusterSet::new) if the
            // result is not a partition; also check the caps.
            let set = params.cluster(&w);
            prop_assert_eq!(set.n_objects(), n_obj as usize);
            if let Some(cap) = cap {
                for c in set.clusters() {
                    prop_assert!(c.len() <= cap, "cap {cap} violated: {c:?}");
                }
            }
            // Membership round-trips.
            let m = set.membership();
            for (i, c) in set.clusters().iter().enumerate() {
                for o in c {
                    prop_assert_eq!(m[o.idx()], i);
                }
            }
        }

        /// Pair weights are symmetric, non-negative, and bounded by the
        /// total request mass.
        #[test]
        fn similarity_bounds(seed in any::<u64>(), n_obj in 4u32..40, n_req in 1usize..15) {
            let w = random_workload(seed, n_obj, n_req);
            let g = CoAccessGraph::from_workload(&w);
            let total: f64 = w.requests().iter().map(|r| r.probability).sum();
            for (a, b, wgt) in g.edges_by_weight_desc() {
                prop_assert!(wgt > 0.0 && wgt <= total + 1e-9);
                prop_assert!((g.pair_weight(a, b) - wgt).abs() < 1e-12);
                prop_assert!((g.pair_weight(b, a) - wgt).abs() < 1e-12);
            }
        }
    }
}
