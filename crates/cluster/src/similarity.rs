//! The co-access similarity graph.
//!
//! Edge weight between two objects = Σ of probabilities of all requests
//! containing both (§5.1). The graph is sparse: only pairs that actually
//! co-occur in some request carry an edge — for the paper's workload that is
//! a few million pairs out of 30 000² / 2 possible.
//!
//! Higher-order similarities (triples, …) are implicit in the hierarchy: a
//! set of objects co-requested with total probability `p` is connected by
//! pairwise edges of weight ≥ `p`, so any threshold cut at or below `p`
//! groups them — which is how the paper's tree-traversal extraction behaves.

use std::collections::HashMap;
use tapesim_model::ObjectId;
use tapesim_workload::{Request, Workload};

/// Packs an unordered object pair into a map key (smaller id in high bits).
#[inline]
fn pair_key(a: ObjectId, b: ObjectId) -> u64 {
    let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Sparse weighted co-access graph over the object population.
#[derive(Debug, Clone)]
pub struct CoAccessGraph {
    n_objects: usize,
    weights: HashMap<u64, f64>,
}

impl CoAccessGraph {
    /// Builds the graph from a request set over `n_objects` objects.
    pub fn from_requests(n_objects: usize, requests: &[Request]) -> CoAccessGraph {
        // Rough capacity guess: Σ C(k,2) over requests, saturating.
        let cap: usize = requests
            .iter()
            .map(|r| r.objects.len() * (r.objects.len().saturating_sub(1)) / 2)
            .sum();
        let mut weights = HashMap::with_capacity(cap.min(1 << 24));
        for r in requests {
            for (i, &a) in r.objects.iter().enumerate() {
                for &b in &r.objects[i + 1..] {
                    *weights.entry(pair_key(a, b)).or_insert(0.0) += r.probability;
                }
            }
        }
        CoAccessGraph { n_objects, weights }
    }

    /// Convenience: builds from a [`Workload`].
    pub fn from_workload(workload: &Workload) -> CoAccessGraph {
        CoAccessGraph::from_requests(workload.objects().len(), workload.requests())
    }

    /// Number of objects (graph vertices).
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of weighted pairs (graph edges).
    pub fn n_edges(&self) -> usize {
        self.weights.len()
    }

    /// Similarity of a pair (0 if never co-accessed).
    pub fn pair_weight(&self, a: ObjectId, b: ObjectId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.weights.get(&pair_key(a, b)).copied().unwrap_or(0.0)
    }

    /// All edges as `(a, b, weight)` with `a < b`, **sorted by descending
    /// weight** (ties broken by ids) — the order Kruskal consumes.
    pub fn edges_by_weight_desc(&self) -> Vec<(ObjectId, ObjectId, f64)> {
        let mut edges: Vec<(ObjectId, ObjectId, f64)> = self
            .weights
            .iter()
            .map(|(&k, &w)| (ObjectId((k >> 32) as u32), ObjectId(k as u32), w))
            .collect();
        edges.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .expect("weights are finite")
                .then(x.0.cmp(&y.0))
                .then(x.1.cmp(&y.1))
        });
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rank: u32, p: f64, objs: &[u32]) -> Request {
        Request {
            rank,
            probability: p,
            objects: objs.iter().map(|&o| ObjectId(o)).collect(),
        }
    }

    #[test]
    fn weights_accumulate_across_requests() {
        let reqs = vec![req(0, 0.5, &[0, 1, 2]), req(1, 0.3, &[1, 2, 3])];
        let g = CoAccessGraph::from_requests(5, &reqs);
        assert_eq!(g.n_objects(), 5);
        // (1,2) appears in both requests.
        assert!((g.pair_weight(ObjectId(1), ObjectId(2)) - 0.8).abs() < 1e-12);
        // (0,1) only in the first.
        assert!((g.pair_weight(ObjectId(0), ObjectId(1)) - 0.5).abs() < 1e-12);
        // (0,3) never together.
        assert_eq!(g.pair_weight(ObjectId(0), ObjectId(3)), 0.0);
        // Symmetric.
        assert_eq!(
            g.pair_weight(ObjectId(2), ObjectId(1)),
            g.pair_weight(ObjectId(1), ObjectId(2))
        );
        // Self-similarity is not a thing.
        assert_eq!(g.pair_weight(ObjectId(1), ObjectId(1)), 0.0);
    }

    #[test]
    fn edge_count_is_union_of_pairs() {
        let reqs = vec![req(0, 0.5, &[0, 1, 2]), req(1, 0.5, &[1, 2, 3])];
        let g = CoAccessGraph::from_requests(4, &reqs);
        // Pairs: {01,02,12} ∪ {12,13,23} = 5 distinct.
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn edges_sorted_descending_deterministically() {
        let reqs = vec![
            req(0, 0.4, &[0, 1]),
            req(1, 0.4, &[2, 3]),
            req(2, 0.2, &[0, 2]),
        ];
        let g = CoAccessGraph::from_requests(4, &reqs);
        let edges = g.edges_by_weight_desc();
        assert_eq!(edges.len(), 3);
        // Two ties at 0.4 break by smaller first id.
        assert_eq!(edges[0].0, ObjectId(0));
        assert_eq!(edges[0].1, ObjectId(1));
        assert_eq!(edges[1].0, ObjectId(2));
        assert_eq!(edges[1].1, ObjectId(3));
        assert!((edges[2].2 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_requests_give_empty_graph() {
        let g = CoAccessGraph::from_requests(10, &[]);
        assert_eq!(g.n_edges(), 0);
        assert!(g.edges_by_weight_desc().is_empty());
    }
}
