//! Timing probe for the clustering pipeline at the paper's full scale
//! (30 000 objects, 300 requests ⇒ ~2.2 M co-access edges).
//!
//! ```text
//! cargo run --release -p tapesim-cluster --example clustertime
//! ```

use std::time::Instant;

fn main() {
    let spec = tapesim_workload::WorkloadSpec::default();
    let w = spec.generate();

    let t = Instant::now();
    let g = tapesim_cluster::CoAccessGraph::from_workload(&w);
    println!("graph: {} edges [{:?}]", g.n_edges(), t.elapsed());

    let t = Instant::now();
    let min_p = w
        .requests()
        .iter()
        .map(|r| r.probability)
        .fold(f64::INFINITY, f64::min);
    let cs = tapesim_cluster::average_linkage_clusters(&g, min_p * 0.5);
    println!("avg-linkage: {} clusters [{:?}]", cs.len(), t.elapsed());

    let t = Instant::now();
    let d = tapesim_cluster::Dendrogram::single_linkage(&g);
    println!(
        "single-linkage: {} merges [{:?}]",
        d.merges().len(),
        t.elapsed()
    );
}
