//! Property tests for the metrics registry and histogram estimators.
//!
//! Merge laws are checked on *exact* inputs: counter deltas and
//! histogram observations are drawn from small integer/binary-fraction
//! grids, so every floating-point sum in the registry is exact and the
//! associativity/commutativity assertions can use strict equality
//! (comparison is on [`MetricsRegistry::canonical`] — registration order
//! is explicitly not part of the law).

use proptest::prelude::*;
use tapesim_des::stats::Samples;
use tapesim_obs::MetricsRegistry;

/// Histogram bucket upper bounds: eight buckets of width 12.5 covering
/// `(…, 100]`. 12.5 is a binary fraction, so widths and edges are exact.
const BOUNDS: [f64; 8] = [12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0];
const WIDTH: f64 = 12.5;

/// One run's worth of registry activity, built from integer-grid inputs.
fn registry_from(counts: &[u32], values: &[u32], gauge: u32) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let served = reg.counter("served");
    for &c in counts {
        reg.add(served, c as u64);
    }
    let g = reg.gauge("makespan_s");
    reg.set(g, gauge as f64);
    let h = reg.histogram("sojourn_s", &BOUNDS);
    for &v in values {
        // v in [0, 800] maps to [0.0, 100.0] in exact 1/8 steps.
        reg.observe(h, v as f64 / 8.0);
    }
    reg
}

fn run_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<u32>, u32)> {
    (
        proptest::collection::vec(0u32..1000, 0..20),
        proptest::collection::vec(0u32..=800, 0..50),
        0u32..100_000,
    )
}

proptest! {
    /// merge(a, b) == merge(b, a) on the canonical form.
    #[test]
    fn merge_is_commutative(a in run_strategy(), b in run_strategy()) {
        let (ra, rb) = (registry_from(&a.0, &a.1, a.2), registry_from(&b.0, &b.1, b.2));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        prop_assert_eq!(ab.canonical(), ba.canonical());
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c) on the canonical form.
    #[test]
    fn merge_is_associative(
        a in run_strategy(),
        b in run_strategy(),
        c in run_strategy(),
    ) {
        let (ra, rb, rc) = (
            registry_from(&a.0, &a.1, a.2),
            registry_from(&b.0, &b.1, b.2),
            registry_from(&c.0, &c.1, c.2),
        );
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        let mut right_tail = rb.clone();
        right_tail.merge(&rc);
        let mut right = ra.clone();
        right.merge(&right_tail);
        prop_assert_eq!(left.canonical(), right.canonical());
    }

    /// The bucket percentile estimator brackets the exact
    /// [`Samples::percentile`] at the same (integer) rank from above,
    /// within one bucket width. Integer ranks (`p = 100·i/(n−1)`) make
    /// the exact percentile a pure order statistic, so the comparison
    /// has no interpolation slack.
    #[test]
    fn histogram_percentile_brackets_exact(
        values in proptest::collection::vec(0u32..=800, 1..120),
        rank_seed in 0usize..1000,
    ) {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("x", &BOUNDS);
        let mut samples = Samples::new();
        for &v in &values {
            let x = v as f64 / 8.0;
            reg.observe(h, x);
            samples.push(x);
        }
        let n = values.len();
        let p = if n == 1 {
            50.0
        } else {
            100.0 * (rank_seed % n) as f64 / (n - 1) as f64
        };
        let exact = samples.percentile(p);
        let est = reg.histogram_ref(h).percentile(p);
        prop_assert!(
            est >= exact - 1e-9 && est - exact <= WIDTH + 1e-9,
            "estimate {est} must bracket exact {exact} within one bucket \
             width {WIDTH} (p = {p}, n = {n})"
        );
    }
}
