// quick micro-bench of TimeAccountant::observe on a synthetic trace
use std::time::Instant;
use tapesim_des::{DriveKey, TapeKey};
use tapesim_des::{SimTime, TraceEvent};
use tapesim_obs::{TimeAccountant, Topology};

fn main() {
    let topo = Topology {
        libraries: 3,
        drives_per_library: 8,
        arms_per_library: 1,
        tapes_per_library: 80,
        load_secs: 19.0,
        unload_secs: 19.0,
    };
    // Build a synthetic interleaved trace resembling the bench run.
    let mut events: Vec<(SimTime, TraceEvent)> = Vec::new();
    let mut t = 0.0f64;
    for j in 0..2000u32 {
        let drive = DriveKey::pack((j % 3) as u16, (j % 8) as u16);
        let tape = TapeKey::pack(j % 3, j % 80);
        t += 5.0;
        events.push((
            SimTime::from_secs(t),
            TraceEvent::JobSubmitted { job: j, tape },
        ));
        if j % 4 == 0 {
            events.push((
                SimTime::from_secs(t + 1.0),
                TraceEvent::Unmounted { drive, tape },
            ));
            events.push((
                SimTime::from_secs(t + 1.0),
                TraceEvent::ExchangeBegun {
                    drive,
                    tape,
                    arm: 0,
                    start: SimTime::from_secs(t + 10.0),
                    finish: SimTime::from_secs(t + 60.0),
                },
            ));
            events.push((
                SimTime::from_secs(t + 60.0),
                TraceEvent::Mounted { drive, tape },
            ));
        }
        events.push((
            SimTime::from_secs(t + 61.0),
            TraceEvent::Transfer {
                drive,
                tape,
                job: j,
                extents: 3,
                seek: SimTime::from_secs(12.0),
                transfer: SimTime::from_secs(80.0),
                start: SimTime::from_secs(t + 61.0),
                finish: SimTime::from_secs(t + 153.0),
            },
        ));
        events.push((
            SimTime::from_secs(t + 153.0),
            TraceEvent::JobCompleted { job: j, drive },
        ));
    }
    println!("{} events", events.len());
    let iters = 200;
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..iters {
        let mut acc = TimeAccountant::new(topo);
        for (time, ev) in &events {
            acc.observe(*time, ev);
        }
        let b = acc.finish(SimTime::from_secs(t + 200.0));
        sink += b.makespan_s;
    }
    let el = start.elapsed().as_secs_f64();
    println!(
        "{:.1} ns/event (sink {sink})",
        el / iters as f64 / events.len() as f64 * 1e9
    );
}
