//! Resource-level observability for the tape-storage simulators.
//!
//! Three layers, all zero-overhead when disabled (engines hold an
//! `Option` of the accountant; `None` costs one branch per event):
//!
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges and
//!   fixed-bucket histograms with cheap index handles, mergeable across
//!   runs (counters/buckets add, gauges keep the max).
//! * [`spans`] — streaming per-resource **time accounting** over the
//!   engines' [`tapesim_des::TraceEvent`] tap: every drive and robot arm
//!   splits the run makespan into exclusive
//!   `{Seek, Rewind, Transfer, Load, Unload, Exchange, Idle, Failed}`
//!   spans, every job into `{Queued, WaitingMount, Serviced}`; the
//!   resulting [`TimeBudget`] closes exactly (categories sum to
//!   makespan × resource-count).
//! * [`manifest`] — a signed [`RunManifest`] recording the config,
//!   seeds, fault-spec digest, policy and crate versions of a run.
//!
//! [`report::render_budget`] renders a budget as the table the
//! `tapesim report` CLI subcommand prints.

pub mod manifest;
pub mod registry;
pub mod report;
pub mod spans;

pub use manifest::{digest, fnv1a64, RunManifest};
pub use registry::{CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry, RegistrySnapshot};
pub use report::render_budget;
pub use spans::{
    LibraryOverlap, PhaseTotals, ResourceBudget, SpanKind, SpanSecs, TimeAccountant, TimeBudget,
    Topology,
};
