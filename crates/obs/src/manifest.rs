//! Signed run manifests: the provenance record attached to a run's
//! results.
//!
//! A [`RunManifest`] captures everything needed to reproduce a run —
//! engine, placement scheme, policy, workload/arrival seeds, sample
//! count, the fault-spec digest — plus the workspace crate versions it
//! ran under. [`RunManifest::signed`] stamps an FNV-1a-64 digest over
//! the canonical JSON form (with the signature field zeroed), and
//! [`RunManifest::verify`] recomputes it, so a result file that was
//! edited after the fact no longer verifies. The signature is an
//! integrity checksum, not a cryptographic one: the threat model is
//! accidental mangling and config drift, not adversaries.

use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit over `bytes` — small, dependency-free, stable across
/// platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of any serialisable value via its canonical JSON encoding.
/// Used to fingerprint fault specs and configs for the manifest.
pub fn digest<T: Serialize + ?Sized>(value: &T) -> u64 {
    match serde_json::to_string(value) {
        Ok(json) => fnv1a64(json.as_bytes()),
        Err(_) => 0,
    }
}

/// Provenance record of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Engine name: `queued`, `sched` or `faults`.
    pub engine: String,
    /// Placement scheme label (`pbp`, `opp`, `cpp`, ...).
    pub scheme: String,
    /// Scheduling policy label (`fcfs`, `batch`, `sltf`, ...).
    pub policy: String,
    /// Workload generation seed.
    pub workload_seed: u64,
    /// Arrival-stream seed.
    pub arrival_seed: u64,
    /// Arrival rate, requests per hour.
    pub rate_per_hour: f64,
    /// Requests served (sampled).
    pub samples: u64,
    /// [`digest`] of the fault spec (0 for fault-free runs).
    pub fault_spec_hash: u64,
    /// `(crate, version)` pairs of the workspace crates involved.
    pub crates: Vec<(String, String)>,
    /// FNV-1a-64 over the canonical JSON with this field zeroed.
    pub signature: u64,
}

impl RunManifest {
    /// The workspace crates a run involves, at this build's version
    /// (all workspace members share one version).
    pub fn workspace_crates() -> Vec<(String, String)> {
        let version = env!("CARGO_PKG_VERSION");
        [
            "tapesim-des",
            "tapesim-model",
            "tapesim-workload",
            "tapesim-placement",
            "tapesim-sim",
            "tapesim-sched",
            "tapesim-faults",
            "tapesim-obs",
        ]
        .iter()
        .map(|name| (name.to_string(), version.to_string()))
        .collect()
    }

    fn digest_unsigned(&self) -> u64 {
        let mut unsigned = self.clone();
        unsigned.signature = 0;
        digest(&unsigned)
    }

    /// Consumes the manifest and returns it with the signature stamped.
    pub fn signed(mut self) -> RunManifest {
        self.signature = self.digest_unsigned();
        self
    }

    /// Whether the stamped signature matches the current contents.
    pub fn verify(&self) -> bool {
        self.signature != 0 && self.signature == self.digest_unsigned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest {
            engine: "sched".into(),
            scheme: "pbp".into(),
            policy: "batch".into(),
            workload_seed: 17,
            arrival_seed: 0xD15C,
            rate_per_hour: 12.0,
            samples: 100,
            fault_spec_hash: 0,
            crates: RunManifest::workspace_crates(),
            signature: 0,
        }
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn sign_then_verify() {
        let m = manifest().signed();
        assert_ne!(m.signature, 0);
        assert!(m.verify());
    }

    #[test]
    fn unsigned_does_not_verify() {
        assert!(!manifest().verify());
    }

    #[test]
    fn tampering_breaks_the_signature() {
        let mut m = manifest().signed();
        m.samples += 1;
        assert!(!m.verify());
    }

    #[test]
    fn signature_is_deterministic() {
        assert_eq!(manifest().signed().signature, manifest().signed().signature);
    }

    #[test]
    fn json_round_trip_preserves_verification() {
        let m = manifest().signed();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert!(back.verify());
    }
}
