//! Text rendering of a [`TimeBudget`]: the fixed-width table the
//! `tapesim report` subcommand prints.
//!
//! The table has one row per resource and one column per [`SpanKind`],
//! plus a `total` column that must equal the makespan on every row —
//! the budget-closure invariant rendered where a human can check it.
//! JSON output goes through the budget's `Serialize` impl directly.

use crate::spans::{SpanKind, TimeBudget};

/// Renders one budget as a fixed-width text table with a phase and
/// overlap summary underneath.
pub fn render_budget(budget: &TimeBudget) -> String {
    let mut out = String::new();
    let headers: Vec<&str> = SpanKind::ALL.iter().map(|k| k.label()).collect();
    out.push_str(&format!("{:<8}", "resource"));
    for h in &headers {
        out.push_str(&format!("{h:>12}"));
    }
    out.push_str(&format!("{:>12}\n", "total"));

    for r in budget.drives.iter().chain(budget.arms.iter()) {
        out.push_str(&format!("{:<8}", r.label));
        for kind in SpanKind::ALL {
            out.push_str(&format!("{:>12.2}", r.spans.get(kind)));
        }
        out.push_str(&format!("{:>12.2}\n", r.spans.total()));
    }

    out.push_str(&format!(
        "\nmakespan {:.2} s | {} drives, {} arms | budget closure error {:.2e} s\n",
        budget.makespan_s,
        budget.drives.len(),
        budget.arms.len(),
        budget.sum_error(),
    ));
    out.push_str(&format!(
        "drive utilisation {:.1}% | arm utilisation {:.1}% | robot-exchange overlap {:.1}%\n",
        budget.drive_utilisation() * 100.0,
        budget.arm_utilisation() * 100.0,
        budget.robot_overlap_ratio() * 100.0,
    ));
    let p = &budget.phases;
    out.push_str(&format!(
        "job phases ({} jobs): queued {:.2} s | waiting-mount {:.2} s | serviced {:.2} s (means/job)\n",
        p.jobs,
        p.mean_queued(),
        p.mean_waiting_mount(),
        p.mean_serviced(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{PhaseTotals, ResourceBudget, SpanSecs};

    fn budget() -> TimeBudget {
        TimeBudget {
            makespan_s: 100.0,
            drives: vec![ResourceBudget {
                label: "L0:D0".into(),
                spans: SpanSecs {
                    transfer: 60.0,
                    seek: 10.0,
                    idle: 30.0,
                    ..SpanSecs::default()
                },
            }],
            arms: vec![ResourceBudget {
                label: "L0:A0".into(),
                spans: SpanSecs {
                    exchange: 20.0,
                    idle: 80.0,
                    ..SpanSecs::default()
                },
            }],
            phases: PhaseTotals {
                jobs: 4,
                queued_s: 8.0,
                waiting_mount_s: 4.0,
                serviced_s: 40.0,
            },
            overlap: Vec::new(),
        }
    }

    #[test]
    fn renders_every_resource_and_the_closure_line() {
        let text = render_budget(&budget());
        assert!(text.contains("L0:D0"));
        assert!(text.contains("L0:A0"));
        assert!(text.contains("makespan 100.00 s"));
        assert!(text.contains("budget closure error"));
        assert!(text.contains("job phases (4 jobs)"));
        // Header carries every span category.
        for label in [
            "seek", "rewind", "transfer", "load", "unload", "exchange", "idle", "failed",
        ] {
            assert!(text.contains(label), "missing column {label}");
        }
    }
}
