//! Streaming per-resource time accounting over the trace-event tap.
//!
//! A [`TimeAccountant`] consumes the same [`TraceEvent`] stream the
//! auditor does — one event at a time, never buffering the trace — and
//! folds every event into per-resource span accumulators. At the end of
//! the run, [`TimeAccountant::finish`] closes the books against the run's
//! makespan and returns a [`TimeBudget`]:
//!
//! * every **drive** splits the makespan into
//!   `Seek + Rewind + Transfer + Load + Unload + Exchange + Failed + Idle`,
//! * every **robot arm** into `Exchange + Failed (jams) + Idle`,
//! * every **tape job** into `Queued + WaitingMount + Serviced`.
//!
//! The drive/arm categories are *exclusive* (the windows they are derived
//! from are exclusive per resource — an auditor invariant) and exhaustive
//! by construction: `Idle` is defined as the unattributed remainder, so
//! for every resource the eight categories sum to the makespan exactly
//! (up to float addition error, bounded well inside `1e-6`).
//!
//! # Attribution rules
//!
//! The trace describes intervals, not states, so each event maps onto
//! spans as follows:
//!
//! * `Transfer { seek, start, finish }` — the drive spends `seek` seconds
//!   in `Seek` and the rest of the window (`finish − start − seek`) in
//!   `Transfer`. Media-retry penalties folded into the window by the
//!   fault layer land in `Transfer` (they are reposition-and-reread work
//!   on the drive).
//! * `ExchangeBegun { start, finish }`, emitted at `now` — the drive
//!   spends `[now, start]` in `Rewind` (rewind plus any robot-queue wait:
//!   the drive is occupied but not streaming) and `[start, finish]`
//!   split into `Unload`/`Load` (the drive-spec constants, when the
//!   exchange replaces a mounted tape — detected by the `Unmounted`
//!   event the engines emit at the same instant) with the remaining
//!   robot-handling seconds in `Exchange`. The serving arm accumulates
//!   the whole `[start, finish]` window as `Exchange`.
//! * `DriveFailed { at }` — the drive is `Failed` from `at` to the end
//!   of the run.
//! * `RobotJammed { start, finish }` — every arm of the library is
//!   `Failed` for the (overlap-merged, makespan-clamped) jam windows.
//! * Job phases: `Queued + WaitingMount + Serviced` spans the time from
//!   `JobSubmitted` to the end of the job's transfer window.
//!   `WaitingMount` is the part of `[submit, transfer start]` covered by
//!   the exchange window that fetched the job's tape; `Queued` is the
//!   rest of the pre-service gap.
//!
//! Library-level robot-exchange *overlap* — how much arm exchange time
//! is hidden behind concurrent drive transfers, the effect the paper's
//! switch-drive argument (§5) relies on — is computed from the interval
//! sets at `finish` time. The interval lists are per-run aggregates
//! (O(transfers), not O(events)) kept only for this purpose.

use serde::{Deserialize, Serialize};
use tapesim_des::trace::{DriveKey, TapeKey};
use tapesim_des::{SimTime, TraceEvent};

/// The exclusive span categories a drive (or arm) divides time into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Head positioning between extents.
    Seek,
    /// Rewind before an unload, plus robot-queue wait (drive occupied).
    Rewind,
    /// Streaming data (including media-retry rereads).
    Transfer,
    /// Loading and threading a cartridge.
    Load,
    /// Unloading a cartridge.
    Unload,
    /// Robot handling during an exchange (eject/inject arm work).
    Exchange,
    /// Unattributed remainder of the makespan.
    Idle,
    /// Dead time: after a permanent drive failure, or during a robot jam.
    Failed,
}

impl SpanKind {
    /// All categories, in rendering order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Seek,
        SpanKind::Rewind,
        SpanKind::Transfer,
        SpanKind::Load,
        SpanKind::Unload,
        SpanKind::Exchange,
        SpanKind::Failed,
        SpanKind::Idle,
    ];

    /// Short lower-case label (column header).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Seek => "seek",
            SpanKind::Rewind => "rewind",
            SpanKind::Transfer => "transfer",
            SpanKind::Load => "load",
            SpanKind::Unload => "unload",
            SpanKind::Exchange => "exchange",
            SpanKind::Idle => "idle",
            SpanKind::Failed => "failed",
        }
    }
}

/// Seconds accumulated per [`SpanKind`] by one resource.
///
/// Exactly one cache line, and aligned to it: the hot accounting path
/// read-modify-writes two fields per transfer, and the alignment keeps
/// that a single-line access in `Vec<SpanSecs>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[repr(align(64))]
pub struct SpanSecs {
    /// Head positioning.
    pub seek: f64,
    /// Rewind plus robot-queue wait.
    pub rewind: f64,
    /// Streaming (plus retry rereads).
    pub transfer: f64,
    /// Cartridge load.
    pub load: f64,
    /// Cartridge unload.
    pub unload: f64,
    /// Robot handling.
    pub exchange: f64,
    /// Unattributed remainder.
    pub idle: f64,
    /// Failure / jam dead time.
    pub failed: f64,
}

impl SpanSecs {
    /// Seconds in `kind`.
    pub fn get(&self, kind: SpanKind) -> f64 {
        match kind {
            SpanKind::Seek => self.seek,
            SpanKind::Rewind => self.rewind,
            SpanKind::Transfer => self.transfer,
            SpanKind::Load => self.load,
            SpanKind::Unload => self.unload,
            SpanKind::Exchange => self.exchange,
            SpanKind::Idle => self.idle,
            SpanKind::Failed => self.failed,
        }
    }

    /// Attributed (non-idle, non-failed) seconds.
    pub fn busy(&self) -> f64 {
        self.seek + self.rewind + self.transfer + self.load + self.unload + self.exchange
    }

    /// Sum over every category; equals the makespan in a closed budget.
    pub fn total(&self) -> f64 {
        self.busy() + self.idle + self.failed
    }
}

/// One resource's closed time budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Human-readable resource name (`L0:D1`, `L2:A0`).
    pub label: String,
    /// Seconds per category; sums to the run makespan.
    pub spans: SpanSecs,
}

/// Aggregated job-phase seconds (`Queued + WaitingMount + Serviced`
/// covers submit-to-completion for every job that streamed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Jobs that completed a transfer window.
    pub jobs: u64,
    /// Waiting in the admission queue (not on a mount).
    pub queued_s: f64,
    /// Waiting specifically on the exchange fetching the job's tape.
    pub waiting_mount_s: f64,
    /// Streaming.
    pub serviced_s: f64,
}

impl PhaseTotals {
    /// Mean seconds per job of one phase total.
    fn mean(&self, total: f64) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            total / self.jobs as f64
        }
    }

    /// Mean queued seconds per job.
    pub fn mean_queued(&self) -> f64 {
        self.mean(self.queued_s)
    }

    /// Mean mount-wait seconds per job.
    pub fn mean_waiting_mount(&self) -> f64 {
        self.mean(self.waiting_mount_s)
    }

    /// Mean service seconds per job.
    pub fn mean_serviced(&self) -> f64 {
        self.mean(self.serviced_s)
    }
}

/// Per-library robot-exchange overlap: how much of the robot's exchange
/// time ran while at least one drive of the same library was streaming.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LibraryOverlap {
    /// Library index.
    pub library: u32,
    /// Total arm exchange seconds.
    pub exchange_s: f64,
    /// Exchange seconds overlapped by ≥ 1 concurrent transfer window.
    pub overlapped_s: f64,
}

impl LibraryOverlap {
    /// Overlapped fraction in `[0, 1]` (zero when no exchanges ran).
    pub fn ratio(&self) -> f64 {
        if self.exchange_s <= 0.0 {
            0.0
        } else {
            self.overlapped_s / self.exchange_s
        }
    }
}

/// The closed per-resource time budget of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBudget {
    /// Run makespan, seconds from t = 0 to the last event.
    pub makespan_s: f64,
    /// One closed budget per drive.
    pub drives: Vec<ResourceBudget>,
    /// One closed budget per robot arm.
    pub arms: Vec<ResourceBudget>,
    /// Aggregated job-phase seconds.
    pub phases: PhaseTotals,
    /// Per-library exchange/transfer overlap.
    pub overlap: Vec<LibraryOverlap>,
}

impl TimeBudget {
    /// Number of resources carrying a budget (drives + arms).
    pub fn resource_count(&self) -> usize {
        self.drives.len() + self.arms.len()
    }

    /// Largest absolute error `|spans.total() − makespan|` over all
    /// resources. The budget invariant is `sum_error() < 1e-6`:
    /// categories sum to makespan × resource-count.
    pub fn sum_error(&self) -> f64 {
        self.drives
            .iter()
            .chain(self.arms.iter())
            .map(|r| (r.spans.total() - self.makespan_s).abs())
            .fold(0.0, f64::max)
    }

    /// Mean attributed (busy) fraction of the makespan over all drives.
    pub fn drive_utilisation(&self) -> f64 {
        if self.drives.is_empty() || self.makespan_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.drives.iter().map(|r| r.spans.busy()).sum();
        busy / (self.makespan_s * self.drives.len() as f64)
    }

    /// Mean exchange fraction of the makespan over all arms.
    pub fn arm_utilisation(&self) -> f64 {
        if self.arms.is_empty() || self.makespan_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.arms.iter().map(|r| r.spans.exchange).sum();
        busy / (self.makespan_s * self.arms.len() as f64)
    }

    /// Whole-system robot-exchange overlap ratio: exchange seconds hidden
    /// behind concurrent transfers over total exchange seconds.
    pub fn robot_overlap_ratio(&self) -> f64 {
        let total: f64 = self.overlap.iter().map(|o| o.exchange_s).sum();
        if total <= 0.0 {
            0.0
        } else {
            self.overlap.iter().map(|o| o.overlapped_s).sum::<f64>() / total
        }
    }

    /// Sum of one category over all drives.
    pub fn drive_total(&self, kind: SpanKind) -> f64 {
        self.drives.iter().map(|r| r.spans.get(kind)).sum()
    }
}

/// Static shape of the simulated system, as the accountant needs it:
/// resource counts for dense indexing plus the drive-spec constants that
/// split an exchange window into `Unload`/`Exchange`/`Load`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of libraries.
    pub libraries: u32,
    /// Drives per library.
    pub drives_per_library: u32,
    /// Robot arms per library.
    pub arms_per_library: u32,
    /// Tape slots per library.
    pub tapes_per_library: u32,
    /// Drive load ("load and thread") seconds, for the exchange split
    /// (0 folds the whole window into `Exchange`).
    pub load_secs: f64,
    /// Drive unload seconds, for the exchange split.
    pub unload_secs: f64,
}

impl Topology {
    fn n_drives(&self) -> usize {
        (self.libraries * self.drives_per_library) as usize
    }

    fn n_arms(&self) -> usize {
        (self.libraries * self.arms_per_library) as usize
    }

    fn n_tapes(&self) -> usize {
        (self.libraries * self.tapes_per_library) as usize
    }

    fn drive_index(&self, key: DriveKey) -> Option<usize> {
        let idx = key.library() as usize * self.drives_per_library as usize + key.bay() as usize;
        ((key.bay() as u32) < self.drives_per_library && (key.library() as u32) < self.libraries)
            .then_some(idx)
    }

    fn arm_index(&self, library: u32, arm: u32) -> Option<usize> {
        let idx = (library * self.arms_per_library + arm) as usize;
        (arm < self.arms_per_library && library < self.libraries).then_some(idx)
    }

    fn tape_index(&self, key: TapeKey) -> Option<usize> {
        let idx = (key.library() * self.tapes_per_library + key.slot()) as usize;
        (key.slot() < self.tapes_per_library && key.library() < self.libraries).then_some(idx)
    }
}

/// Unions `lanes` of `(start, finish)` windows into a merged,
/// non-overlapping, start-sorted interval list. Each lane must itself be
/// sorted and non-overlapping (which per-drive transfer lists are: a
/// drive streams one window at a time), so no sorting is needed — a
/// k-way merge picks the earliest remaining head each step, O(n·k) over
/// a handful of lanes instead of O(n log n) over their concatenation.
fn merge_union(lanes: &[Vec<(f64, f64)>]) -> Vec<(f64, f64)> {
    let total: usize = lanes.iter().map(Vec::len).sum();
    let mut union: Vec<(f64, f64)> = Vec::with_capacity(total);
    let mut idx = vec![0usize; lanes.len()];
    loop {
        let mut next: Option<(usize, (f64, f64))> = None;
        for (k, lane) in lanes.iter().enumerate() {
            if let Some(&w) = lane.get(idx[k]) {
                if next.is_none_or(|(_, b)| w.0 < b.0) {
                    next = Some((k, w));
                }
            }
        }
        let Some((k, (s, f))) = next else { break };
        idx[k] += 1;
        match union.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(f),
            _ => union.push((s, f)),
        }
    }
    union
}

/// Merges and clamps a list of `(start, finish)` windows in place and
/// returns the total covered seconds within `[0, cap]`.
fn merged_secs(windows: &mut [(f64, f64)], cap: f64) -> f64 {
    for w in windows.iter_mut() {
        w.0 = w.0.clamp(0.0, cap);
        w.1 = w.1.clamp(0.0, cap);
    }
    windows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut covered = 0.0;
    let mut open: Option<(f64, f64)> = None;
    for &(s, f) in windows.iter() {
        match open {
            Some((os, of)) if s <= of => open = Some((os, of.max(f))),
            Some((os, of)) => {
                covered += of - os;
                open = Some((s, f));
            }
            None => open = Some((s, f)),
        }
    }
    if let Some((os, of)) = open {
        covered += of - os;
    }
    covered
}

/// Streaming span accountant: feed it every trace event, then close the
/// books with [`TimeAccountant::finish`].
#[derive(Debug, Clone)]
pub struct TimeAccountant {
    topo: Topology,
    drives: Vec<SpanSecs>,
    arms: Vec<SpanSecs>,
    /// Earliest permanent-failure instant noticed per drive.
    drive_fail_at: Vec<f64>,
    /// Jam windows per library (merged at finish).
    jams: Vec<Vec<(f64, f64)>>,
    /// Last `Unmounted` emit instant per drive — an `ExchangeBegun` at
    /// the same instant replaces a mounted tape (occupied exchange).
    unmounted_at: Vec<f64>,
    /// Last exchange window per tape, for `WaitingMount` attribution.
    tape_window: Vec<(f64, f64)>,
    /// Submit instant per job id (overwritten when per-request traces
    /// reuse job ids — requests are serial there, so never ambiguous).
    submit: Vec<f64>,
    /// Transfer windows `(drive, start, finish)`, for the overlap ratio.
    /// One flat append-only list: the hot path writes a single hot vector
    /// tail (a per-drive `Vec<Vec<_>>` costs several scattered cache
    /// lines per event, which measurably taxes the engine). `finish`
    /// partitions it into per-drive lanes — each lane arrives
    /// non-overlapping and sorted by start because a drive streams
    /// serially (an auditor invariant) — and unions a library's lanes
    /// with a sort-free k-way merge, and only when the library actually
    /// ran exchanges.
    transfers: Vec<(u32, f64, f64)>,
    /// Exchange windows `(library, start, finish)`; flat because the
    /// overlap sweep never needs them sorted.
    exchanges: Vec<(u32, f64, f64)>,
    phases: PhaseTotals,
    /// Largest timestamp observed (floor for the makespan).
    high_water: f64,
}

impl TimeAccountant {
    /// A fresh accountant for one run over `topo`.
    pub fn new(topo: Topology) -> TimeAccountant {
        let n_libs = topo.libraries as usize;
        TimeAccountant {
            topo,
            drives: vec![SpanSecs::default(); topo.n_drives()],
            arms: vec![SpanSecs::default(); topo.n_arms()],
            drive_fail_at: vec![f64::INFINITY; topo.n_drives()],
            jams: vec![Vec::new(); n_libs],
            unmounted_at: vec![f64::NEG_INFINITY; topo.n_drives()],
            tape_window: vec![(0.0, 0.0); topo.n_tapes()],
            submit: Vec::new(),
            transfers: Vec::new(),
            exchanges: Vec::new(),
            phases: PhaseTotals::default(),
            high_water: 0.0,
        }
    }

    /// Folds one event, emitted at `time`, into the accounts.
    ///
    /// Inlined so the variant pre-filter runs at the call site: events
    /// that carry no accounting information (completions, mount
    /// confirmations, fault notices already folded into `Transfer`
    /// penalties) never pay the out-of-line call. Their timestamps are
    /// bounded by the interval-carrying events and the engine-supplied
    /// `end`, so skipping them cannot lower the high-water mark.
    #[inline]
    pub fn observe(&mut self, time: SimTime, event: &TraceEvent) {
        if matches!(
            event,
            TraceEvent::AssumeMounted { .. }
                | TraceEvent::Mounted { .. }
                | TraceEvent::JobCompleted { .. }
                | TraceEvent::ReadFaulted { .. }
                | TraceEvent::JobLost { .. }
                | TraceEvent::FailedOver { .. }
        ) {
            return;
        }
        self.observe_shifted(SimTime::ZERO, time, event);
    }

    /// [`TimeAccountant::observe`] with every timestamp (emit instant and
    /// interval fields alike) shifted forward by `offset` — used to stitch
    /// the per-request traces of the sequential engines, whose local
    /// clocks restart at zero, onto the run's global axis.
    pub fn observe_shifted(&mut self, offset: SimTime, time: SimTime, event: &TraceEvent) {
        let off = offset.as_secs();
        let now = time.as_secs() + off;
        self.high_water = self.high_water.max(now);
        match *event {
            TraceEvent::JobSubmitted { job, .. } => {
                let job = job as usize;
                // Job ids are issued densely, so the append path is the
                // common case; resize only on gaps (never in practice).
                if job == self.submit.len() {
                    self.submit.push(now);
                } else {
                    if job >= self.submit.len() {
                        self.submit.resize(job + 1, f64::NEG_INFINITY);
                    }
                    self.submit[job] = now;
                }
            }
            TraceEvent::Unmounted { drive, .. } => {
                if let Some(d) = self.topo.drive_index(drive) {
                    self.unmounted_at[d] = now;
                }
            }
            TraceEvent::ExchangeBegun {
                drive,
                tape,
                arm,
                start,
                finish,
            } => {
                let (s, f) = (start.as_secs() + off, finish.as_secs() + off);
                self.high_water = self.high_water.max(f);
                if let Some(d) = self.topo.drive_index(drive) {
                    // [now, start] is rewind + robot-queue wait; the
                    // window itself splits into unload/handling/load.
                    self.drives[d].rewind += s - now;
                    let width = f - s;
                    let occupied = self.unmounted_at[d] == now;
                    let unload = if occupied {
                        self.topo.unload_secs.min(width)
                    } else {
                        0.0
                    };
                    let load = self.topo.load_secs.min(width - unload);
                    self.drives[d].unload += unload;
                    self.drives[d].load += load;
                    self.drives[d].exchange += width - unload - load;
                }
                let lib = drive.library() as u32;
                if let Some(a) = self.topo.arm_index(lib, arm) {
                    self.arms[a].exchange += f - s;
                }
                if let Some(t) = self.topo.tape_index(tape) {
                    self.tape_window[t] = (s, f);
                }
                self.exchanges.push((lib, s, f));
            }
            TraceEvent::Transfer {
                drive,
                tape,
                job,
                seek,
                start,
                finish,
                ..
            } => {
                let (s, f) = (start.as_secs() + off, finish.as_secs() + off);
                self.high_water = self.high_water.max(f);
                let seek_s = seek.as_secs().min(f - s);
                if let Some(d) = self.topo.drive_index(drive) {
                    self.drives[d].seek += seek_s;
                    self.drives[d].transfer += (f - s) - seek_s;
                    self.transfers.push((d as u32, s, f));
                }
                // Job phases: submit → start splits into queued +
                // waiting-on-mount; the window itself is service.
                let submit = self
                    .submit
                    .get(job as usize)
                    .copied()
                    .filter(|t| t.is_finite())
                    .unwrap_or(s)
                    .min(s);
                // A job can only have waited on a mount if some exchange
                // window was ever recorded — the common no-switch case
                // skips the per-tape window lookup entirely.
                let waiting = if self.exchanges.is_empty() {
                    0.0
                } else {
                    match self.topo.tape_index(tape) {
                        Some(t) => {
                            let (ws, wf) = self.tape_window[t];
                            (wf.min(s) - ws.max(submit)).max(0.0)
                        }
                        None => 0.0,
                    }
                };
                self.phases.jobs += 1;
                self.phases.waiting_mount_s += waiting;
                self.phases.queued_s += (s - submit) - waiting;
                self.phases.serviced_s += f - s;
            }
            TraceEvent::DriveFailed { drive, at } => {
                if let Some(d) = self.topo.drive_index(drive) {
                    self.drive_fail_at[d] = self.drive_fail_at[d].min(at.as_secs() + off);
                }
            }
            TraceEvent::RobotJammed {
                library,
                start,
                finish,
            } => {
                if let Some(jams) = self.jams.get_mut(library as usize) {
                    jams.push((start.as_secs() + off, finish.as_secs() + off));
                }
            }
            TraceEvent::AssumeMounted { .. }
            | TraceEvent::Mounted { .. }
            | TraceEvent::JobCompleted { .. }
            | TraceEvent::ReadFaulted { .. }
            | TraceEvent::JobLost { .. }
            | TraceEvent::FailedOver { .. } => {}
        }
    }

    /// Closes the books: clamps failure/jam dead time to the makespan
    /// (the larger of `end` and the latest observed instant), computes
    /// the exchange/transfer overlap per library, and fills `Idle` so
    /// every resource's categories sum to exactly the makespan.
    pub fn finish(mut self, end: SimTime) -> TimeBudget {
        let makespan = end.as_secs().max(self.high_water);
        let dpl = self.topo.drives_per_library as usize;
        let apl = self.topo.arms_per_library as usize;

        let drives = self
            .drives
            .iter()
            .enumerate()
            .map(|(d, spans)| {
                let mut spans = *spans;
                let fail_at = self.drive_fail_at[d];
                if fail_at < makespan {
                    spans.failed = makespan - fail_at;
                }
                spans.idle = (makespan - spans.busy() - spans.failed).max(0.0);
                ResourceBudget {
                    label: format!("L{}:D{}", d / dpl.max(1), d % dpl.max(1)),
                    spans,
                }
            })
            .collect();

        // Jam dead time is per library; every arm of the library carries
        // it (a jammed robot serves no arm).
        let jam_secs: Vec<f64> = self
            .jams
            .iter_mut()
            .map(|windows| merged_secs(windows, makespan))
            .collect();
        let arms = self
            .arms
            .iter()
            .enumerate()
            .map(|(a, spans)| {
                let mut spans = *spans;
                let lib = a / apl.max(1);
                spans.failed = jam_secs.get(lib).copied().unwrap_or(0.0);
                spans.idle = (makespan - spans.busy() - spans.failed).max(0.0);
                ResourceBudget {
                    label: format!("L{}:A{}", lib, a % apl.max(1)),
                    spans,
                }
            })
            .collect();

        // Partition the exchange windows by library (out-of-range
        // library ids, impossible with a well-formed topology, drop out
        // here exactly as a per-library bounds check would).
        let n_libs = self.topo.libraries as usize;
        let mut ex_by_lib: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_libs];
        for &(lib, s, f) in &self.exchanges {
            if let Some(ex) = ex_by_lib.get_mut(lib as usize) {
                ex.push((s, f));
            }
        }
        // Per-drive transfer lanes, partitioned from the flat list only
        // when some library actually ran exchanges (runs without tape
        // switches are common in drive-rich configurations, and pay
        // nothing here).
        let transfers = &self.transfers;
        let n_drives = self.topo.n_drives();
        let mut lanes: Option<Vec<Vec<(f64, f64)>>> = None;
        let overlap = ex_by_lib
            .iter()
            .enumerate()
            .map(|(lib, exchanges)| {
                if exchanges.is_empty() {
                    // Nothing to intersect: skip building the union.
                    return LibraryOverlap {
                        library: lib as u32,
                        exchange_s: 0.0,
                        overlapped_s: 0.0,
                    };
                }
                // Union the library's transfer windows once, then measure
                // each exchange window against the union. Each drive's
                // lane is already sorted and non-overlapping (drives
                // stream serially — an auditor invariant), so the union
                // is a sort-free k-way merge over the library's drives.
                let lanes = lanes.get_or_insert_with(|| {
                    let mut l = vec![Vec::new(); n_drives];
                    for &(d, s, f) in transfers {
                        if let Some(lane) = l.get_mut(d as usize) {
                            lane.push((s, f));
                        }
                    }
                    l
                });
                let union = merge_union(&lanes[lib * dpl..(lib + 1) * dpl]);
                let mut exchange_s = 0.0;
                let mut overlapped_s = 0.0;
                for &(s, f) in exchanges {
                    exchange_s += f - s;
                    // Binary-search the first union window that could
                    // intersect, then walk while windows overlap.
                    let start = union.partition_point(|w| w.1 < s);
                    for &(us, uf) in &union[start..] {
                        if us >= f {
                            break;
                        }
                        overlapped_s += (uf.min(f) - us.max(s)).max(0.0);
                    }
                }
                LibraryOverlap {
                    library: lib as u32,
                    exchange_s,
                    overlapped_s,
                }
            })
            .collect();

        TimeBudget {
            makespan_s: makespan,
            drives,
            arms,
            phases: self.phases,
            overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology {
            libraries: 1,
            drives_per_library: 2,
            arms_per_library: 1,
            tapes_per_library: 4,
            load_secs: 19.0,
            unload_secs: 19.0,
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn transfer_splits_into_seek_and_transfer() {
        let mut acc = TimeAccountant::new(topo());
        acc.observe(
            t(0.0),
            &TraceEvent::JobSubmitted {
                job: 0,
                tape: TapeKey::pack(0, 1),
            },
        );
        acc.observe(
            t(5.0),
            &TraceEvent::Transfer {
                drive: DriveKey::pack(0, 0),
                tape: TapeKey::pack(0, 1),
                job: 0,
                extents: 1,
                seek: t(2.0),
                transfer: t(3.0),
                start: t(5.0),
                finish: t(10.0),
            },
        );
        let b = acc.finish(t(10.0));
        assert_eq!(b.makespan_s, 10.0);
        assert_eq!(b.drives[0].spans.seek, 2.0);
        assert_eq!(b.drives[0].spans.transfer, 3.0);
        assert_eq!(b.drives[0].spans.idle, 5.0);
        // The other drive is all idle; the arm is all idle.
        assert_eq!(b.drives[1].spans.idle, 10.0);
        assert_eq!(b.arms[0].spans.idle, 10.0);
        assert!(b.sum_error() < 1e-9);
        // Phases: submitted at 0, started at 5, no mount in between.
        assert_eq!(b.phases.jobs, 1);
        assert_eq!(b.phases.queued_s, 5.0);
        assert_eq!(b.phases.waiting_mount_s, 0.0);
        assert_eq!(b.phases.serviced_s, 5.0);
    }

    #[test]
    fn occupied_exchange_splits_unload_and_load() {
        let mut acc = TimeAccountant::new(topo());
        let drive = DriveKey::pack(0, 0);
        acc.observe(
            t(1.0),
            &TraceEvent::Unmounted {
                drive,
                tape: TapeKey::pack(0, 0),
            },
        );
        // Emitted at 1.0: rewind until 4.0, then a 53.2 s window
        // (19 unload + 15.2 handling + 19 load).
        acc.observe(
            t(1.0),
            &TraceEvent::ExchangeBegun {
                drive,
                tape: TapeKey::pack(0, 2),
                arm: 0,
                start: t(4.0),
                finish: t(57.2),
            },
        );
        let b = acc.finish(t(60.0));
        let s = &b.drives[0].spans;
        assert_eq!(s.rewind, 3.0);
        assert_eq!(s.unload, 19.0);
        assert_eq!(s.load, 19.0);
        assert!((s.exchange - 15.2).abs() < 1e-9);
        assert!((b.arms[0].spans.exchange - 53.2).abs() < 1e-9);
        assert!(b.sum_error() < 1e-9);
    }

    #[test]
    fn empty_exchange_has_no_unload() {
        let mut acc = TimeAccountant::new(topo());
        // No Unmounted beforehand: injecting into an empty drive.
        acc.observe(
            t(0.0),
            &TraceEvent::ExchangeBegun {
                drive: DriveKey::pack(0, 1),
                tape: TapeKey::pack(0, 3),
                arm: 0,
                start: t(0.0),
                finish: t(26.6),
            },
        );
        let b = acc.finish(t(26.6));
        let s = &b.drives[1].spans;
        assert_eq!(s.unload, 0.0);
        assert_eq!(s.load, 19.0);
        assert!((s.exchange - 7.6).abs() < 1e-9);
    }

    #[test]
    fn waiting_mount_is_the_exchange_overlap() {
        let mut acc = TimeAccountant::new(topo());
        let tape = TapeKey::pack(0, 2);
        acc.observe(t(0.0), &TraceEvent::JobSubmitted { job: 0, tape });
        acc.observe(
            t(0.0),
            &TraceEvent::ExchangeBegun {
                drive: DriveKey::pack(0, 0),
                tape,
                arm: 0,
                start: t(2.0),
                finish: t(8.0),
            },
        );
        acc.observe(
            t(8.0),
            &TraceEvent::Transfer {
                drive: DriveKey::pack(0, 0),
                tape,
                job: 0,
                extents: 1,
                seek: t(0.0),
                transfer: t(4.0),
                start: t(8.0),
                finish: t(12.0),
            },
        );
        let b = acc.finish(t(12.0));
        assert_eq!(b.phases.waiting_mount_s, 6.0);
        assert_eq!(b.phases.queued_s, 2.0);
        assert_eq!(b.phases.serviced_s, 4.0);
    }

    #[test]
    fn failure_and_jam_become_failed_time() {
        let mut acc = TimeAccountant::new(topo());
        acc.observe(
            t(50.0),
            &TraceEvent::DriveFailed {
                drive: DriveKey::pack(0, 1),
                at: t(40.0),
            },
        );
        // Overlapping jams merge: [10, 20] ∪ [15, 30] = 20 s.
        for (s, f) in [(10.0, 20.0), (15.0, 30.0)] {
            acc.observe(
                t(0.0),
                &TraceEvent::RobotJammed {
                    library: 0,
                    start: t(s),
                    finish: t(f),
                },
            );
        }
        let b = acc.finish(t(100.0));
        assert_eq!(b.drives[1].spans.failed, 60.0);
        assert_eq!(b.drives[1].spans.idle, 40.0);
        assert_eq!(b.arms[0].spans.failed, 20.0);
        assert_eq!(b.arms[0].spans.idle, 80.0);
        assert!(b.sum_error() < 1e-9);
    }

    #[test]
    fn overlap_ratio_counts_hidden_exchanges() {
        let mut acc = TimeAccountant::new(topo());
        let mk_transfer = |job: u32, start: f64, finish: f64| TraceEvent::Transfer {
            drive: DriveKey::pack(0, 0),
            tape: TapeKey::pack(0, 0),
            job,
            extents: 1,
            seek: t(0.0),
            transfer: t(finish - start),
            start: t(start),
            finish: t(finish),
        };
        // Transfers cover [0, 10]; exchange [5, 15] is half hidden.
        acc.observe(t(0.0), &mk_transfer(0, 0.0, 10.0));
        acc.observe(
            t(0.0),
            &TraceEvent::ExchangeBegun {
                drive: DriveKey::pack(0, 1),
                tape: TapeKey::pack(0, 1),
                arm: 0,
                start: t(5.0),
                finish: t(15.0),
            },
        );
        let b = acc.finish(t(15.0));
        assert_eq!(b.overlap[0].exchange_s, 10.0);
        assert_eq!(b.overlap[0].overlapped_s, 5.0);
        assert_eq!(b.overlap[0].ratio(), 0.5);
    }

    #[test]
    fn shifted_observation_moves_all_windows() {
        let mut acc = TimeAccountant::new(topo());
        acc.observe_shifted(
            t(100.0),
            t(0.0),
            &TraceEvent::Transfer {
                drive: DriveKey::pack(0, 0),
                tape: TapeKey::pack(0, 0),
                job: 0,
                extents: 1,
                seek: t(1.0),
                transfer: t(2.0),
                start: t(0.0),
                finish: t(3.0),
            },
        );
        let b = acc.finish(t(0.0));
        // The makespan floor follows the shifted finish.
        assert_eq!(b.makespan_s, 103.0);
        assert_eq!(b.drives[0].spans.seek, 1.0);
        assert_eq!(b.drives[0].spans.idle, 100.0);
    }

    #[test]
    fn idle_never_negative_even_with_busy_books() {
        let mut acc = TimeAccountant::new(topo());
        acc.observe(
            t(0.0),
            &TraceEvent::Transfer {
                drive: DriveKey::pack(0, 0),
                tape: TapeKey::pack(0, 0),
                job: 0,
                extents: 1,
                seek: t(0.0),
                transfer: t(10.0),
                start: t(0.0),
                finish: t(10.0),
            },
        );
        // Close at an `end` earlier than the observed high water: the
        // makespan must stretch, not the idle go negative.
        let b = acc.finish(t(1.0));
        assert_eq!(b.makespan_s, 10.0);
        assert!(b.drives.iter().all(|d| d.spans.idle >= 0.0));
    }
}
