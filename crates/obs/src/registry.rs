//! A small name-keyed metrics registry: counters, gauges and fixed-bucket
//! histograms with cheap index handles.
//!
//! Registration (`counter`/`gauge`/`histogram`) resolves a name to a
//! handle once; the hot path then updates through the handle with a bare
//! vector index — no hashing, no string comparison. Registries from
//! independent runs [`MetricsRegistry::merge`] by name: counters and
//! histogram buckets add, gauges keep the maximum, so merging is
//! associative and commutative regardless of run order (the property
//! tests in `crates/obs/tests` pin this).
//!
//! Histogram percentiles are bucket estimates: the reported value is the
//! upper edge of the bucket holding the requested order statistic
//! (clamped to the observed extrema), so it brackets the exact
//! [`tapesim_des::stats::Samples::percentile`] at the same rank to
//! within one bucket width — close enough to steer, cheap enough to
//! keep always-on.

use serde::{Deserialize, Serialize};

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: `bounds` are strictly increasing upper
/// edges; one overflow bucket catches everything above the last edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bucket edges, strictly increasing.
    bounds: Vec<f64>,
    /// Observation counts per bucket; `len == bounds.len() + 1` (the
    /// last entry is the overflow bucket).
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observed values.
    sum: f64,
    /// Smallest observed value (`+inf` when empty).
    min: f64,
    /// Largest observed value (`-inf` when empty).
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (strictly increasing edges).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.is_sorted_by(|a, b| a < b),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b < x);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The bucket edges this histogram was built over.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket estimate of the `p`-th percentile (`p` in `[0, 100]`; NaN
    /// when empty): the upper edge of the bucket containing the
    /// nearest-rank order statistic, clamped to the observed `[min, max]`.
    /// For values inside the bounded range this brackets the exact
    /// percentile at the same rank to within one bucket width.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * (self.count - 1) as f64;
        let target = rank.round() as u64 + 1; // 1-based cumulative target
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let edge = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.max, // overflow bucket
                };
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s observations (bucket-wise).
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ — merging is only defined
    /// over identically shaped histograms.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A registry of named metrics for one run, mergeable across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn find<T>(items: &[(String, T)], name: &str) -> Option<usize> {
        items.iter().position(|(n, _)| n == name)
    }

    /// Registers (or finds) the counter `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        CounterId(match Self::find(&self.counters, name) {
            Some(i) => i,
            None => {
                self.counters.push((name.to_string(), 0));
                self.counters.len() - 1
            }
        })
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(match Self::find(&self.gauges, name) {
            Some(i) => i,
            None => {
                self.gauges.push((name.to_string(), 0.0));
                self.gauges.len() - 1
            }
        })
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Registers (or finds) the histogram `name` over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `name` exists with a different bucket layout.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        HistogramId(match Self::find(&self.histograms, name) {
            Some(i) => {
                assert_eq!(
                    self.histograms[i].1.bounds(),
                    bounds,
                    "histogram {name:?} re-registered with different bounds"
                );
                i
            }
            None => {
                self.histograms
                    .push((name.to_string(), Histogram::new(bounds)));
                self.histograms.len() - 1
            }
        })
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.histograms[id.0].1.observe(x);
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks a counter value up by name (None when unregistered).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        Self::find(&self.counters, name).map(|i| self.counters[i].1)
    }

    /// Looks a gauge value up by name (None when unregistered).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        Self::find(&self.gauges, name).map(|i| self.gauges[i].1)
    }

    /// Looks a histogram up by name (None when unregistered).
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        Self::find(&self.histograms, name).map(|i| &self.histograms[i].1)
    }

    /// All counters as `(name, value)` pairs, in registration order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges as `(name, value)` pairs, in registration order.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// All histograms as `(name, histogram)` pairs, in registration order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Folds `other` into `self` by metric name: counters and histogram
    /// buckets add, gauges keep the maximum. Metrics unknown to `self`
    /// are adopted. Associative and commutative up to registration order
    /// (use [`MetricsRegistry::canonical`] for order-independent
    /// comparison).
    ///
    /// # Panics
    ///
    /// Panics if a histogram name is shared with a different bucket
    /// layout (see [`Histogram::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            match Self::find(&self.counters, name) {
                Some(i) => self.counters[i].1 += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match Self::find(&self.gauges, name) {
                Some(i) => self.gauges[i].1 = self.gauges[i].1.max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match Self::find(&self.histograms, name) {
                Some(i) => self.histograms[i].1.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// A copy with every metric family sorted by name — the
    /// registration-order-independent form two merged registries are
    /// compared in.
    pub fn canonical(&self) -> MetricsRegistry {
        let mut out = self.clone();
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Freezes the registry into a canonically ordered, sequence-stamped
    /// [`RegistrySnapshot`]. Two registries holding the same metrics in
    /// different registration orders snapshot identically (same `seq`),
    /// so periodic serve snapshots diff cleanly across runs and shard
    /// interleavings.
    pub fn snapshot(&self, seq: u64) -> RegistrySnapshot {
        RegistrySnapshot {
            seq,
            registry: self.canonical(),
        }
    }
}

/// A point-in-time, canonically ordered view of a [`MetricsRegistry`]:
/// what a long-running service publishes on its snapshot cadence. The
/// canonical ordering (every family sorted by name) makes snapshots from
/// equivalent runs comparable with `==` and their renders diffable line
/// by line, regardless of metric registration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Monotonic snapshot sequence number within one run.
    pub seq: u64,
    /// The metrics, every family in canonical (name-sorted) order.
    pub registry: MetricsRegistry,
}

impl RegistrySnapshot {
    /// The service health state encoded in this snapshot's
    /// `serve.health` gauge (0 = healthy, 1 = degraded, 2+ =
    /// overloaded), as a stable lowercase word — `None` when the run
    /// carried no health state machine.
    pub fn health(&self) -> Option<&'static str> {
        self.registry.gauge_by_name("serve.health").map(|v| {
            if v >= 2.0 {
                "overloaded"
            } else if v >= 1.0 {
                "degraded"
            } else {
                "healthy"
            }
        })
    }

    /// Renders the snapshot as stable `name value` lines — counters, then
    /// gauges, then histograms (count/mean/min/max), each family sorted by
    /// name. Equal snapshots render byte-identically. Degraded-mode runs
    /// (a `serve.health` gauge is present) lead with a `# health` line so
    /// the live view shows the state machine without parsing gauges.
    pub fn render(&self) -> String {
        let mut out = format!("# snapshot seq={}\n", self.seq);
        if let Some(state) = self.health() {
            out.push_str(&format!("# health {state}\n"));
        }
        for (name, v) in self.registry.counters() {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in self.registry.gauges() {
            out.push_str(&format!("gauge {name} {v:.6}\n"));
        }
        for (name, h) in self.registry.histograms() {
            out.push_str(&format!(
                "histogram {name} count={} mean={:.6} min={:.6} max={:.6}\n",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("served");
        let g = reg.gauge("utilisation");
        reg.inc(c);
        reg.add(c, 4);
        reg.set(g, 0.75);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), 0.75);
        assert_eq!(reg.counter_by_name("served"), Some(5));
        assert_eq!(reg.counter_by_name("absent"), None);
        // Re-registration returns the same handle.
        assert_eq!(reg.counter("served"), c);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for x in [0.5, 1.5, 1.7, 3.0, 10.0] {
            h.observe(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 10.0);
        // p0 → first order stat's bucket edge (clamp leaves 1.0 as is).
        assert_eq!(h.percentile(0.0), 1.0);
        // p100 → overflow bucket → observed max.
        assert_eq!(h.percentile(100.0), 10.0);
        assert!(h.percentile(50.0) <= 2.0);
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::new(&[1.0]);
        assert!(h.percentile(50.0).is_nan());
        assert!(h.mean().is_nan());
        assert!(h.min().is_nan());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("mounts");
        a.add(c, 3);
        let ha = a.histogram("sojourn", &[10.0, 100.0]);
        a.observe(ha, 5.0);

        let mut b = MetricsRegistry::new();
        let hb = b.histogram("sojourn", &[10.0, 100.0]);
        b.observe(hb, 50.0);
        let c2 = b.counter("mounts");
        b.add(c2, 2);
        let g = b.gauge("peak");
        b.set(g, 1.5);

        a.merge(&b);
        assert_eq!(a.counter_by_name("mounts"), Some(5));
        assert_eq!(a.gauge_by_name("peak"), Some(1.5));
        let h = a.histogram_by_name("sojourn").map(Histogram::counts);
        assert_eq!(h, Some([1u64, 1, 0].as_slice()));
    }

    #[test]
    fn snapshot_is_registration_order_independent() {
        // Same metrics, registered in opposite orders within each family.
        let mut a = MetricsRegistry::new();
        let ca = a.counter("served");
        let la = a.counter("lost");
        let ga = a.gauge("depth");
        let ha = a.histogram("sojourn", &[10.0]);
        a.add(ca, 7);
        a.add(la, 1);
        a.set(ga, 3.0);
        a.observe(ha, 4.0);

        let mut b = MetricsRegistry::new();
        let hb = b.histogram("sojourn", &[10.0]);
        let gb = b.gauge("depth");
        let lb = b.counter("lost");
        let cb = b.counter("served");
        b.observe(hb, 4.0);
        b.set(gb, 3.0);
        b.add(lb, 1);
        b.add(cb, 7);

        assert_ne!(a, b, "registration order differs");
        assert_eq!(a.snapshot(2), b.snapshot(2), "snapshots are canonical");
        assert_eq!(a.snapshot(2).render(), b.snapshot(2).render());
        assert_ne!(a.snapshot(2), b.snapshot(3), "seq is part of identity");
    }

    #[test]
    fn snapshot_render_is_stable() {
        let mut reg = MetricsRegistry::new();
        let z = reg.counter("zeta");
        let a = reg.counter("alpha");
        reg.add(z, 1);
        reg.add(a, 2);
        let h = reg.histogram("lat", &[1.0]);
        reg.observe(h, 0.5);
        let text = reg.snapshot(9).render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# snapshot seq=9");
        assert_eq!(lines[1], "counter alpha 2", "name-sorted, not reg-order");
        assert_eq!(lines[2], "counter zeta 1");
        assert!(lines[3].starts_with("histogram lat count=1"));
    }

    #[test]
    fn degraded_mode_render_leads_with_health_state() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("serve.served");
        reg.add(c, 3);
        // No health gauge: no health line, exactly as before.
        let snap = reg.snapshot(1);
        assert_eq!(snap.health(), None);
        assert!(!snap.render().contains("# health"));
        // With the gauge: a stable `# health <state>` second line.
        let g = reg.gauge("serve.health");
        for (value, state) in [(0.0, "healthy"), (1.0, "degraded"), (2.0, "overloaded")] {
            reg.set(g, value);
            let snap = reg.snapshot(2);
            assert_eq!(snap.health(), Some(state));
            let text = snap.render();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines[0], "# snapshot seq=2");
            assert_eq!(lines[1], format!("# health {state}"));
        }
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _h = Histogram::new(&[2.0, 1.0]);
    }
}
