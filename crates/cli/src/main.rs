//! `tapesim` — command-line front end for the parallel tape storage
//! library.
//!
//! ```text
//! tapesim generate --objects 30000 --requests 300 --alpha 0.3 -o workload.json
//! tapesim place    -w workload.json --scheme parallel-batch --m 4 -o placement.json
//! tapesim simulate -w workload.json -p placement.json --samples 200
//! tapesim serve    -w workload.json -p placement.json --request 0
//! tapesim serve    --campaign --smoke
//! tapesim serve    --chaos --smoke
//! tapesim audit    -w workload.json -p placement.json --samples 200
//! tapesim inspect  -p placement.json
//! ```

use tapesim_cli::args::Args;
use tapesim_cli::commands;

const USAGE: &str = "\
tapesim — object placement in parallel tape storage systems (ICPP'06 reproduction)

USAGE: tapesim <command> [flags]

COMMANDS:
  generate   synthesise a workload (§6 settings by default)
               --objects N --requests N --min-objects N --max-objects N
               --alpha A --avg-object-mb MB --seed S -o FILE
  place      compute a placement
               -w WORKLOAD --scheme parallel-batch|object-prob|cluster-prob
               --m M --libraries N --tapes T -o FILE
  simulate   serve a popularity-sampled request stream
               -w WORKLOAD -p PLACEMENT --samples N --seed S --m M [--json]
               [--seek-policy greedy|exact|approx|auto]  (in-tape service
               order: greedy sweep, exact LTSP DP, ratio-2 approx, or
               auto = exact for small batches; default TAPESIM_SEEK or
               greedy)
  serve      serve one pre-defined request and show the decomposition
               -w WORKLOAD -p PLACEMENT --request RANK --m M [--trace]
             or, with --campaign, run the long-running sharded service
             under a sustained load campaign (per-library scheduler
             actors, bounded ingestion, periodic metric snapshots,
             audited; writes BENCH_serve.json unless --smoke)
               --campaign [--requests N] [--rate PER_HOUR] [--seed S]
               [--shards N] [--scheme all|pbp|opp|cpp]
               [--policy all|fcfs|batch|sltf] [--m M] [--max-batch N]
               [--channel-bound N] [--snapshot-every N]
               [--parallel on|off] [--threads N]  (shard-thread count:
               --shards, then --threads, then one per library; off = 1)
               [--seek-policy greedy|exact|approx|auto] [--smoke]
               [--check] [--json]
             or, with --chaos, run the campaign supervised under a
             nonzero hardware fault plan plus seeded shard kills and
             stalls: dead shards restart from checkpoint replay, a
             health ladder sheds at admission when overloaded, and
             every request is accounted (served + lost + shed +
             rejected; writes BENCH_serve_faults.json unless --smoke)
               --chaos [--chaos-seed S] [--fault-seed S] [--intensity X]
               [plus all --campaign flags] [--smoke] [--check] [--json]
  audit      replay a sampled stream with tracing on and check the DES
             invariants (drive/robot exclusivity, mount pairing, ...)
               -w WORKLOAD -p PLACEMENT --samples N --seed S --m M
  sched      run the concurrent scheduler over a Poisson arrival stream,
             sweeping placement schemes x policies, audited by default
               -w WORKLOAD --scheme all|pbp|opp|cpp --policy all|fcfs|batch|sltf
               --rate PER_HOUR --samples N --seed S --m M --max-batch N
               [--smoke] [--json] [--no-audit] [--audit-mode streaming|batch]
               [--seek-policy greedy|exact|approx|auto]
               [--parallel on|off] [--threads N]  (default: TAPESIM_PARALLEL /
               TAPESIM_THREADS; multi-library runs execute one partition per
               library under conservative time windows, bit-identical)
  faults     rerun the scheduler sweep under a seeded fault plan (drive
             failures, robot jams, media bad spots) with retry, replica
             failover and availability metrics; always audited
               -w WORKLOAD --scheme all|pbp|opp|cpp --policy all|fcfs|batch|sltf
               --rate PER_HOUR --samples N --seed S --fault-seed S
               --intensity X --mtbf-hours H --jams-per-hour R
               --spots-per-tape R --replicate-gb GB [--smoke] [--json]
               [--audit-mode streaming|batch] [--parallel on|off] [--threads N]
               [--seek-policy greedy|exact|approx|auto]
  report     explain a run at resource granularity: per-drive/per-arm span
             time budgets (seek/rewind/transfer/load/unload/exchange/idle/
             failed, summing to the makespan), job-phase means, robot-
             exchange overlap ratios and a signed run manifest per scheme
               -w WORKLOAD --scheme all|pbp|opp|cpp --policy all|fcfs|batch|sltf
               --rate PER_HOUR --samples N --seed S --m M --max-batch N
               [--smoke] [--json]
  inspect    summarise a placement (batches, per-tape fill map)
               -p PLACEMENT
  help       show this message
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let rest = &argv[1..];
    let result = match command {
        "generate" => Args::parse(
            rest,
            &[
                "objects",
                "requests",
                "min-objects",
                "max-objects",
                "alpha",
                "avg-object-mb",
                "seed",
                "out",
            ],
            &[],
        )
        .map_err(Into::into)
        .and_then(|a| commands::generate(&a)),
        "place" => Args::parse(
            rest,
            &["workload", "scheme", "m", "libraries", "tapes", "out"],
            &[],
        )
        .map_err(Into::into)
        .and_then(|a| commands::place(&a)),
        "simulate" => Args::parse(
            rest,
            &[
                "workload",
                "placement",
                "m",
                "samples",
                "seed",
                "seek-policy",
            ],
            &["json"],
        )
        .map_err(Into::into)
        .and_then(|a| commands::simulate(&a)),
        "serve" => Args::parse(
            rest,
            &[
                "workload",
                "placement",
                "m",
                "request",
                "scheme",
                "policy",
                "rate",
                "requests",
                "seed",
                "shards",
                "max-batch",
                "channel-bound",
                "snapshot-every",
                "libraries",
                "tapes",
                "chaos-seed",
                "fault-seed",
                "intensity",
                "parallel",
                "threads",
                "seek-policy",
            ],
            &["trace", "campaign", "chaos", "smoke", "check", "json"],
        )
        .map_err(Into::into)
        .and_then(|a| commands::serve(&a)),
        "audit" => Args::parse(
            rest,
            &["workload", "placement", "m", "samples", "seed"],
            &[],
        )
        .map_err(Into::into)
        .and_then(|a| commands::audit(&a)),
        "sched" => Args::parse(
            rest,
            &[
                "workload",
                "scheme",
                "policy",
                "rate",
                "samples",
                "seed",
                "m",
                "max-batch",
                "libraries",
                "tapes",
                "audit-mode",
                "parallel",
                "threads",
                "seek-policy",
            ],
            &["json", "smoke", "no-audit"],
        )
        .map_err(Into::into)
        .and_then(|a| commands::sched(&a)),
        "faults" => Args::parse(
            rest,
            &[
                "workload",
                "scheme",
                "policy",
                "rate",
                "samples",
                "seed",
                "m",
                "max-batch",
                "libraries",
                "tapes",
                "fault-seed",
                "intensity",
                "mtbf-hours",
                "jams-per-hour",
                "spots-per-tape",
                "replicate-gb",
                "audit-mode",
                "parallel",
                "threads",
                "seek-policy",
            ],
            &["json", "smoke"],
        )
        .map_err(Into::into)
        .and_then(|a| commands::faults(&a)),
        "report" => Args::parse(
            rest,
            &[
                "workload",
                "scheme",
                "policy",
                "rate",
                "samples",
                "seed",
                "m",
                "max-batch",
                "libraries",
                "tapes",
            ],
            &["json", "smoke"],
        )
        .map_err(Into::into)
        .and_then(|a| commands::report(&a)),
        "inspect" => Args::parse(rest, &["placement"], &[])
            .map_err(Into::into)
            .and_then(|a| commands::inspect(&a)),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
