//! Minimal argument parsing (no external dependency).
//!
//! Flags are `--name value` (or `--name=value`); `-o` is accepted as an
//! alias for `--out`, `-w` for `--workload`, `-p` for `--placement`.
//! Unknown flags are errors, listing the valid ones — small CLIs get no
//! benefit from clap's weight, but they must not silently ignore typos.

use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn canonical(name: &str) -> &str {
    match name {
        "o" => "out",
        "w" => "workload",
        "p" => "placement",
        other => other,
    }
}

impl Args {
    /// Parses `argv` (after the subcommand) against `allowed` value-flags
    /// and `allowed_bool` presence-flags.
    pub fn parse(
        argv: &[String],
        allowed: &[&str],
        allowed_bool: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let raw = &argv[i];
            let stripped = raw
                .strip_prefix("--")
                .or_else(|| raw.strip_prefix('-'))
                .ok_or_else(|| ArgError(format!("expected a flag, got '{raw}'")))?;
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (stripped, None),
            };
            let name = canonical(name).to_string();
            if allowed_bool.contains(&name.as_str()) {
                if inline.is_some() {
                    return Err(ArgError(format!("flag --{name} takes no value")));
                }
                out.flags.push(name);
                i += 1;
                continue;
            }
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name}; valid flags: {}",
                    allowed
                        .iter()
                        .chain(allowed_bool)
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value = match inline {
                Some(v) => v,
                None => {
                    i += 1;
                    argv.get(i)
                        .cloned()
                        .ok_or_else(|| ArgError(format!("flag --{name} needs a value")))?
                }
            };
            if out.values.insert(name.clone(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
            i += 1;
        }
        Ok(out)
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Parsed numeric value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{name}: cannot parse '{v}'"))),
        }
    }

    /// Whether a presence-flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_aliases_and_bools() {
        let a = Args::parse(
            &argv("--objects 500 -o out.json --alpha=0.7 --json"),
            &["objects", "out", "alpha"],
            &["json"],
        )
        .unwrap();
        assert_eq!(a.get("objects"), Some("500"));
        assert_eq!(a.get("out"), Some("out.json"));
        assert_eq!(a.get_or::<f64>("alpha", 0.3).unwrap(), 0.7);
        assert!(a.has("json"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(""), &["seed"], &[]).unwrap();
        assert_eq!(a.get_or::<u64>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn unknown_flag_lists_valid_ones() {
        let err = Args::parse(&argv("--bogus 1"), &["objects"], &["json"]).unwrap_err();
        assert!(err.0.contains("--objects"));
        assert!(err.0.contains("--json"));
    }

    #[test]
    fn missing_value_and_duplicates_rejected() {
        assert!(Args::parse(&argv("--objects"), &["objects"], &[]).is_err());
        assert!(Args::parse(&argv("--objects 1 --objects 2"), &["objects"], &[]).is_err());
        assert!(Args::parse(&argv("--json=1"), &[], &["json"]).is_err());
        assert!(Args::parse(&argv("stray"), &[], &[]).is_err());
    }

    #[test]
    fn require_and_parse_errors() {
        let a = Args::parse(&argv("--alpha abc"), &["alpha"], &[]).unwrap();
        assert!(a.require("alpha").is_ok());
        assert!(a.require("seed").is_err());
        assert!(a.get_or::<f64>("alpha", 0.0).is_err());
    }
}
