//! The `tapesim` subcommands.
//!
//! Each command is a pure function from parsed [`Args`] to a printable
//! report (file I/O aside), so the test suite can drive them end-to-end
//! without spawning processes.

use crate::args::{ArgError, Args};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;
use tapesim_faults::{ChaosPlan, ChaosSpec, FaultPlan, FaultSpec};
use tapesim_model::specs::{lto3_drive, lto3_tape, stk_l80_library};
use tapesim_model::{Bytes, SystemConfig};
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchPlacement, Placement,
    PlacementPolicy, TapeRole,
};
use tapesim_sched::{
    run_scheduled, run_scheduled_faulty_parallel, run_scheduled_parallel, AuditMode,
    ParallelConfig, PolicyKind, SchedConfig,
};
use tapesim_serve::{serve_run, supervisor_run, HealthPolicy, ServeConfig, SuperviseConfig};
use tapesim_sim::{SeekPolicy, Simulator};
use tapesim_workload::{
    replicate_workload, ArrivalSpec, ObjectSizeSpec, ReplicationSpec, RequestSpec, Workload,
    WorkloadSpec,
};

/// A command failure with a user-facing message.
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CommandError {}

impl From<ArgError> for CommandError {
    fn from(e: ArgError) -> Self {
        CommandError(e.0)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError(format!("i/o error: {e}"))
    }
}

impl From<serde_json::Error> for CommandError {
    fn from(e: serde_json::Error) -> Self {
        CommandError(format!("json error: {e}"))
    }
}

/// Parses `--audit-mode streaming|batch` (default: streaming).
fn parse_audit_mode(args: &Args) -> Result<AuditMode, CommandError> {
    match args.get("audit-mode") {
        None | Some("streaming") => Ok(AuditMode::Streaming),
        Some("batch") => Ok(AuditMode::Batch),
        Some(other) => Err(CommandError(format!(
            "flag --audit-mode: expected 'streaming' or 'batch', got '{other}'"
        ))),
    }
}

fn read_workload(path: &str) -> Result<Workload, CommandError> {
    let json = std::fs::read_to_string(Path::new(path))?;
    Ok(serde_json::from_str(&json)?)
}

fn read_placement(path: &str) -> Result<Placement, CommandError> {
    let json = std::fs::read_to_string(Path::new(path))?;
    Ok(serde_json::from_str(&json)?)
}

fn system_from(args: &Args) -> Result<SystemConfig, CommandError> {
    let libraries: u16 = args.get_or("libraries", 3)?;
    let tapes: u16 = args.get_or("tapes", 80)?;
    let mut lib = stk_l80_library(lto3_drive(), lto3_tape());
    lib.tapes = tapes;
    SystemConfig::new(libraries, lib)
        .map_err(|e| CommandError(format!("invalid system configuration: {e}")))
}

/// `tapesim generate` — synthesise a workload and write it as JSON.
pub fn generate(args: &Args) -> Result<String, CommandError> {
    let spec = WorkloadSpec {
        objects: args.get_or("objects", 30_000u32)?,
        sizes: ObjectSizeSpec::default()
            .calibrated(Bytes::mb(args.get_or("avg-object-mb", 1_704u64)?)),
        requests: RequestSpec {
            count: args.get_or("requests", 300u32)?,
            min_objects: args.get_or("min-objects", 100u32)?,
            max_objects: args.get_or("max-objects", 150u32)?,
            count_shape: 1.0,
            alpha: args.get_or("alpha", 0.3f64)?,
        },
        seed: args.get_or("seed", 0x5EED_7A9Eu64)?,
    };
    let workload = spec.generate();
    let out = args.require("out")?;
    std::fs::write(out, serde_json::to_string(&workload)?)?;
    Ok(format!(
        "wrote {out}: {} objects ({:.1} TB), {} requests (avg {:.1} GB), alpha {}",
        workload.objects().len(),
        workload.total_bytes().as_gb() / 1000.0,
        workload.requests().len(),
        workload.avg_request_bytes().as_gb(),
        spec.requests.alpha,
    ))
}

/// `tapesim place` — compute a placement for a workload.
pub fn place(args: &Args) -> Result<String, CommandError> {
    let workload = read_workload(args.require("workload")?)?;
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let scheme = args.get("scheme").unwrap_or("parallel-batch");
    let policy: Box<dyn PlacementPolicy> = match scheme {
        "parallel-batch" | "pbp" => Box::new(ParallelBatchPlacement::with_m(m)),
        "object-prob" | "opp" => Box::new(ObjectProbabilityPlacement::default()),
        "cluster-prob" | "cpp" => Box::new(ClusterProbabilityPlacement::default()),
        other => {
            return Err(CommandError(format!(
                "unknown scheme '{other}' (parallel-batch | object-prob | cluster-prob)"
            )))
        }
    };
    let placement = policy
        .place(&workload, &system)
        .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
    let out = args.require("out")?;
    std::fs::write(out, serde_json::to_string(&placement)?)?;
    Ok(format!(
        "wrote {out}: {} on {} libraries — {} tapes in use ({} pinned, {} switch batches)",
        policy.display_name(),
        system.libraries,
        placement.n_used_tapes(),
        placement.pinned_tapes().len(),
        placement.max_switch_batch(),
    ))
}

/// `tapesim simulate` — serve a sampled request stream.
pub fn simulate(args: &Args) -> Result<String, CommandError> {
    let workload = read_workload(args.require("workload")?)?;
    let placement = read_placement(args.require("placement")?)?;
    placement
        .verify_against(&workload)
        .map_err(|e| CommandError(format!("placement does not match workload: {e}")))?;
    let m: u8 = args.get_or("m", 4)?;
    let samples: usize = args.get_or("samples", 200)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let mut sim = Simulator::with_natural_policy(placement, m).with_seek(seek_policy_from(args)?);
    let run = sim.run_sampled(&workload, samples, seed);
    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&run)?);
    }
    Ok(format!(
        "{} requests served\n\
         effective bandwidth : {:>9.1} MB/s (σ {:.1})\n\
         avg response        : {:>9.1} s\n\
         avg switch          : {:>9.1} s\n\
         avg seek            : {:>9.1} s\n\
         avg transfer        : {:>9.1} s\n\
         avg tape exchanges  : {:>9.1}",
        run.count(),
        run.avg_bandwidth_mbs(),
        run.bandwidth_stddev(),
        run.avg_response(),
        run.avg_switch(),
        run.avg_seek(),
        run.avg_transfer(),
        run.avg_switches(),
    ))
}

/// `tapesim serve` — serve one specific pre-defined request, or, with
/// `--campaign`, run the long-running sharded service under a sustained
/// load campaign (see [`campaign`]).
pub fn serve(args: &Args) -> Result<String, CommandError> {
    if args.has("chaos") {
        return chaos_campaign(args);
    }
    if args.has("campaign") {
        return campaign(args);
    }
    let workload = read_workload(args.require("workload")?)?;
    let placement = read_placement(args.require("placement")?)?;
    placement
        .verify_against(&workload)
        .map_err(|e| CommandError(format!("placement does not match workload: {e}")))?;
    let rank: usize = args.get_or("request", 0)?;
    let request = workload
        .requests()
        .get(rank)
        .ok_or_else(|| CommandError(format!("no request with rank {rank}")))?;
    let m: u8 = args.get_or("m", 4)?;
    let mut sim = Simulator::with_natural_policy(placement, m).with_seek(seek_policy_from(args)?);
    let (metrics, tracer) = sim.serve_traced(&request.objects);
    let timeline = if args.has("trace") {
        format!("\ntimeline:\n{tracer}")
    } else {
        String::new()
    };
    Ok(format!(
        "request {rank}: {} objects, {:.1} GB across {} tapes\n\
         response {:.1} s = switch {:.1} + seek {:.1} + transfer {:.1} \
         ({} exchanges, {:.1} s robot queueing)\n\
         effective bandwidth {:.1} MB/s",
        request.objects.len(),
        metrics.bytes.as_gb(),
        metrics.n_tapes,
        metrics.response,
        metrics.switch,
        metrics.seek,
        metrics.transfer,
        metrics.n_switches,
        metrics.robot_wait,
        metrics.bandwidth_mbs(),
    ) + &timeline)
}

/// One cell of the `tapesim serve --campaign` sweep: one placement
/// scheme × scheduling policy under the sustained arrival stream.
/// Virtual-time figures (sojourns, mounts, events) are deterministic;
/// `wall_s` and `requests_per_sec` are wall-clock measurements of the
/// service runtime on this machine.
#[derive(Debug, Serialize, Deserialize)]
struct ServeCell {
    scheme: String,
    policy: String,
    requests: u64,
    served: u64,
    lost: u64,
    snapshots: usize,
    wall_s: f64,
    requests_per_sec: f64,
    avg_sojourn_s: f64,
    p50_sojourn_s: f64,
    p99_sojourn_s: f64,
    mounts: u64,
    events: u64,
}

/// The `BENCH_serve.json` artifact: sustained-throughput and tail-
/// latency numbers for the sharded service, per scheme × policy.
#[derive(Debug, Serialize, Deserialize)]
struct ServeBench {
    bench: String,
    requests_per_cell: usize,
    total_requests: u64,
    rate_per_hour: f64,
    shards: usize,
    channel_bound: usize,
    snapshot_every: usize,
    cells: Vec<ServeCell>,
}

/// The built-in demand catalog for `serve --campaign`: 80 request
/// templates of 20–30 objects over a working set (~33 TB at 8 GB
/// calibration) that overflows the initially mounted capacity, so a
/// sustained campaign performs real tape exchanges (~3 mounts per
/// request) rather than streaming from always-mounted tapes. The
/// catalog is a set of *templates*; the campaign re-samples it by
/// popularity for however many requests the run ingests. At the default
/// 12/h arrival rate the queue is stable: sojourn percentiles are flat
/// in campaign length.
fn campaign_workload() -> Workload {
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(8192)),
        requests: RequestSpec {
            count: 80,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 5,
    }
    .generate()
}

fn serve_bench_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json")
}

/// `--check`: fail if any cell's sustained requests/sec dropped more
/// than 30% below the committed `BENCH_serve.json` (same convention as
/// the perf bench gate).
fn serve_check(current: &ServeBench) -> Result<String, CommandError> {
    let path = serve_bench_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        CommandError(format!(
            "serve --check: cannot read committed BENCH_serve.json: {e}"
        ))
    })?;
    let committed: ServeBench = serde_json::from_str(&text).map_err(|e| {
        CommandError(format!(
            "serve --check: cannot parse committed BENCH_serve.json: {e}"
        ))
    })?;
    let mut failures = Vec::new();
    for old in &committed.cells {
        let Some(new) = current
            .cells
            .iter()
            .find(|c| c.scheme == old.scheme && c.policy == old.policy)
        else {
            failures.push(format!(
                "cell {}/{} missing from this run",
                old.scheme, old.policy
            ));
            continue;
        };
        let floor = old.requests_per_sec * 0.7;
        if new.requests_per_sec < floor {
            failures.push(format!(
                "{}/{}: {:.0} requests/s is more than 30% below the committed {:.0}",
                old.scheme, old.policy, new.requests_per_sec, old.requests_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok("serve --check: no cell regressed >30% vs committed baseline".to_string())
    } else {
        Err(CommandError(format!(
            "serve --check FAILED:\n{}",
            failures.join("\n")
        )))
    }
}

/// `tapesim serve --campaign` — the closed-loop load harness over the
/// sharded service ([`tapesim_serve::serve_run`]): ingest a sustained
/// Poisson request stream, fan it out to per-library scheduler shards,
/// and report sustained wall-clock throughput and virtual-time tail
/// latency per placement scheme × policy.
///
/// The full campaign (no `--smoke`) ingests 175 000 requests per cell —
/// 3 schemes × 2 policies = 1.05 million audited requests — and rewrites
/// `BENCH_serve.json` at the workspace root. `--smoke` runs a reduced
/// but still multi-shard, still audited campaign and leaves the artifact
/// untouched; `--check` gates against the committed artifact. Any audit
/// violation, conservation breach or rejected submission is a non-zero
/// exit.
fn campaign(args: &Args) -> Result<String, CommandError> {
    let smoke = args.has("smoke");
    let check = args.has("check");
    let workload = match args.get("workload") {
        Some(path) => read_workload(path)?,
        None => campaign_workload(),
    };
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let requests: usize = args.get_or("requests", if smoke { 10_000 } else { 175_000 })?;
    let rate: f64 = args.get_or("rate", 12.0)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let shards: usize = serve_shards(args, system.libraries as usize)?;
    let channel_bound: usize = args.get_or("channel-bound", 256)?;
    let snapshot_every: usize = args.get_or("snapshot-every", (requests / 8).max(1))?;
    let max_batch: usize = args.get_or("max-batch", 0)?;
    let spec = ArrivalSpec {
        per_hour: rate,
        seed,
    };
    let plan = FaultPlan::zero(&system);
    let no_alternates: BTreeMap<_, _> = BTreeMap::new();

    let schemes = parse_schemes(args)?;
    // The campaign defaults to the two policies that keep a sustained
    // queue stable (fcfs melts down at campaign rates, which is a
    // finding, not a throughput baseline); `--policy` overrides.
    let policies = match args.get("policy") {
        Some(_) => parse_policies(args)?,
        None => vec![PolicyKind::BatchByTape, PolicyKind::SltfTape],
    };

    let cfg = ServeConfig::new(spec, requests)
        .with_shards(shards)
        .with_max_batch(max_batch)
        .with_audit(true)
        .with_seek(seek_policy_from(args)?)
        .with_channel_bound(channel_bound)
        .with_snapshot_every(snapshot_every);

    let mut cells = Vec::new();
    let mut dirty = Vec::new();
    let mut total = 0u64;
    let mut effective_shards = shards.max(1);
    for scheme in schemes {
        let policy = placement_for(scheme, m);
        let placement = policy
            .place(&workload, &system)
            .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
        for &kind in &policies {
            let sim = Simulator::with_natural_policy(placement.clone(), m);
            let t = Instant::now();
            let report = serve_run(&sim, &workload, kind, &cfg, &plan, &no_alternates);
            let wall = t.elapsed().as_secs_f64();
            for audit in report.reports.iter().filter(|r| !r.is_clean()) {
                dirty.push(format!("{scheme}/{}: {audit}", kind.label()));
            }
            if report.submitted != report.served + report.lost || report.rejected != 0 {
                dirty.push(format!(
                    "{scheme}/{}: request conservation violated \
                     ({} submitted, {} served, {} lost, {} rejected)",
                    kind.label(),
                    report.submitted,
                    report.served,
                    report.lost,
                    report.rejected
                ));
            }
            total += report.submitted;
            effective_shards = report.shards;
            cells.push(ServeCell {
                scheme: scheme.to_string(),
                policy: kind.label().to_string(),
                requests: report.submitted,
                served: report.served,
                lost: report.lost,
                snapshots: report.snapshots.len(),
                wall_s: wall,
                requests_per_sec: if wall > 0.0 {
                    report.served as f64 / wall
                } else {
                    0.0
                },
                avg_sojourn_s: report.metrics.avg_sojourn(),
                p50_sojourn_s: report.metrics.sojourn_percentile(50.0),
                p99_sojourn_s: report.metrics.sojourn_percentile(99.0),
                mounts: report.metrics.mounts(),
                events: report.metrics.events(),
            });
        }
    }
    if !dirty.is_empty() {
        return Err(CommandError(format!(
            "serve campaign FAILED:\n{}",
            dirty.join("\n")
        )));
    }

    let bench = ServeBench {
        bench: "serve".to_string(),
        requests_per_cell: requests,
        total_requests: total,
        rate_per_hour: rate,
        shards: effective_shards,
        channel_bound,
        snapshot_every,
        cells,
    };

    let mut notes = Vec::new();
    if check {
        notes.push(serve_check(&bench)?);
    }
    if smoke {
        notes.push("smoke mode: BENCH_serve.json left untouched".to_string());
    } else {
        let path = serve_bench_path();
        let pretty = serde_json::to_string_pretty(&bench)?;
        std::fs::write(&path, pretty + "\n")?;
        notes.push(format!("wrote {}", path.display()));
    }

    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&bench)?);
    }
    let mut out = format!(
        "serve campaign: {} requests/cell at {rate}/h across {} shards \
         (seed {seed}, channel bound {channel_bound}, snapshot every \
         {snapshot_every}) — {total} total, audited\n\
         {:<15} {:<6} {:>8} {:>6} {:>5} {:>10} {:>12} {:>12} {:>12} {:>7}\n",
        requests,
        effective_shards,
        "scheme",
        "policy",
        "requests",
        "served",
        "lost",
        "req/s wall",
        "avg sojourn",
        "p50 sojourn",
        "p99 sojourn",
        "mounts",
    );
    for c in &bench.cells {
        out.push_str(&format!(
            "{:<15} {:<6} {:>8} {:>6} {:>5} {:>10.0} {:>11.1}s {:>11.1}s {:>11.1}s {:>7}\n",
            c.scheme,
            c.policy,
            c.requests,
            c.served,
            c.lost,
            c.requests_per_sec,
            c.avg_sojourn_s,
            c.p50_sojourn_s,
            c.p99_sojourn_s,
            c.mounts,
        ));
    }
    for note in &notes {
        out.push_str(&format!("{note}\n"));
    }
    Ok(out)
}

/// One cell of the `tapesim serve --chaos` sweep: one scheme × policy
/// under a nonzero hardware fault plan *and* a seeded chaos plan (shard
/// kills + stalls), supervised. Virtual-time figures and the whole
/// shed/lost/restart ledger are deterministic; `wall_s` and
/// `requests_per_sec` are wall-clock.
#[derive(Debug, Serialize, Deserialize)]
struct ChaosCell {
    scheme: String,
    policy: String,
    requests: u64,
    served: u64,
    lost: u64,
    shed: u64,
    rejected: u64,
    restarts: u64,
    failures: usize,
    availability: f64,
    wall_s: f64,
    requests_per_sec: f64,
    avg_sojourn_s: f64,
    p99_sojourn_s: f64,
    snapshots: usize,
}

/// The `BENCH_serve_faults.json` artifact: availability and tail
/// latency of the supervised service under sustained load with both
/// hardware faults and process chaos injected.
#[derive(Debug, Serialize, Deserialize)]
struct ChaosBench {
    bench: String,
    requests_per_cell: usize,
    total_requests: u64,
    rate_per_hour: f64,
    shards: usize,
    channel_bound: usize,
    snapshot_every: usize,
    fault_seed: u64,
    intensity: f64,
    chaos_seed: u64,
    kills_planned: usize,
    stalls_planned: usize,
    cells: Vec<ChaosCell>,
}

fn chaos_bench_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve_faults.json")
}

/// `--check`: the availability-regression gate. Fails if any cell's
/// availability dropped more than 0.05 (absolute) below the committed
/// `BENCH_serve_faults.json`, or its sustained requests/sec fell more
/// than 30% — the same convention as the throughput gate.
fn chaos_check(current: &ChaosBench) -> Result<String, CommandError> {
    let path = chaos_bench_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        CommandError(format!(
            "serve --chaos --check: cannot read committed BENCH_serve_faults.json: {e}"
        ))
    })?;
    let committed: ChaosBench = serde_json::from_str(&text).map_err(|e| {
        CommandError(format!(
            "serve --chaos --check: cannot parse committed BENCH_serve_faults.json: {e}"
        ))
    })?;
    let mut failures = Vec::new();
    for old in &committed.cells {
        let Some(new) = current
            .cells
            .iter()
            .find(|c| c.scheme == old.scheme && c.policy == old.policy)
        else {
            failures.push(format!(
                "cell {}/{} missing from this run",
                old.scheme, old.policy
            ));
            continue;
        };
        if new.availability < old.availability - 0.05 {
            failures.push(format!(
                "{}/{}: availability {:.3} is more than 0.05 below the committed {:.3}",
                old.scheme, old.policy, new.availability, old.availability
            ));
        }
        let floor = old.requests_per_sec * 0.7;
        if new.requests_per_sec < floor {
            failures.push(format!(
                "{}/{}: {:.0} requests/s is more than 30% below the committed {:.0}",
                old.scheme, old.policy, new.requests_per_sec, old.requests_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(
            "serve --chaos --check: no cell regressed (availability −0.05 / throughput −30%)"
                .to_string(),
        )
    } else {
        Err(CommandError(format!(
            "serve --chaos --check FAILED:\n{}",
            failures.join("\n")
        )))
    }
}

/// `tapesim serve --chaos` — the degraded-mode load harness: the same
/// sustained campaign as `serve --campaign`, but run under
/// [`tapesim_serve::supervisor_run`] with a **nonzero** hardware fault
/// plan (drive failures, robot jams, media bad spots, scaled by
/// `--intensity`) and a seeded [`ChaosPlan`] of shard kills and stalls.
/// Dead shards restart from their submission logs; a default
/// [`HealthPolicy`] sheds at admission if the cell goes queue-unstable.
/// Every cell must close its conservation ledger
/// (`submitted = served + lost + shed + rejected`) and audit clean, or
/// the exit is non-zero.
///
/// Writes `BENCH_serve_faults.json` unless `--smoke`; `--check` gates
/// availability (−0.05 absolute) and throughput (−30%) against the
/// committed artifact.
fn chaos_campaign(args: &Args) -> Result<String, CommandError> {
    let smoke = args.has("smoke");
    let check = args.has("check");
    let workload = match args.get("workload") {
        Some(path) => read_workload(path)?,
        None => campaign_workload(),
    };
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let requests: usize = args.get_or("requests", if smoke { 6_000 } else { 40_000 })?;
    let rate: f64 = args.get_or("rate", 12.0)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let shards: usize = serve_shards(args, system.libraries as usize)?;
    let channel_bound: usize = args.get_or("channel-bound", 256)?;
    let snapshot_every: usize = args.get_or("snapshot-every", (requests / 8).max(1))?;
    let max_batch: usize = args.get_or("max-batch", 0)?;
    let fault_seed: u64 = args.get_or("fault-seed", 23u64)?;
    let intensity: f64 = args.get_or("intensity", 1.0)?;
    let chaos_seed: u64 = args.get_or("chaos-seed", seed)?;
    let spec = ArrivalSpec {
        per_hour: rate,
        seed,
    };
    // The fault horizon covers the whole campaign span, and the rates
    // are span-relative (so the *count* of faults per run is stable
    // whatever `--requests` is): at intensity 1 expect ~4 failures per
    // drive and ~8 robot jams over the whole campaign.
    let span_hours = requests as f64 / rate.max(f64::EPSILON);
    let fault_spec = FaultSpec {
        horizon_hours: span_hours,
        drive_mtbf_hours: span_hours / 4.0,
        jams_per_hour: 8.0 / span_hours.max(f64::EPSILON),
        ..FaultSpec::moderate(fault_seed)
    }
    .scaled(intensity);
    let plan = FaultPlan::generate(&fault_spec, &system);
    // Chaos events land inside each shard's actual traffic (~1/shards
    // of the stream): a couple of kills and one stall expected per
    // shard, capped-exponential restart backoff.
    let horizon = (requests / shards.max(1)).max(1) as u64;
    let chaos = ChaosPlan::generate(&ChaosSpec::moderate(chaos_seed, horizon), shards.max(1));
    let sup = SuperviseConfig::new()
        .with_watchdog_ms(2_000)
        .with_health(HealthPolicy::default());
    let no_alternates: BTreeMap<_, _> = BTreeMap::new();

    let schemes = parse_schemes(args)?;
    let policies = match args.get("policy") {
        Some(_) => parse_policies(args)?,
        None => vec![PolicyKind::BatchByTape, PolicyKind::SltfTape],
    };

    let cfg = ServeConfig::new(spec, requests)
        .with_shards(shards)
        .with_max_batch(max_batch)
        .with_audit(true)
        .with_seek(seek_policy_from(args)?)
        .with_channel_bound(channel_bound)
        .with_snapshot_every(snapshot_every);

    let mut cells = Vec::new();
    let mut dirty = Vec::new();
    let mut total = 0u64;
    let mut effective_shards = shards.max(1);
    for scheme in schemes {
        let policy = placement_for(scheme, m);
        let placement = policy
            .place(&workload, &system)
            .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
        for &kind in &policies {
            let sim = Simulator::with_natural_policy(placement.clone(), m);
            let t = Instant::now();
            let report = supervisor_run(
                &sim,
                &workload,
                kind,
                &cfg,
                &plan,
                &no_alternates,
                &chaos,
                &sup,
            );
            let wall = t.elapsed().as_secs_f64();
            for audit in report.reports.iter().filter(|r| !r.is_clean()) {
                dirty.push(format!("{scheme}/{}: {audit}", kind.label()));
            }
            if report.submitted != report.served + report.lost + report.shed + report.rejected {
                dirty.push(format!(
                    "{scheme}/{}: conservation ledger does not close \
                     ({} submitted, {} served, {} lost, {} shed, {} rejected)",
                    kind.label(),
                    report.submitted,
                    report.served,
                    report.lost,
                    report.shed,
                    report.rejected
                ));
            }
            total += report.submitted;
            effective_shards = report.shards;
            cells.push(ChaosCell {
                scheme: scheme.to_string(),
                policy: kind.label().to_string(),
                requests: report.submitted,
                served: report.served,
                lost: report.lost,
                shed: report.shed,
                rejected: report.rejected,
                restarts: report.restarts,
                failures: report.failures.len(),
                availability: report.metrics.availability(),
                wall_s: wall,
                requests_per_sec: if wall > 0.0 {
                    report.served as f64 / wall
                } else {
                    0.0
                },
                avg_sojourn_s: report.metrics.avg_sojourn(),
                p99_sojourn_s: report.metrics.sojourn_percentile(99.0),
                snapshots: report.snapshots.len(),
            });
        }
    }
    if !dirty.is_empty() {
        return Err(CommandError(format!(
            "serve --chaos campaign FAILED:\n{}",
            dirty.join("\n")
        )));
    }

    let bench = ChaosBench {
        bench: "serve-faults".to_string(),
        requests_per_cell: requests,
        total_requests: total,
        rate_per_hour: rate,
        shards: effective_shards,
        channel_bound,
        snapshot_every,
        fault_seed,
        intensity,
        chaos_seed,
        kills_planned: chaos.n_kills(),
        stalls_planned: chaos.n_stalls(),
        cells,
    };

    let mut notes = Vec::new();
    if check {
        notes.push(chaos_check(&bench)?);
    }
    if smoke {
        notes.push("smoke mode: BENCH_serve_faults.json left untouched".to_string());
    } else {
        let path = chaos_bench_path();
        let pretty = serde_json::to_string_pretty(&bench)?;
        std::fs::write(&path, pretty + "\n")?;
        notes.push(format!("wrote {}", path.display()));
    }

    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&bench)?);
    }
    let mut out = format!(
        "serve chaos campaign: {} requests/cell at {rate}/h across {} shards \
         (seed {seed}, fault seed {fault_seed} ×{intensity}, chaos seed {chaos_seed}: \
         {} kills + {} stalls planned) — {total} total, supervised, audited\n\
         {:<15} {:<6} {:>8} {:>8} {:>5} {:>5} {:>6} {:>6} {:>11} {:>12}\n",
        requests,
        effective_shards,
        bench.kills_planned,
        bench.stalls_planned,
        "scheme",
        "policy",
        "served",
        "lost",
        "shed",
        "rest.",
        "avail",
        "req/s",
        "avg sojourn",
        "p99 sojourn",
    );
    for c in &bench.cells {
        out.push_str(&format!(
            "{:<15} {:<6} {:>8} {:>8} {:>5} {:>5} {:>6.3} {:>6.0} {:>10.1}s {:>11.1}s\n",
            c.scheme,
            c.policy,
            c.served,
            c.lost,
            c.shed,
            c.restarts,
            c.availability,
            c.requests_per_sec,
            c.avg_sojourn_s,
            c.p99_sojourn_s,
        ));
    }
    for note in &notes {
        out.push_str(&format!("{note}\n"));
    }
    Ok(out)
}

/// `tapesim audit` — serve a sampled request stream with tracing on and
/// run the DES invariant auditor over every per-request transcript.
///
/// The audited invariants (drive exclusivity, robot-arm exclusivity,
/// load/unload pairing, mount-before-read, exactly-once service, monotone
/// event times) are checked from the trace alone, independently of the
/// scheduler's own bookkeeping. Fails (non-zero exit) if any request's
/// transcript breaches an invariant.
pub fn audit(args: &Args) -> Result<String, CommandError> {
    let workload = read_workload(args.require("workload")?)?;
    let placement = read_placement(args.require("placement")?)?;
    placement
        .verify_against(&workload)
        .map_err(|e| CommandError(format!("placement does not match workload: {e}")))?;
    let m: u8 = args.get_or("m", 4)?;
    let samples: usize = args.get_or("samples", 200)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let mut sim = Simulator::with_natural_policy(placement, m);
    let (run, reports) = sim.run_sampled_audited(&workload, samples, seed);

    let entries: usize = reports.iter().map(|r| r.entries).sum();
    let transfers: usize = reports.iter().map(|r| r.transfers).sum();
    let exchanges: usize = reports.iter().map(|r| r.exchanges).sum();
    let dirty: Vec<_> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_clean())
        .collect();

    if !dirty.is_empty() {
        let mut msg = format!(
            "audit FAILED: {} of {} requests breached invariants\n",
            dirty.len(),
            reports.len()
        );
        for (i, report) in dirty {
            msg.push_str(&format!("request {i}: {report}"));
        }
        return Err(CommandError(msg));
    }
    Ok(format!(
        "audit clean: {} requests, {entries} trace entries \
         ({transfers} transfers, {exchanges} exchanges) — all invariants hold\n\
         effective bandwidth {:.1} MB/s, avg response {:.1} s",
        run.count(),
        run.avg_bandwidth_mbs(),
        run.avg_response(),
    ))
}

/// One row of `tapesim sched` output.
#[derive(Debug, Serialize)]
struct SchedRow {
    scheme: &'static str,
    policy: &'static str,
    served: u64,
    avg_wait_s: f64,
    avg_sojourn_s: f64,
    p50_sojourn_s: f64,
    p99_sojourn_s: f64,
    mounts: u64,
    utilisation: f64,
}

/// The deterministic built-in workload used by `tapesim sched --smoke`.
/// Sized so the requested working set overflows the initially mounted
/// capacity: the smoke run must exercise tape exchanges (and audit them),
/// not just stream from always-mounted tapes.
fn smoke_workload() -> Workload {
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
        requests: RequestSpec {
            count: 60,
            min_objects: 30,
            max_objects: 50,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 17,
    }
    .generate()
}

/// Resolves the `--scheme` sweep list shared by `sched` and `faults`.
fn parse_schemes(args: &Args) -> Result<Vec<&'static str>, CommandError> {
    match args.get("scheme").unwrap_or("all") {
        "all" => Ok(vec!["parallel-batch", "object-prob", "cluster-prob"]),
        "parallel-batch" | "pbp" => Ok(vec!["parallel-batch"]),
        "object-prob" | "opp" => Ok(vec!["object-prob"]),
        "cluster-prob" | "cpp" => Ok(vec!["cluster-prob"]),
        other => Err(CommandError(format!(
            "unknown scheme '{other}' (all | parallel-batch | object-prob | cluster-prob)"
        ))),
    }
}

/// Resolves the `--policy` sweep list shared by `sched` and `faults`.
fn parse_policies(args: &Args) -> Result<Vec<PolicyKind>, CommandError> {
    match args.get("policy").unwrap_or("all") {
        "all" => Ok(PolicyKind::ALL.to_vec()),
        other => Ok(vec![PolicyKind::parse(other).ok_or_else(|| {
            CommandError(format!(
                "unknown policy '{other}' (all | fcfs | batch | sltf)"
            ))
        })?]),
    }
}

/// The shard-thread count for `serve` campaigns: `--shards` wins, then
/// `--threads`, then one shard per library. `--parallel off` collapses
/// the service to a single shard thread — the sequential fallback.
fn serve_shards(args: &Args, libraries: usize) -> Result<usize, CommandError> {
    let par = parallel_config_from(args)?;
    let default = if args.get("parallel") == Some("off") {
        1
    } else if par.threads > 0 {
        par.threads
    } else {
        libraries
    };
    args.get_or("shards", default).map_err(Into::into)
}

/// Resolves the `--parallel on|off` / `--threads N` knobs shared by
/// `sched` and `faults`. The flags override the `TAPESIM_PARALLEL` /
/// `TAPESIM_THREADS` environment, which remains the default.
fn parallel_config_from(args: &Args) -> Result<ParallelConfig, CommandError> {
    let mut par = ParallelConfig::from_env();
    match args.get("parallel") {
        None => {}
        Some("on") => par.enabled = true,
        Some("off") => par.enabled = false,
        Some(other) => {
            return Err(CommandError(format!(
                "flag --parallel: expected on|off, got '{other}'"
            )))
        }
    }
    par.threads = args.get_or("threads", par.threads)?;
    Ok(par)
}

/// Resolves the `--seek-policy greedy|exact|approx|auto` knob shared by
/// `simulate`, `serve`, `sched` and `faults`. The flag overrides the
/// `TAPESIM_SEEK` environment variable; the default is the greedy sweep,
/// bit-identical to runs recorded before seek policies existed.
fn seek_policy_from(args: &Args) -> Result<SeekPolicy, CommandError> {
    match args.get("seek-policy") {
        None => Ok(SeekPolicy::from_env()),
        Some(text) => SeekPolicy::parse(text).ok_or_else(|| {
            CommandError(format!(
                "flag --seek-policy: expected greedy|exact|approx|auto, got '{text}'"
            ))
        }),
    }
}

/// Builds the placement policy for a canonical scheme name.
fn placement_for(scheme: &str, m: u8) -> Box<dyn PlacementPolicy> {
    match scheme {
        "parallel-batch" => Box::new(ParallelBatchPlacement::with_m(m)),
        "object-prob" => Box::new(ObjectProbabilityPlacement::default()),
        _ => Box::new(ClusterProbabilityPlacement::default()),
    }
}

/// `tapesim sched` — run the concurrent scheduler over an arrival stream,
/// sweeping placement schemes × scheduling policies, with trace auditing
/// on by default (non-zero exit on any invariant breach).
pub fn sched(args: &Args) -> Result<String, CommandError> {
    let smoke = args.has("smoke");
    let workload = if smoke {
        smoke_workload()
    } else {
        read_workload(args.require("workload")?)?
    };
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let samples: usize = args.get_or("samples", if smoke { 30 } else { 100 })?;
    let rate: f64 = args.get_or("rate", 12.0)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let max_batch: usize = args.get_or("max-batch", 0)?;
    let audit = !args.has("no-audit");
    let audit_mode = parse_audit_mode(args)?;
    let par = parallel_config_from(args)?;
    let seek = seek_policy_from(args)?;
    let spec = ArrivalSpec {
        per_hour: rate,
        seed,
    };

    let schemes = parse_schemes(args)?;
    let policies = parse_policies(args)?;

    let mut rows = Vec::new();
    let mut dirty = Vec::new();
    for scheme in schemes {
        let policy = placement_for(scheme, m);
        let placement = policy
            .place(&workload, &system)
            .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
        for &kind in &policies {
            let mut sim = Simulator::with_natural_policy(placement.clone(), m);
            let cfg = SchedConfig::new(spec, samples)
                .with_max_batch(max_batch)
                .with_audit(audit)
                .with_audit_mode(audit_mode)
                .with_seek(seek);
            let out =
                run_scheduled_parallel(&mut sim, &workload, kind.build().as_ref(), &cfg, &par);
            for report in out.reports.iter().filter(|r| !r.is_clean()) {
                dirty.push(format!("{scheme}/{}: {report}", kind.label()));
            }
            rows.push(SchedRow {
                scheme,
                policy: kind.label(),
                served: out.metrics.served(),
                avg_wait_s: out.metrics.avg_wait(),
                avg_sojourn_s: out.metrics.avg_sojourn(),
                p50_sojourn_s: out.metrics.sojourn_percentile(50.0),
                p99_sojourn_s: out.metrics.sojourn_percentile(99.0),
                mounts: out.metrics.mounts(),
                utilisation: out.metrics.utilisation(),
            });
        }
    }
    if !dirty.is_empty() {
        return Err(CommandError(format!(
            "sched audit FAILED:\n{}",
            dirty.join("\n")
        )));
    }
    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&rows)?);
    }
    let mut out = format!(
        "scheduled run: {samples} requests at {rate}/h (seed {seed}), audit {}\n\
         {:<15} {:<6} {:>6} {:>10} {:>12} {:>12} {:>12} {:>7} {:>6}\n",
        match (audit, audit_mode) {
            (false, _) => "off",
            (true, AuditMode::Streaming) => "on (streaming)",
            (true, AuditMode::Batch) => "on (batch)",
        },
        "scheme",
        "policy",
        "served",
        "avg wait",
        "avg sojourn",
        "p50 sojourn",
        "p99 sojourn",
        "mounts",
        "util"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<15} {:<6} {:>6} {:>9.1}s {:>11.1}s {:>11.1}s {:>11.1}s {:>7} {:>6.2}\n",
            r.scheme,
            r.policy,
            r.served,
            r.avg_wait_s,
            r.avg_sojourn_s,
            r.p50_sojourn_s,
            r.p99_sojourn_s,
            r.mounts,
            r.utilisation,
        ));
    }
    Ok(out)
}

/// One entry of `tapesim report --json` output.
#[derive(Debug, Serialize)]
struct ReportEntry {
    scheme: &'static str,
    policy: &'static str,
    manifest: tapesim_obs::RunManifest,
    budget: tapesim_obs::TimeBudget,
}

/// `tapesim report` — explain a run at resource granularity: re-run the
/// scheduler sweep with span time accounting on and print, per scheme ×
/// policy, the signed run manifest and the per-drive/per-arm time budget
/// (seek/rewind/transfer/load/unload/exchange/idle/failed columns that
/// sum to the makespan on every row), plus job-phase means and the
/// robot-exchange overlap ratio. A merged metrics registry across the
/// whole sweep closes the report.
pub fn report(args: &Args) -> Result<String, CommandError> {
    use tapesim_obs::{MetricsRegistry, RunManifest};

    let smoke = args.has("smoke");
    let workload = if smoke {
        smoke_workload()
    } else {
        read_workload(args.require("workload")?)?
    };
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let samples: usize = args.get_or("samples", if smoke { 30 } else { 100 })?;
    let rate: f64 = args.get_or("rate", 12.0)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let max_batch: usize = args.get_or("max-batch", 0)?;
    let spec = ArrivalSpec {
        per_hour: rate,
        seed,
    };

    let schemes = parse_schemes(args)?;
    let policies = parse_policies(args)?;

    let mut entries = Vec::new();
    let mut totals = MetricsRegistry::default();
    for scheme in schemes {
        let policy = placement_for(scheme, m);
        let placement = policy
            .place(&workload, &system)
            .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
        for &kind in &policies {
            let mut sim = Simulator::with_natural_policy(placement.clone(), m);
            let cfg = SchedConfig::new(spec, samples)
                .with_max_batch(max_batch)
                .with_obs(true);
            let out = run_scheduled(&mut sim, &workload, kind.build().as_ref(), &cfg);
            let budget = out
                .budget
                .expect("observability was enabled, the run must carry a budget");
            if budget.sum_error() > 1e-6 {
                return Err(CommandError(format!(
                    "{scheme}/{}: budget does not close (error {:.3e} s)",
                    kind.label(),
                    budget.sum_error()
                )));
            }

            // Per-run registry, merged into the sweep totals: the same
            // mechanism aggregates metrics across repeated runs.
            let mut reg = MetricsRegistry::default();
            let served = reg.counter("requests_served");
            let mounts = reg.counter("tape_mounts");
            let makespan = reg.gauge("makespan_s_max");
            let sojourn = reg.histogram(
                "sojourn_s",
                &[60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0],
            );
            reg.add(served, out.metrics.served());
            reg.add(mounts, out.metrics.mounts());
            reg.set(makespan, budget.makespan_s);
            for &s in out.metrics.sojourn_seconds() {
                reg.observe(sojourn, s);
            }
            totals.merge(&reg);

            let manifest = RunManifest {
                engine: "sched".into(),
                scheme: short_scheme(scheme).into(),
                policy: kind.label().into(),
                workload_seed: tapesim_obs::digest(&workload),
                arrival_seed: seed,
                rate_per_hour: rate,
                samples: samples as u64,
                fault_spec_hash: 0,
                crates: RunManifest::workspace_crates(),
                signature: 0,
            }
            .signed();
            entries.push(ReportEntry {
                scheme,
                policy: kind.label(),
                manifest,
                budget,
            });
        }
    }

    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&entries)?);
    }
    let mut out =
        format!("resource report: {samples} requests at {rate}/h (seed {seed}), m = {m}\n");
    for e in &entries {
        out.push_str(&format!(
            "\n== {} / {} (manifest {:016x}, verified: {}) ==\n",
            e.scheme,
            e.policy,
            e.manifest.signature,
            e.manifest.verify(),
        ));
        out.push_str(&tapesim_obs::render_budget(&e.budget));
    }
    out.push_str("\nsweep totals (merged registry):\n");
    for (name, value) in totals.canonical().counters() {
        out.push_str(&format!("  {name} = {value}\n"));
    }
    for (name, value) in totals.canonical().gauges() {
        out.push_str(&format!("  {name} = {value:.2}\n"));
    }
    if let Some(h) = totals.histogram_by_name("sojourn_s") {
        out.push_str(&format!(
            "  sojourn_s: n = {}, mean = {:.1}, p50 ~ {:.0}, p99 ~ {:.0}\n",
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(99.0),
        ));
    }
    Ok(out)
}

/// Short scheme label used in manifests and figure captions.
fn short_scheme(scheme: &str) -> &'static str {
    match scheme {
        "parallel-batch" => "pbp",
        "object-prob" => "opp",
        _ => "cpp",
    }
}

/// One row of `tapesim faults` output.
#[derive(Debug, Serialize)]
struct FaultRow {
    scheme: &'static str,
    policy: &'static str,
    served: u64,
    lost: u64,
    retries: u64,
    failovers: u64,
    availability: f64,
    avg_sojourn_s: f64,
    p99_sojourn_s: f64,
    degraded_served: u64,
    mounts: u64,
}

/// `tapesim faults` — rerun the scheduler sweep under a seeded fault plan
/// (permanent drive failures, robot-arm jams, media bad spots) and report
/// degraded-mode metrics: retry and failover counts, losses, and drive
/// availability.
///
/// Auditing is always on — the fault machinery is exactly the code most
/// likely to violate the DES invariants, so any breach is a non-zero
/// exit. With a replication budget (`--replicate-gb`, on by default for
/// `--smoke`), reads that exhaust their retry budget fail over to a
/// replica copy on another tape; without one they are counted as losses,
/// never served twice and never dropped silently.
pub fn faults(args: &Args) -> Result<String, CommandError> {
    let smoke = args.has("smoke");
    let base = if smoke {
        smoke_workload()
    } else {
        read_workload(args.require("workload")?)?
    };
    let system = system_from(args)?;
    let m: u8 = args.get_or("m", 4)?;
    let samples: usize = args.get_or("samples", if smoke { 25 } else { 100 })?;
    let rate: f64 = args.get_or("rate", 12.0)?;
    let seed: u64 = args.get_or("seed", 0xD15Cu64)?;
    let max_batch: usize = args.get_or("max-batch", 0)?;
    let fault_seed: u64 = args.get_or("fault-seed", 41u64)?;
    let intensity: f64 = args.get_or("intensity", 1.0)?;
    let audit_mode = parse_audit_mode(args)?;
    let par = parallel_config_from(args)?;
    let seek = seek_policy_from(args)?;
    let replicate_gb: u64 = args.get_or("replicate-gb", if smoke { 4096 } else { 0 })?;
    let spec = ArrivalSpec {
        per_hour: rate,
        seed,
    };

    // Start from the calibrated moderate profile, scale it, then let
    // individual rates be pinned explicitly.
    let mut fspec = FaultSpec::moderate(fault_seed).scaled(intensity);
    fspec.drive_mtbf_hours = args.get_or("mtbf-hours", fspec.drive_mtbf_hours)?;
    fspec.jams_per_hour = args.get_or("jams-per-hour", fspec.jams_per_hour)?;
    fspec.bad_spots_per_tape = args.get_or("spots-per-tape", fspec.bad_spots_per_tape)?;

    let (workload, alternates, n_copies) = if replicate_gb > 0 {
        let (w, map) = replicate_workload(
            &base,
            ReplicationSpec {
                budget: Bytes::gb(replicate_gb),
            },
        );
        let n = map.n_copies();
        (w, map.alternates(), n)
    } else {
        (base, BTreeMap::new(), 0)
    };
    let plan = FaultPlan::generate(&fspec, &system);

    let schemes = parse_schemes(args)?;
    let policies = parse_policies(args)?;

    let mut rows = Vec::new();
    let mut dirty = Vec::new();
    for scheme in schemes {
        let policy = placement_for(scheme, m);
        let placement = policy
            .place(&workload, &system)
            .map_err(|e| CommandError(format!("{} failed: {e}", policy.display_name())))?;
        for &kind in &policies {
            let mut sim = Simulator::with_natural_policy(placement.clone(), m);
            let cfg = SchedConfig::new(spec, samples)
                .with_max_batch(max_batch)
                .with_audit(true)
                .with_audit_mode(audit_mode)
                .with_seek(seek);
            let out = run_scheduled_faulty_parallel(
                &mut sim,
                &workload,
                kind.build().as_ref(),
                &cfg,
                &plan,
                &alternates,
                &par,
            );
            for report in out.reports.iter().filter(|r| !r.is_clean()) {
                dirty.push(format!("{scheme}/{}: {report}", kind.label()));
            }
            rows.push(FaultRow {
                scheme,
                policy: kind.label(),
                served: out.metrics.served(),
                lost: out.metrics.lost(),
                retries: out.metrics.retries(),
                failovers: out.metrics.failovers(),
                availability: out.metrics.availability(),
                avg_sojourn_s: out.metrics.avg_sojourn(),
                p99_sojourn_s: out.metrics.sojourn_percentile(99.0),
                degraded_served: out.metrics.degraded_served(),
                mounts: out.metrics.mounts(),
            });
        }
    }
    if !dirty.is_empty() {
        return Err(CommandError(format!(
            "faults audit FAILED:\n{}",
            dirty.join("\n")
        )));
    }
    if args.has("json") {
        return Ok(serde_json::to_string_pretty(&rows)?);
    }
    let mut out = format!(
        "faulty run: {samples} requests at {rate}/h, intensity {intensity} \
         (fault seed {fault_seed}, {} drive failures, {} jams, {} bad spots, \
         {n_copies} replica copies)\n\
         {:<15} {:<6} {:>6} {:>4} {:>7} {:>9} {:>6} {:>11} {:>12} {:>8} {:>6}\n",
        plan.n_drive_failures(),
        plan.n_jams(),
        plan.n_spots(),
        "scheme",
        "policy",
        "served",
        "lost",
        "retries",
        "failovers",
        "avail",
        "avg sojourn",
        "p99 sojourn",
        "degraded",
        "mounts"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<15} {:<6} {:>6} {:>4} {:>7} {:>9} {:>6.3} {:>10.1}s {:>11.1}s {:>8} {:>6}\n",
            r.scheme,
            r.policy,
            r.served,
            r.lost,
            r.retries,
            r.failovers,
            r.availability,
            r.avg_sojourn_s,
            r.p99_sojourn_s,
            r.degraded_served,
            r.mounts,
        ));
    }
    Ok(out)
}

/// `tapesim inspect` — summarise a placement's physical layout.
pub fn inspect(args: &Args) -> Result<String, CommandError> {
    let placement = read_placement(args.require("placement")?)?;
    let config = *placement.config();
    let capacity = config.library.tape.capacity;
    let mut out = String::new();
    out.push_str(&format!(
        "system: {} libraries × {} drives × {} cells; {} cartridges in use\n",
        config.libraries,
        config.library.drives,
        config.library.tapes,
        placement.n_used_tapes(),
    ));
    // Batch summary.
    let pinned = placement.pinned_tapes();
    if !pinned.is_empty() {
        let p: f64 = pinned.iter().map(|&t| placement.tape_probability(t)).sum();
        out.push_str(&format!(
            "pinned batch   : {:>3} tapes, probability {:.3}\n",
            pinned.len(),
            p
        ));
    }
    for b in 1..=placement.max_switch_batch() {
        let tapes = placement.switch_batch(b);
        let p: f64 = tapes.iter().map(|&t| placement.tape_probability(t)).sum();
        out.push_str(&format!(
            "switch batch {b:>2}: {:>3} tapes, probability {:.3}\n",
            tapes.len(),
            p
        ));
    }
    // Fill map, library-major.
    out.push_str("\nfill map (one row per used tape; # ≈ 10% of capacity):\n");
    for tape in placement.used_tapes() {
        let layout = placement.tape_layout(tape);
        let frac = layout.used().get() as f64 / capacity.get() as f64;
        let bars = (frac * 10.0).round() as usize;
        let role = match placement.role(tape) {
            TapeRole::Pinned => "pin".to_string(),
            TapeRole::SwitchPool { batch } => format!("b{batch:02}"),
            TapeRole::Unused => "---".to_string(),
        };
        out.push_str(&format!(
            "  {tape:<8} {role} [{:<10}] {:>6.1} GB, {:>4} objects, p={:.4}\n",
            "#".repeat(bars.min(10)),
            layout.used().as_gb(),
            layout.len(),
            placement.tape_probability(tape),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str, allowed: &[&str], bools: &[&str]) -> Args {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&argv, allowed, bools).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tapesim-cli-test-{name}"))
            .to_string_lossy()
            .into_owned()
    }

    /// End-to-end: generate → place → simulate → serve → inspect.
    #[test]
    fn full_pipeline_round_trips() {
        let w = tmp("w.json");
        let p = tmp("p.json");

        let msg = generate(&args(
            &format!("--objects 800 --requests 30 --min-objects 10 --max-objects 15 --avg-object-mb 4000 --seed 7 -o {w}"),
            &["objects", "requests", "min-objects", "max-objects", "avg-object-mb", "alpha", "seed", "out"],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("800 objects"));

        let msg = place(&args(
            &format!("-w {w} --scheme pbp --m 4 -o {p}"),
            &["workload", "scheme", "m", "libraries", "tapes", "out"],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("parallel batch placement"), "{msg}");
        assert!(msg.contains("pinned"));

        let msg = simulate(&args(
            &format!("-w {w} -p {p} --samples 20 --seed 3"),
            &["workload", "placement", "m", "samples", "seed"],
            &["json"],
        ))
        .unwrap();
        assert!(msg.contains("20 requests served"), "{msg}");
        assert!(msg.contains("effective bandwidth"));

        let json = simulate(&args(
            &format!("-w {w} -p {p} --samples 5 --json"),
            &["workload", "placement", "m", "samples", "seed"],
            &["json"],
        ))
        .unwrap();
        assert!(json.trim_start().starts_with('{'), "json output expected");

        let msg = serve(&args(
            &format!("-w {w} -p {p} --request 0"),
            &["workload", "placement", "m", "request"],
            &["trace"],
        ))
        .unwrap();
        assert!(msg.contains("request 0"), "{msg}");
        assert!(msg.contains("response"));
        assert!(!msg.contains("timeline"), "no timeline without --trace");

        let msg = serve(&args(
            &format!("-w {w} -p {p} --request 0 --trace"),
            &["workload", "placement", "m", "request"],
            &["trace"],
        ))
        .unwrap();
        assert!(msg.contains("timeline:"), "{msg}");
        assert!(
            msg.contains("streams"),
            "trace should show streaming events: {msg}"
        );

        let msg = audit(&args(
            &format!("-w {w} -p {p} --samples 10 --seed 3"),
            &["workload", "placement", "m", "samples", "seed"],
            &[],
        ))
        .unwrap();
        assert!(msg.contains("audit clean"), "{msg}");
        assert!(msg.contains("transfers"), "{msg}");

        let msg = inspect(&args(&format!("-p {p}"), &["placement"], &[])).unwrap();
        assert!(msg.contains("pinned batch"), "{msg}");
        assert!(msg.contains("fill map"));
    }

    const SCHED_VALUES: &[&str] = &[
        "workload",
        "scheme",
        "policy",
        "rate",
        "samples",
        "seed",
        "m",
        "max-batch",
        "libraries",
        "tapes",
        "audit-mode",
    ];
    const SCHED_BOOLS: &[&str] = &["json", "smoke", "no-audit"];

    #[test]
    fn sched_smoke_runs_all_schemes_and_policies() {
        let msg = sched(&args(
            "--smoke --samples 10 --rate 20",
            SCHED_VALUES,
            SCHED_BOOLS,
        ))
        .unwrap();
        for label in ["parallel-batch", "object-prob", "cluster-prob"] {
            assert!(msg.contains(label), "missing scheme {label}: {msg}");
        }
        for label in ["fcfs", "batch", "sltf"] {
            assert!(msg.contains(label), "missing policy {label}: {msg}");
        }
        assert!(msg.contains("audit on"), "{msg}");
    }

    #[test]
    fn sched_smoke_is_deterministic() {
        let run = || {
            sched(&args(
                "--smoke --samples 8 --rate 15",
                SCHED_VALUES,
                SCHED_BOOLS,
            ))
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sched_json_output() {
        let msg = sched(&args(
            "--smoke --samples 5 --policy batch --scheme pbp --json",
            SCHED_VALUES,
            SCHED_BOOLS,
        ))
        .unwrap();
        assert!(msg.trim_start().starts_with('['), "{msg}");
        assert!(msg.contains("\"p99_sojourn_s\""), "{msg}");
    }

    #[test]
    fn sched_rejects_unknown_policy() {
        let err = sched(&args("--smoke --policy bogus", SCHED_VALUES, SCHED_BOOLS)).unwrap_err();
        assert!(err.0.contains("unknown policy"), "{err}");
    }

    #[test]
    fn sched_audit_modes_agree_and_bad_mode_is_rejected() {
        let streaming = sched(&args(
            "--smoke --samples 8 --rate 15 --audit-mode streaming --json",
            SCHED_VALUES,
            SCHED_BOOLS,
        ))
        .unwrap();
        let batch = sched(&args(
            "--smoke --samples 8 --rate 15 --audit-mode batch --json",
            SCHED_VALUES,
            SCHED_BOOLS,
        ))
        .unwrap();
        assert_eq!(streaming, batch, "audit mode must not change results");

        let default = sched(&args("--smoke --samples 8", SCHED_VALUES, SCHED_BOOLS)).unwrap();
        assert!(default.contains("audit on (streaming)"), "{default}");

        let err = sched(&args(
            "--smoke --audit-mode bogus",
            SCHED_VALUES,
            SCHED_BOOLS,
        ))
        .unwrap_err();
        assert!(err.0.contains("audit-mode"), "{err}");
    }

    const SERVE_VALUES: &[&str] = &[
        "workload",
        "placement",
        "m",
        "request",
        "scheme",
        "policy",
        "rate",
        "requests",
        "seed",
        "shards",
        "max-batch",
        "channel-bound",
        "snapshot-every",
        "libraries",
        "tapes",
    ];
    const SERVE_BOOLS: &[&str] = &["trace", "campaign", "smoke", "check", "json"];

    #[test]
    fn serve_campaign_smoke_sweeps_schemes_and_policies() {
        let msg = serve(&args(
            "--campaign --smoke --requests 60 --rate 30",
            SERVE_VALUES,
            SERVE_BOOLS,
        ))
        .unwrap();
        for label in ["parallel-batch", "object-prob", "cluster-prob"] {
            assert!(msg.contains(label), "missing scheme {label}: {msg}");
        }
        for label in ["batch", "sltf"] {
            assert!(msg.contains(label), "missing policy {label}: {msg}");
        }
        assert!(msg.contains("audited"), "{msg}");
        assert!(
            msg.contains("BENCH_serve.json left untouched"),
            "smoke must not rewrite the committed artifact: {msg}"
        );
    }

    /// The virtual-time half of every campaign cell is a pure function
    /// of (seed, shard count): only the wall-clock fields may differ
    /// between two identical smoke runs.
    #[test]
    fn serve_campaign_virtual_time_is_deterministic() {
        let run = || {
            serve(&args(
                "--campaign --smoke --requests 50 --rate 30 --shards 3 --policy batch --scheme pbp --json",
                SERVE_VALUES,
                SERVE_BOOLS,
            ))
            .unwrap()
        };
        let (a, b) = (run(), run());
        for field in [
            "served",
            "lost",
            "snapshots",
            "avg_sojourn_s",
            "p50_sojourn_s",
            "p99_sojourn_s",
            "mounts",
            "events",
        ] {
            assert_eq!(
                json_field(&a, field),
                json_field(&b, field),
                "{field} must replay bit-for-bit"
            );
        }
        assert_eq!(json_field(&a, "served"), "50");
        assert_eq!(json_field(&a, "lost"), "0");
    }

    #[test]
    fn serve_campaign_honours_shard_and_snapshot_flags() {
        let msg = serve(&args(
            "--campaign --smoke --requests 40 --rate 30 --shards 2 --snapshot-every 10 --policy sltf --scheme opp --json",
            SERVE_VALUES,
            SERVE_BOOLS,
        ))
        .unwrap();
        assert_eq!(json_field(&msg, "shards"), "2");
        assert_eq!(json_field(&msg, "snapshots"), "4", "40 requests / 10");
        assert_eq!(json_field(&msg, "requests_per_cell"), "40");
    }

    #[test]
    fn serve_campaign_rejects_unknown_scheme() {
        let err = serve(&args(
            "--campaign --smoke --scheme bogus",
            SERVE_VALUES,
            SERVE_BOOLS,
        ))
        .unwrap_err();
        assert!(err.0.contains("unknown scheme"), "{err}");
    }

    const FAULTS_VALUES: &[&str] = &[
        "workload",
        "scheme",
        "policy",
        "rate",
        "samples",
        "seed",
        "m",
        "max-batch",
        "libraries",
        "tapes",
        "fault-seed",
        "intensity",
        "mtbf-hours",
        "jams-per-hour",
        "spots-per-tape",
        "replicate-gb",
        "audit-mode",
    ];
    const FAULTS_BOOLS: &[&str] = &["json", "smoke"];

    #[test]
    fn faults_smoke_runs_audited_and_reports_counters() {
        let msg = faults(&args(
            "--smoke --samples 10 --rate 20",
            FAULTS_VALUES,
            FAULTS_BOOLS,
        ))
        .unwrap();
        for label in ["parallel-batch", "object-prob", "cluster-prob"] {
            assert!(msg.contains(label), "missing scheme {label}: {msg}");
        }
        assert!(msg.contains("avail"), "{msg}");
        assert!(msg.contains("replica copies"), "{msg}");
    }

    #[test]
    fn faults_smoke_is_deterministic() {
        let run = || {
            faults(&args(
                "--smoke --samples 8 --rate 15 --policy batch",
                FAULTS_VALUES,
                FAULTS_BOOLS,
            ))
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_json_output() {
        let msg = faults(&args(
            "--smoke --samples 5 --policy batch --scheme pbp --json",
            FAULTS_VALUES,
            FAULTS_BOOLS,
        ))
        .unwrap();
        assert!(msg.trim_start().starts_with('['), "{msg}");
        for field in [
            "\"availability\"",
            "\"failovers\"",
            "\"retries\"",
            "\"lost\"",
        ] {
            assert!(msg.contains(field), "missing {field}: {msg}");
        }
    }

    /// Extracts the raw value token of `"field": <token>` from pretty
    /// JSON. Float tokens are shortest-round-trip, so string equality is
    /// bit equality.
    fn json_field<'a>(json: &'a str, field: &str) -> &'a str {
        let pat = format!("\"{field}\": ");
        let start = json.find(&pat).map(|i| i + pat.len()).unwrap();
        let rest = &json[start..];
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        rest[..end].trim()
    }

    /// With intensity zero and no replication the `faults` command must
    /// reproduce `sched`'s sojourn figures exactly — the fault gear is a
    /// strict superset of the fault-free engine.
    #[test]
    fn faults_zero_intensity_matches_sched() {
        let common = "--smoke --samples 8 --rate 15 --policy batch --scheme pbp --json";
        let plain = sched(&args(common, SCHED_VALUES, SCHED_BOOLS)).unwrap();
        let faulty = faults(&args(
            &format!("{common} --intensity 0 --replicate-gb 0"),
            FAULTS_VALUES,
            FAULTS_BOOLS,
        ))
        .unwrap();
        for field in ["served", "mounts", "avg_sojourn_s", "p99_sojourn_s"] {
            assert_eq!(
                json_field(&plain, field),
                json_field(&faulty, field),
                "field {field} diverged"
            );
        }
        assert_eq!(json_field(&faulty, "lost"), "0");
        assert_eq!(json_field(&faulty, "retries"), "0");
        assert_eq!(json_field(&faulty, "availability"), "1.0");
    }

    #[test]
    fn faults_rejects_unknown_scheme() {
        let err = faults(&args("--smoke --scheme bogus", FAULTS_VALUES, FAULTS_BOOLS)).unwrap_err();
        assert!(err.0.contains("unknown scheme"), "{err}");
    }

    #[test]
    fn scheme_validation() {
        let w = tmp("w2.json");
        generate(&args(
            &format!("--objects 200 --requests 10 --min-objects 3 --max-objects 5 -o {w}"),
            &["objects", "requests", "min-objects", "max-objects", "out"],
            &[],
        ))
        .unwrap();
        let err = place(&args(
            &format!("-w {w} --scheme bogus -o /tmp/x.json"),
            &["workload", "scheme", "out"],
            &[],
        ))
        .unwrap_err();
        assert!(err.0.contains("unknown scheme"));
    }

    #[test]
    fn mismatched_placement_is_rejected() {
        let w1 = tmp("w3.json");
        let w2 = tmp("w4.json");
        let p1 = tmp("p3.json");
        for (w, seed) in [(&w1, 1), (&w2, 2)] {
            generate(&args(
                &format!("--objects 300 --requests 10 --min-objects 3 --max-objects 5 --seed {seed} -o {w}"),
                &["objects", "requests", "min-objects", "max-objects", "seed", "out"],
                &[],
            ))
            .unwrap();
        }
        place(&args(
            &format!("-w {w1} -o {p1}"),
            &["workload", "out", "scheme", "m", "libraries", "tapes"],
            &[],
        ))
        .unwrap();
        let err = simulate(&args(
            &format!("-w {w2} -p {p1}"),
            &["workload", "placement", "m", "samples", "seed"],
            &["json"],
        ))
        .unwrap_err();
        assert!(err.0.contains("does not match"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = simulate(&args(
            "-w /nonexistent.json -p /nonexistent2.json",
            &["workload", "placement", "m", "samples", "seed"],
            &["json"],
        ))
        .unwrap_err();
        assert!(err.0.contains("i/o error"));
    }
}
