//! # tapesim-cli
//!
//! Library half of the `tapesim` binary: argument parsing ([`args`]) and
//! the subcommand implementations ([`commands`]), exposed as functions so
//! they are testable without process spawning.

pub mod args;
pub mod commands;
