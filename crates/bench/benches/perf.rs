//! Hot-path throughput bench: runs the same deterministic scheduling
//! scenario as `BENCH_sched.json` through every DES engine — the legacy
//! sequential queue gear, the optimized concurrent scheduler (with and
//! without span time accounting, so the observability overhead is
//! measured in the same run), the frozen pre-optimization baseline
//! (`tapesim_sched::baseline`) and the faulty concurrent gear — and
//! records events/sec, allocation counts and wall time into
//! `BENCH_perf.json` at the workspace root.
//!
//! Because the optimized and baseline engines are bit-identical on
//! metrics (pinned by `tapesim-sched`'s regression tests), they process
//! the *same number of events*, so `speedup_vs_baseline` is a pure
//! wall-clock ratio measured in one run on one machine — no stale
//! cross-machine comparison.
//!
//! Flags (after `--`):
//!
//! * `--smoke` — fewer samples and iterations; skips rewriting
//!   `BENCH_perf.json` so CI runs never overwrite the committed baseline.
//! * `--check` — read the committed `BENCH_perf.json` and fail (non-zero
//!   exit) if any engine's events/sec dropped more than 30% below it.
//!
//! Not a Criterion bench: the point is a machine-readable artifact the CI
//! and later sessions can diff. Run with
//! `cargo bench -p tapesim-bench --bench perf`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_model::specs::{paper_table1, paper_table1_with_libraries};
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::baseline::run_scheduled_baseline;
use tapesim_sched::{
    run_scheduled, run_scheduled_faulty, run_scheduled_parallel, BatchByTape, Fcfs, ParallelConfig,
    SchedConfig,
};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::Simulator;
use tapesim_workload::{ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

/// A counting wrapper around the system allocator, active in this bench
/// binary only. Counts allocation events and requested bytes; frees are
/// not tracked (throughput benches care about allocator pressure, not
/// live size).
#[allow(unsafe_code)]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    /// Current (allocation count, requested bytes) totals.
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[derive(Serialize, Deserialize)]
struct EngineRow {
    engine: String,
    served: u64,
    events: u64,
    events_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
    wall_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    samples: usize,
    rate_per_hour: f64,
    iterations: u32,
    engines: Vec<EngineRow>,
    /// Optimized concurrent gear over the frozen pre-optimization copy,
    /// events/sec ratio measured in this same run.
    speedup_vs_baseline: f64,
    /// Throughput cost of span time accounting: the median of per-round
    /// `sched_obs`/`sched` wall-time ratios, as a percentage (rounds run
    /// the two engines back to back, so each ratio compares like machine
    /// state). Absent in artifacts written before the observability
    /// layer existed.
    #[serde(default)]
    obs_overhead_pct: f64,
    /// Headline for the conservative-window engine: events/sec of the
    /// fastest `sched_parallel_8lib_*` row over the single-threaded
    /// `sched_mono_8lib` row, measured in this same run. On machines with
    /// fewer hardware threads than partitions this is an honest (small or
    /// sub-1.0) number — see `threads_available`.
    #[serde(default)]
    parallel_speedup: f64,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// the context required to read `parallel_speedup`.
    #[serde(default)]
    threads_available: usize,
}

const RATE_PER_HOUR: f64 = 24.0;

/// The committed `sched` row's allocation count before the pooled event
/// queue and flat catalog build landed — the ceiling the bench check
/// enforces against.
const PRE_POOLING_SCHED_ALLOCS: u64 = 1325;

/// Same workload as the sched bench, so the two artifacts line up.
fn workload() -> Workload {
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
        requests: RequestSpec {
            count: 80,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 5,
    }
    .generate()
}

/// One engine under measurement: a named run closure over a fresh
/// simulator, plus the best-of-N accumulators.
struct Probe<'a> {
    engine: String,
    run: Box<dyn FnMut(Simulator) -> (u64, u64) + 'a>,
    best: f64,
    best_allocs: u64,
    best_bytes: u64,
    served: u64,
    events: u64,
    /// Wall seconds of every round, in round order. Cross-engine ratios
    /// are computed per round (adjacent runs share the machine state)
    /// and summarised by their median, which is far more noise-robust
    /// than a ratio of two independently-achieved bests.
    rounds: Vec<f64>,
}

impl<'a> Probe<'a> {
    fn new(engine: impl Into<String>, run: impl FnMut(Simulator) -> (u64, u64) + 'a) -> Probe<'a> {
        Probe {
            engine: engine.into(),
            run: Box::new(run),
            best: f64::INFINITY,
            best_allocs: 0,
            best_bytes: 0,
            served: 0,
            events: 0,
            rounds: Vec::new(),
        }
    }
}

/// Median of the per-round wall-time ratios `num[r] / den[r]`, as a
/// percentage above 1 (`3.0` = the numerator engine is 3% slower).
fn median_ratio_pct(num: &[f64], den: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = num
        .iter()
        .zip(den)
        .filter(|&(_, &d)| d > 0.0)
        .map(|(&n, &d)| n / d)
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(f64::total_cmp);
    let mid = ratios.len() / 2;
    let median = if ratios.len() % 2 == 0 {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    100.0 * (median - 1.0)
}

/// Best-of-N wall time per engine, with the iterations *interleaved
/// round-robin* across engines: every round runs each engine once, so
/// slow drift of the machine (frequency scaling, thermal state, noisy
/// neighbours) biases every engine equally instead of penalising
/// whichever one happened to run last. Cross-engine ratios — the
/// baseline speedup and the observability overhead — are only
/// trustworthy under this schedule.
///
/// Each iteration rebuilds its simulator via `setup` *outside* the timed
/// window, so the measurement covers the engine alone. The scenario is
/// deterministic, so the fastest iteration is the least-noisy estimate
/// and every iteration allocates identically.
fn measure_all(
    probes: &mut [Probe<'_>],
    iterations: u32,
    mut setup: impl FnMut() -> Simulator,
) -> Vec<EngineRow> {
    for _ in 0..iterations {
        for probe in probes.iter_mut() {
            let sim = setup();
            let (a0, b0) = alloc_counter::snapshot();
            let t = Instant::now();
            let (s, e) = (probe.run)(sim);
            let secs = t.elapsed().as_secs_f64();
            let (a1, b1) = alloc_counter::snapshot();
            probe.served = s;
            probe.events = e;
            probe.rounds.push(secs);
            if secs < probe.best {
                probe.best = secs;
                probe.best_allocs = a1 - a0;
                probe.best_bytes = b1 - b0;
            }
        }
    }
    probes
        .iter()
        .map(|p| {
            let events_per_sec = if p.best > 0.0 && p.best.is_finite() {
                p.events as f64 / p.best
            } else {
                0.0
            };
            println!(
                "{:<14}  {:>6} served  {:>10} events  {:>12.0} events/s  {:>10} allocs  {:>12} bytes  wall {:.2}ms",
                p.engine,
                p.served,
                p.events,
                events_per_sec,
                p.best_allocs,
                p.best_bytes,
                p.best * 1e3
            );
            EngineRow {
                engine: p.engine.clone(),
                served: p.served,
                events: p.events,
                events_per_sec,
                allocs: p.best_allocs,
                alloc_bytes: p.best_bytes,
                wall_ms: p.best * 1e3,
            }
        })
        .collect()
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_perf.json")
}

/// Fails the process if any engine's events/sec dropped more than 30%
/// below the committed baseline artifact.
fn check_regression(current: &Report) {
    let text = match std::fs::read_to_string(baseline_path()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf --check: cannot read committed BENCH_perf.json: {e}");
            std::process::exit(1);
        }
    };
    let committed: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf --check: cannot parse committed BENCH_perf.json: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    // The pooled queue and flat catalog build must keep the scheduler's
    // allocation count strictly below the pre-pooling artifact (1325
    // allocations at 400 requests; smoke runs allocate less still).
    match current.engines.iter().find(|r| r.engine == "sched") {
        Some(row) if row.allocs >= PRE_POOLING_SCHED_ALLOCS => failures.push(format!(
            "sched: {} allocs regressed to the pre-pooling level ({})",
            row.allocs, PRE_POOLING_SCHED_ALLOCS
        )),
        Some(_) => {}
        None => failures.push("engine 'sched' missing from this run".to_string()),
    }
    for old in &committed.engines {
        // The frozen baseline engine is the comparison anchor, not a
        // regression target of its own.
        if old.engine == "sched_baseline" {
            continue;
        }
        let Some(new) = current.engines.iter().find(|r| r.engine == old.engine) else {
            failures.push(format!("engine '{}' missing from this run", old.engine));
            continue;
        };
        let floor = old.events_per_sec * 0.7;
        if new.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/s is more than 30% below the committed {:.0}",
                old.engine, new.events_per_sec, old.events_per_sec
            ));
        }
    }
    if failures.is_empty() {
        println!("perf --check: no engine regressed >30% vs committed baseline");
    } else {
        for f in &failures {
            eprintln!("perf --check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let check = argv.iter().any(|a| a == "--check");
    // The runs are milliseconds each, so best-of-many is cheap; a high
    // iteration count is what makes the best-time estimate stable enough
    // to compare engines (and the obs on/off pair) on a shared machine.
    let (samples, iterations) = if smoke { (120, 5) } else { (400, 25) };

    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .expect("placement");
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: RATE_PER_HOUR,
            seed: 0xD15C,
        },
        samples,
    );
    let zero_plan = FaultPlan::zero(&system);
    let fault_plan = FaultPlan::generate(&FaultSpec::moderate(41), &system);
    let no_alternates: BTreeMap<_, _> = BTreeMap::new();

    let fresh_sim = || Simulator::with_natural_policy(placement.clone(), 4);
    let obs_cfg = cfg.with_obs(true);
    let mut probes = vec![
        Probe::new("queued_fcfs", |mut sim: Simulator| {
            let out = run_scheduled(&mut sim, &w, &Fcfs, &cfg);
            (out.metrics.served(), out.metrics.events())
        }),
        Probe::new("sched", |mut sim: Simulator| {
            let out = run_scheduled(&mut sim, &w, &BatchByTape, &cfg);
            (out.metrics.served(), out.metrics.events())
        }),
        Probe::new("sched_obs", |mut sim: Simulator| {
            let out = run_scheduled(&mut sim, &w, &BatchByTape, &obs_cfg);
            let budget = out.budget.expect("obs on");
            assert!(budget.sum_error() < 1e-6, "budget must close in the bench");
            (out.metrics.served(), out.metrics.events())
        }),
        Probe::new("sched_baseline", |sim: Simulator| {
            let out =
                run_scheduled_baseline(&sim, &w, &BatchByTape, &cfg, &zero_plan, &no_alternates);
            (out.metrics.served(), out.metrics.events())
        }),
        Probe::new("faults", |mut sim: Simulator| {
            let out = run_scheduled_faulty(
                &mut sim,
                &w,
                &BatchByTape,
                &cfg,
                &fault_plan,
                &no_alternates,
            );
            (out.metrics.served(), out.metrics.events())
        }),
    ];
    let rows = measure_all(&mut probes, iterations, fresh_sim);
    let sched_rounds = std::mem::take(&mut probes[1].rounds);
    let sched_obs_rounds = std::mem::take(&mut probes[2].rounds);
    drop(probes);
    let [queued, sched, sched_obs, sched_baseline, faults]: [EngineRow; 5] = rows
        .try_into()
        .unwrap_or_else(|_| unreachable!("five probes produce five rows"));

    assert_eq!(
        (sched.served, sched.events),
        (sched_baseline.served, sched_baseline.events),
        "optimized and baseline engines diverged — the speedup ratio is \
         only meaningful while they are bit-identical"
    );
    let speedup = if sched_baseline.events_per_sec > 0.0 {
        sched.events_per_sec / sched_baseline.events_per_sec
    } else {
        0.0
    };
    println!("speedup vs frozen baseline (same run): {speedup:.2}x");

    assert_eq!(
        (sched.served, sched.events),
        (sched_obs.served, sched_obs.events),
        "span accounting changed the simulation — the observability tap \
         must be a pure reader"
    );
    let obs_overhead_pct = median_ratio_pct(&sched_obs_rounds, &sched_rounds);
    println!(
        "span-accounting overhead (median per-round sched_obs/sched wall ratio): \
         {obs_overhead_pct:.1}%"
    );

    assert!(
        sched.allocs < PRE_POOLING_SCHED_ALLOCS,
        "sched row allocated {} times — the pooled queue and flat catalog \
         build must stay below the pre-pooling {PRE_POOLING_SCHED_ALLOCS}",
        sched.allocs
    );

    // ---- parallel section: the conservative time-window engine over
    // 1/2/4/8-library systems × thread counts, each against the
    // single-threaded monolithic gear on the same config. The merged
    // outcome is bit-identical (pinned by the sched test walls); here we
    // only cross-check served/events and measure throughput.
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Shared by reference so the per-thread-count `move` closures copy
    // the borrow, not the workload.
    let (w, cfg) = (&w, &cfg);
    let mut parallel_rows: Vec<EngineRow> = Vec::new();
    let mut mono_8lib_eps = 0.0;
    let mut best_8lib_eps = 0.0;
    for nlibs in [1u16, 2, 4, 8] {
        let system_n = paper_table1_with_libraries(nlibs);
        let placement_n = ParallelBatchPlacement::with_m(4)
            .place(w, &system_n)
            .expect("placement");
        let fresh = || Simulator::with_natural_policy(placement_n.clone(), 4);
        let mut probes = vec![Probe::new(format!("sched_mono_{nlibs}lib"), |mut sim| {
            let out =
                run_scheduled_parallel(&mut sim, w, &BatchByTape, cfg, &ParallelConfig::off());
            (out.metrics.served(), out.metrics.events())
        })];
        for threads in [1usize, 2, 4, 8] {
            if threads > nlibs as usize {
                break;
            }
            let par = ParallelConfig::on().with_threads(threads);
            probes.push(Probe::new(
                format!("sched_parallel_{nlibs}lib_{threads}t"),
                move |mut sim| {
                    let out = run_scheduled_parallel(&mut sim, w, &BatchByTape, cfg, &par);
                    (out.metrics.served(), out.metrics.events())
                },
            ));
        }
        let rows = measure_all(&mut probes, iterations, fresh);
        let mono = &rows[0];
        for row in &rows[1..] {
            assert_eq!(
                (row.served, row.events),
                (mono.served, mono.events),
                "{} diverged from the monolithic gear — the window merge \
                 must be bit-identical",
                row.engine
            );
        }
        if nlibs == 8 {
            mono_8lib_eps = mono.events_per_sec;
            best_8lib_eps = rows[1..]
                .iter()
                .map(|r| r.events_per_sec)
                .fold(0.0, f64::max);
        }
        parallel_rows.extend(rows);
    }
    let parallel_speedup = if mono_8lib_eps > 0.0 {
        best_8lib_eps / mono_8lib_eps
    } else {
        0.0
    };
    println!(
        "parallel speedup at 8 libraries (best threads / single-threaded, same run): \
         {parallel_speedup:.2}x on {threads_available} hardware threads"
    );
    if threads_available >= 8 {
        assert!(
            parallel_speedup >= 10.0,
            "8-library parallel run reached only {parallel_speedup:.2}x on \
             {threads_available} hardware threads (target ≥10x)"
        );
    } else {
        println!(
            "parallel ≥10x gate skipped: {threads_available} hardware thread(s) \
             cannot exercise an 8-partition run"
        );
    }

    let mut engines = vec![queued, sched, sched_obs, sched_baseline, faults];
    engines.extend(parallel_rows);
    let report = Report {
        bench: "perf".to_string(),
        samples,
        rate_per_hour: RATE_PER_HOUR,
        iterations,
        engines,
        speedup_vs_baseline: speedup,
        obs_overhead_pct,
        parallel_speedup,
        threads_available,
    };

    if check {
        check_regression(&report);
    }
    if smoke {
        println!("smoke mode: BENCH_perf.json left untouched");
    } else {
        let out = baseline_path();
        let pretty = serde_json::to_string_pretty(&report).expect("serialise report");
        std::fs::write(&out, pretty + "\n").expect("write BENCH_perf.json");
        println!("wrote {}", out.display());
    }
}
