//! Degraded-mode throughput bench: runs a fixed, deterministic faulty
//! scheduling scenario at increasing fault intensity and records
//! wall-clock throughput (scheduler events per second) plus availability
//! and fault counters into `BENCH_faults.json` at the workspace root.
//!
//! Not a Criterion bench: the point is a machine-readable artifact the CI
//! and later sessions can diff — did the fault path get slower, and did
//! the availability/loss numbers move? Run with
//! `cargo bench -p tapesim-bench --bench faults`.

use serde::Serialize;
use std::time::Instant;
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{run_scheduled_faulty, PolicyKind, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::Simulator;
use tapesim_workload::{
    replicate_workload, ObjectSizeSpec, ReplicationSpec, RequestSpec, Workload, WorkloadSpec,
};

#[derive(Serialize)]
struct IntensityRow {
    intensity: f64,
    served: u64,
    lost: u64,
    retries: u64,
    failovers: u64,
    availability: f64,
    events: u64,
    events_per_sec: f64,
    p99_sojourn_s: f64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    samples: usize,
    rate_per_hour: f64,
    policy: &'static str,
    fault_seed: u64,
    iterations: u32,
    intensities: Vec<IntensityRow>,
}

const SAMPLES: usize = 400;
const RATE_PER_HOUR: f64 = 24.0;
const ITERATIONS: u32 = 5;
const FAULT_SEED: u64 = 0xBE9C;

fn workload() -> Workload {
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
        requests: RequestSpec {
            count: 80,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 5,
    }
    .generate()
}

fn main() {
    let system = paper_table1();
    let base = workload();
    let budget = base.total_bytes().scale(0.05);
    let (w, map) = replicate_workload(&base, ReplicationSpec { budget });
    let alternates = map.alternates();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .expect("placement");
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: RATE_PER_HOUR,
            seed: 0xD15C,
        },
        SAMPLES,
    );
    let kind = PolicyKind::BatchByTape;
    let policy = kind.build();

    let mut rows = Vec::new();
    for intensity in [0.0, 1.0, 2.0, 4.0] {
        let spec = FaultSpec::moderate(FAULT_SEED).scaled(intensity);
        let plan = FaultPlan::generate(&spec, &system);
        // Best-of-N wall time: the scenario is deterministic, so the
        // fastest iteration is the least-noisy estimate.
        let mut best = f64::INFINITY;
        let mut metrics = None;
        for _ in 0..ITERATIONS {
            let mut sim = Simulator::with_natural_policy(placement.clone(), 4);
            let t = Instant::now();
            let out = run_scheduled_faulty(&mut sim, &w, policy.as_ref(), &cfg, &plan, &alternates);
            let secs = t.elapsed().as_secs_f64();
            if secs < best {
                best = secs;
            }
            metrics = Some(out.metrics);
        }
        let m = metrics.expect("at least one iteration");
        let events_per_sec = if best > 0.0 {
            m.events() as f64 / best
        } else {
            0.0
        };
        println!(
            "x{intensity:<4} {:>4} served {:>3} lost  {:>5} retries {:>4} failovers  \
             avail {:.3}  {:>12.0} events/s  wall {:.2}ms",
            m.served(),
            m.lost(),
            m.retries(),
            m.failovers(),
            m.availability(),
            events_per_sec,
            best * 1e3
        );
        rows.push(IntensityRow {
            intensity,
            served: m.served(),
            lost: m.lost(),
            retries: m.retries(),
            failovers: m.failovers(),
            availability: m.availability(),
            events: m.events(),
            events_per_sec,
            p99_sojourn_s: m.sojourn_percentile(99.0),
            wall_ms: best * 1e3,
        });
    }

    let report = Report {
        bench: "faults",
        samples: SAMPLES,
        rate_per_hour: RATE_PER_HOUR,
        policy: kind.label(),
        fault_seed: FAULT_SEED,
        iterations: ITERATIONS,
        intensities: rows,
    };
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_faults.json");
    let pretty = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out, pretty + "\n").expect("write BENCH_faults.json");
    println!("wrote {}", out.display());
}
