//! Microbenchmarks of the hot kernels under the experiment pipeline:
//! the DES event queue, the alias sampler, co-access graph construction,
//! average-linkage clustering, organ-pipe alignment, zig-zag balancing,
//! seek planning, whole-scheme placement and single-request service.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tapesim_cluster::{average_linkage_clusters, CoAccessGraph, Dendrogram};
use tapesim_des::{EventQueue, SimTime};
use tapesim_model::specs::paper_table1;
use tapesim_model::tape::Extent;
use tapesim_model::{Bytes, ObjectId};
use tapesim_placement::balance::{zigzag_assign, TapeBin};
use tapesim_placement::density::density_ranked;
use tapesim_placement::organ_pipe::organ_pipe_order;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sim::seek_order;
use tapesim_sim::Simulator;
use tapesim_workload::{ObjectSizeSpec, RequestSampler, RequestSpec, Workload, WorkloadSpec};

fn small_workload() -> Workload {
    WorkloadSpec {
        objects: 2_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
        requests: RequestSpec {
            count: 60,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 5,
    }
    .generate()
}

fn event_queue(c: &mut Criterion) {
    c.bench_function("des_event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.push(SimTime::from_secs(((i * 7919) % 10_007) as f64), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v as u64;
            }
            black_box(sum)
        })
    });
}

fn sampler(c: &mut Criterion) {
    let weights: Vec<f64> = (1..=300).map(|r| 1.0 / (r as f64).powf(0.3)).collect();
    c.bench_function("alias_sampler_build_300", |b| {
        b.iter(|| black_box(RequestSampler::new(&weights)))
    });
    let s = RequestSampler::new(&weights);
    let mut rng = {
        use rand::SeedableRng;
        rand_chacha::ChaCha12Rng::seed_from_u64(1)
    };
    c.bench_function("alias_sampler_draw_1k", |b| {
        b.iter(|| black_box(s.sample_many(1000, &mut rng)))
    });
}

fn clustering(c: &mut Criterion) {
    let w = small_workload();
    c.bench_function("coaccess_graph_build", |b| {
        b.iter(|| black_box(CoAccessGraph::from_workload(&w)))
    });
    let g = CoAccessGraph::from_workload(&w);
    let min_p = w
        .requests()
        .iter()
        .map(|r| r.probability)
        .fold(f64::INFINITY, f64::min);
    c.bench_function("average_linkage", |b| {
        b.iter(|| black_box(average_linkage_clusters(&g, min_p * 0.5)))
    });
    c.bench_function("single_linkage_dendrogram", |b| {
        b.iter(|| black_box(Dendrogram::single_linkage(&g)))
    });
}

fn placement_kernels(c: &mut Criterion) {
    let items: Vec<(u32, f64)> = (0..500).map(|i| (i, 1.0 / (i + 1) as f64)).collect();
    c.bench_function("organ_pipe_500", |b| {
        b.iter(|| black_box(organ_pipe_order(&items)))
    });

    let w = small_workload();
    c.bench_function("density_ranking", |b| {
        b.iter(|| black_box(density_ranked(&w)))
    });

    let ranked = density_ranked(&w);
    let cluster: Vec<_> = ranked.iter().take(120).copied().collect();
    c.bench_function("zigzag_balance_120_over_12", |b| {
        b.iter_batched(
            || {
                (0..12u16)
                    .map(|i| {
                        TapeBin::new(
                            tapesim_model::TapeId::new(tapesim_model::LibraryId(i % 3), i / 3),
                            Bytes::gb(400),
                        )
                    })
                    .collect::<Vec<_>>()
            },
            |mut bins| {
                black_box(zigzag_assign(
                    std::slice::from_ref(&cluster),
                    &mut bins,
                    Bytes::gb(8),
                ))
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("parallel_batch_place_2k_objects", |b| {
        let system = paper_table1();
        b.iter(|| {
            black_box(
                ParallelBatchPlacement::with_m(4)
                    .place(&w, &system)
                    .unwrap(),
            )
        })
    });
}

fn seek_planning(c: &mut Criterion) {
    let extents: Vec<Extent> = (0..12)
        .map(|i| Extent {
            object: ObjectId(i),
            offset: Bytes::gb((i as u64 * 37) % 390),
            size: Bytes::gb(2),
        })
        .collect();
    c.bench_function("seek_plan_12_extents", |b| {
        b.iter(|| black_box(seek_order::plan(Bytes::gb(120), &extents)))
    });
}

fn request_service(c: &mut Criterion) {
    let system = paper_table1();
    let w = small_workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    c.bench_function("simulator_serve_one_request", |b| {
        let mut sim = Simulator::with_natural_policy(placement.clone(), 4);
        let objects = &w.requests()[10].objects;
        b.iter(|| black_box(sim.serve(objects)))
    });
    c.bench_function("simulator_run_50_sampled", |b| {
        b.iter_batched(
            || Simulator::with_natural_policy(placement.clone(), 4),
            |mut sim| black_box(sim.run_sampled(&w, 50, 3)),
            BatchSize::SmallInput,
        )
    });
}

fn extension_kernels(c: &mut Criterion) {
    let w = small_workload();
    c.bench_function("stripe_transform_width4", |b| {
        b.iter(|| {
            black_box(tapesim_workload::stripe_workload(
                &w,
                tapesim_workload::StripeSpec {
                    width: 4,
                    min_object: Bytes::gb(1),
                },
            ))
        })
    });

    let system = paper_table1();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .unwrap();
    c.bench_function("queued_run_30_requests", |b| {
        b.iter_batched(
            || Simulator::with_natural_policy(placement.clone(), 4),
            |mut sim| {
                black_box(tapesim_sim::queue::run_queued(
                    &mut sim,
                    &w,
                    30,
                    tapesim_sim::queue::ArrivalSpec {
                        per_hour: 4.0,
                        seed: 2,
                    },
                ))
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("incremental_epoch_advance", |b| {
        let next = tapesim_workload::EvolutionSpec {
            growth: 0.05,
            churn: 0.25,
            new_sizes: tapesim_workload::ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
            new_requests: tapesim_workload::RequestSpec {
                count: 60,
                min_objects: 20,
                max_objects: 30,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 77,
        }
        .advance(&w);
        b.iter_batched(
            || {
                tapesim_placement::IncrementalPlacer::bootstrap(
                    &w,
                    &system,
                    tapesim_placement::ParallelBatchParams::default(),
                )
                .unwrap()
            },
            |mut placer| black_box(placer.advance(&next).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = event_queue, sampler, clustering, placement_kernels, seek_planning, request_service, extension_kernels
}
criterion_main!(benches);
