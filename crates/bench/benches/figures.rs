//! One benchmark per paper artifact.
//!
//! Each benchmark regenerates its table/figure once at the shrunken
//! "quick" scale — printing the same rows/series the paper reports — and
//! then times the figure's representative evaluation point so regressions
//! in the placement/simulation pipeline show up in `cargo bench`.
//! (Full-scale regeneration is `cargo run --release -p
//! tapesim-experiments --bin <figure>`; its outputs are recorded in
//! EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Duration;
use tapesim_analysis::Table;
use tapesim_experiments::figures::{
    self, ext_ablation, ext_online, ext_queue, ext_replication, ext_robots, ext_scale,
    ext_striping, ext_tail, ext_technology, fig5, fig6, fig7, fig8, fig9, table1,
};
use tapesim_experiments::{evaluate, ExperimentSettings, Scheme};

/// Tiny settings for the timed inner loop.
fn bench_settings() -> ExperimentSettings {
    let mut s = figures::quick_settings();
    s.samples = 10;
    s
}

/// Print a figure's series once (not inside the timing loop).
fn print_once(id: &str, render: impl FnOnce() -> String) {
    static PRINTED: OnceLock<std::sync::Mutex<std::collections::HashSet<String>>> = OnceLock::new();
    let set = PRINTED.get_or_init(Default::default);
    if set.lock().unwrap().insert(id.to_string()) {
        println!(
            "\n===== {id} (quick-scale regeneration) =====\n{}",
            render()
        );
    }
}

fn bench_point(c: &mut Criterion, name: &str, settings: ExperimentSettings, scheme: Scheme) {
    let system = settings.system();
    let workload = settings.generate_workload();
    c.bench_function(name, |b| {
        b.iter(|| black_box(evaluate(black_box(&settings), &system, &workload, scheme)))
    });
}

fn figure_benches(c: &mut Criterion) {
    let quick = figures::quick_settings();

    print_once("table1", || table1::run().to_markdown());
    c.bench_function("table1_render", |b| b.iter(|| black_box(table1::run())));

    print_once("fig5", || {
        Table::from_result(&fig5::run(&bench_settings())).to_markdown()
    });
    bench_point(
        c,
        "fig5_point_pbp_m4",
        quick.with_m(4),
        Scheme::ParallelBatch,
    );

    print_once("fig6", || {
        Table::from_result(&fig6::run(&bench_settings())).to_markdown()
    });
    bench_point(
        c,
        "fig6_point_pbp_alpha03",
        quick.with_alpha(0.3),
        Scheme::ParallelBatch,
    );

    print_once("fig7", || {
        Table::from_result(&fig7::run(&bench_settings())).to_markdown()
    });
    bench_point(c, "fig7_point_opp", quick, Scheme::ObjectProbability);

    print_once("fig8", || {
        Table::from_result(&fig8::run(&bench_settings())).to_markdown()
    });
    bench_point(
        c,
        "fig8_point_pbp_1lib",
        quick.with_libraries(1).with_tapes_per_library(240),
        Scheme::ParallelBatch,
    );

    print_once("fig9", || {
        Table::from_result(&fig9::run(&bench_settings())).to_markdown()
    });
    bench_point(c, "fig9_point_cpp", quick, Scheme::ClusterProbability);

    print_once("ext_technology", || {
        Table::from_result(&ext_technology::run(&bench_settings())).to_markdown()
    });
    print_once("ext_scale", || {
        Table::from_result(&ext_scale::run(&bench_settings())).to_markdown()
    });
    print_once("ext_ablation", || {
        Table::from_result(&ext_ablation::run(&bench_settings())).to_markdown()
    });
    print_once("ext_striping", || {
        Table::from_result(&ext_striping::run(&bench_settings())).to_markdown()
    });
    print_once("ext_online", || {
        Table::from_result(&ext_online::run(&bench_settings())).to_markdown()
    });
    print_once("ext_queue", || {
        Table::from_result(&ext_queue::run(&bench_settings())).to_markdown()
    });
    print_once("ext_robots", || {
        Table::from_result(&ext_robots::run(&bench_settings())).to_markdown()
    });
    print_once("ext_tail", || {
        Table::from_result(&ext_tail::run(&bench_settings())).to_markdown()
    });
    print_once("ext_replication", || {
        Table::from_result(&ext_replication::run(&bench_settings())).to_markdown()
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = figure_benches
}
criterion_main!(benches);
