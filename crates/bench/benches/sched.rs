//! Scheduler throughput bench: runs a fixed, deterministic scheduling
//! scenario under every policy × seek policy (the greedy sweep and the
//! exact LTSP DP) and records wall-clock throughput (scheduler events
//! per second) plus p50/p99 request sojourn into `BENCH_sched.json` at
//! the workspace root. The greedy rows are the pre-policy rows,
//! metric-bit unchanged; the exact rows measure what optimal in-tape
//! sequencing buys each scheduling policy.
//!
//! Not a Criterion bench: the point is a machine-readable artifact the CI
//! and later sessions can diff, not a statistical report. Run with
//! `cargo bench -p tapesim-bench --bench sched`.

use serde::Serialize;
use std::time::Instant;
use tapesim_model::specs::paper_table1;
use tapesim_model::Bytes;
use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
use tapesim_sched::{run_scheduled, PolicyKind, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::{SeekPolicy, Simulator};
use tapesim_workload::{ObjectSizeSpec, RequestSpec, Workload, WorkloadSpec};

#[derive(Serialize)]
struct PolicyRow {
    policy: &'static str,
    /// In-tape service-order planner ("greedy" = pre-policy default).
    seek: &'static str,
    served: u64,
    mounts: u64,
    events: u64,
    events_per_sec: f64,
    p50_sojourn_s: f64,
    p99_sojourn_s: f64,
    p50_wait_s: f64,
    p99_wait_s: f64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    samples: usize,
    rate_per_hour: f64,
    iterations: u32,
    policies: Vec<PolicyRow>,
}

const SAMPLES: usize = 400;
const RATE_PER_HOUR: f64 = 24.0;
const ITERATIONS: u32 = 5;

fn workload() -> Workload {
    WorkloadSpec {
        objects: 4_000,
        sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
        requests: RequestSpec {
            count: 80,
            min_objects: 20,
            max_objects: 30,
            count_shape: 1.0,
            alpha: 0.3,
        },
        seed: 5,
    }
    .generate()
}

fn main() {
    let system = paper_table1();
    let w = workload();
    let placement = ParallelBatchPlacement::with_m(4)
        .place(&w, &system)
        .expect("placement");
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: RATE_PER_HOUR,
            seed: 0xD15C,
        },
        SAMPLES,
    );

    let mut rows = Vec::new();
    // Greedy first keeps the pre-policy rows in their historical slots;
    // the exact-DP sweep appends its rows after them.
    for seek in [SeekPolicy::Greedy, SeekPolicy::ExactDp] {
        let cfg = cfg.with_seek(seek);
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            // Best-of-N wall time: the scenario is deterministic, so the
            // fastest iteration is the least-noisy estimate.
            let mut best = f64::INFINITY;
            let mut metrics = None;
            for _ in 0..ITERATIONS {
                let mut sim = Simulator::with_natural_policy(placement.clone(), 4);
                let t = Instant::now();
                let out = run_scheduled(&mut sim, &w, policy.as_ref(), &cfg);
                let secs = t.elapsed().as_secs_f64();
                if secs < best {
                    best = secs;
                }
                metrics = Some(out.metrics);
            }
            let m = metrics.expect("at least one iteration");
            let events_per_sec = if best > 0.0 {
                m.events() as f64 / best
            } else {
                0.0
            };
            println!(
                "{:6} {:7}  {:8} requests  {:>12.0} events/s  p50 sojourn {:>9.1}s  p99 {:>9.1}s  wall {:.2}ms",
                kind.label(),
                seek.label(),
                m.served(),
                events_per_sec,
                m.sojourn_percentile(50.0),
                m.sojourn_percentile(99.0),
                best * 1e3
            );
            rows.push(PolicyRow {
                policy: kind.label(),
                seek: seek.label(),
                served: m.served(),
                mounts: m.mounts(),
                events: m.events(),
                events_per_sec,
                p50_sojourn_s: m.sojourn_percentile(50.0),
                p99_sojourn_s: m.sojourn_percentile(99.0),
                p50_wait_s: m.wait_percentile(50.0),
                p99_wait_s: m.wait_percentile(99.0),
                wall_ms: best * 1e3,
            });
        }
    }

    let report = Report {
        bench: "sched",
        samples: SAMPLES,
        rate_per_hour: RATE_PER_HOUR,
        iterations: ITERATIONS,
        policies: rows,
    };
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sched.json");
    let pretty = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out, pretty + "\n").expect("write BENCH_sched.json");
    println!("wrote {}", out.display());
}
