//! Extension — does object striping help? (§2 of the paper.)
//!
//! The paper dismisses tape striping, citing the mass-storage literature:
//! "striping on sequential-accessed tapes suffers from long
//! synchronization latencies … The striping system may perform worse than
//! non-striping system. Thus, in our proposed scheme, we do not consider
//! object striping." This driver checks the claim inside our simulator:
//! the workload is rewritten so every large object becomes `w` fragments
//! ([`tapesim_workload::stripe_workload`]) and each scheme places and
//! serves the striped equivalent.
//!
//! Expected shape: striping inflates the number of cartridges a request
//! touches, so switch-bound schemes degrade (or gain nothing), while its
//! theoretical transfer-parallelism benefit is already delivered — without
//! the extra mounts — by parallel batch placement's cluster spreading.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;
use tapesim_workload::{stripe_workload, StripeSpec};

/// Swept stripe widths (1 = no striping).
pub fn widths() -> Vec<u8> {
    vec![1, 2, 4, 8]
}

/// Runs the experiment. x is the stripe width.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let ws = widths();
    let system = base.system();
    let original = base.generate_workload();

    let points: Vec<(Scheme, u8)> = Scheme::ALL
        .iter()
        .flat_map(|&s| ws.iter().map(move |&w| (s, w)))
        .collect();
    let values = sweep(points, |&(scheme, w)| {
        if w <= 1 {
            evaluate(base, &system, &original, scheme).avg_bandwidth_mbs()
        } else {
            let (striped, _) = stripe_workload(
                &original,
                StripeSpec {
                    width: w,
                    min_object: Bytes::gb(1),
                },
            );
            evaluate(base, &system, &striped, scheme).avg_bandwidth_mbs()
        }
    });

    let mut result = ExperimentResult::new(
        "ext_striping",
        "Effect of object striping (§2 claim)",
        "stripe width (1 = whole objects)",
        "bandwidth (MB/s)",
        ws.iter().map(|&w| w as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * ws.len()..(i + 1) * ws.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    result.push_note(
        "objects ≥ 1 GB split into w fragments; requests fetch every fragment \
         (synchronisation latency appears as extra cartridges per request)"
            .to_string(),
    );
    result.push_note(format!("{} samples per point", base.samples));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn striping_never_rescues_a_scheme_past_parallel_batch() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        // Unstriped parallel batch placement beats every striped variant
        // of the other two schemes — the §2 position that striping is not
        // the way to buy transfer parallelism.
        for w in 0..r.x.len() {
            assert!(
                pbp[0] > opp[w] && pbp[0] > cpp[w],
                "width {}: pbp(1)={:.0} vs opp {:.0} / cpp {:.0}",
                r.x[w],
                pbp[0],
                opp[w],
                cpp[w]
            );
        }
    }

    #[test]
    fn wide_striping_hurts_the_switch_bound_scheme() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let opp = &r.series_by_label("object probability").unwrap().values;
        // Object probability placement is already switch-bound; 8-way
        // striping multiplies the cartridges per request and must not
        // help it.
        assert!(
            opp[3] <= opp[0] * 1.05,
            "8-way striping should not rescue OPP: {opp:?}"
        );
    }
}
