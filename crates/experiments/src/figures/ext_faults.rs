//! Extension — degraded-mode operation under injected faults.
//!
//! Every other figure assumes perfect hardware: drives never die, robot
//! arms never jam, media never grows bad spots. Real tape libraries fail
//! in all three ways, and a placement scheme's value under load is only
//! as good as its behaviour when the library is limping. This driver
//! sweeps a fault-intensity multiplier over `tapesim-faults`'s calibrated
//! *moderate* profile (drive MTBF, jam rate and bad-spot density all
//! scale together) and reruns the concurrent scheduler sweep at each
//! point, with a modest replication budget so exhausted reads can fail
//! over to a copy instead of being counted as losses.
//!
//! Two series per placement scheme: mean restore sojourn (the user-visible
//! cost of retries, jams and shrunken batches) and drive availability
//! (the fraction of drive-hours that survived). Every sweep point runs
//! with the trace auditor on — a fault-path invariant breach fails the
//! experiment rather than producing a quietly wrong figure.
//!
//! The headline inverts every fault-free figure: parallel batch
//! placement, the winner everywhere else, loses the *most* requests once
//! drives start dying. Striping a request across libraries makes its
//! completion depend on every one of them — the same coupling that buys
//! parallel bandwidth amplifies fault exposure, exactly as striping does
//! in disk arrays. The probability-based schemes, which spread objects
//! with no per-request structure, degrade more gracefully.

use crate::harness::{sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_faults::{FaultPlan, FaultSpec};
use tapesim_sched::{run_scheduled_faulty, PolicyKind, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::Simulator;
use tapesim_workload::{replicate_workload, ReplicationSpec};

/// Swept multipliers over [`FaultSpec::moderate`]. 0 is the fault-free
/// anchor (bit-identical to `ext_sched`'s engine); 4 is a library having
/// a very bad day.
pub fn intensities() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 2.0, 4.0]
}

/// Arrival rate for every sweep point, restores per hour. High enough
/// that queues form and degraded batching matters, low enough that the
/// fault-free anchor is not already saturated.
const PER_HOUR: f64 = 16.0;

/// Replication budget as a fraction of workload bytes, spent up front so
/// that reads which exhaust their retry budget have somewhere to go.
const REPLICA_BUDGET: f64 = 0.10;

/// Extra multiplier on the profile's bad-spot density. An object extent
/// covers well under 1% of a cartridge, so at the profile's base density
/// a swept run of a few hundred requests almost never crosses a spot and
/// the retry/failover machinery sits idle; running the media process
/// hotter (only in this driver — drive and robot processes stay at the
/// profile's scaled rates) makes it observable at realistic sample
/// counts.
const MEDIA_FACTOR: f64 = 8.0;

/// The fault spec for one sweep point.
fn spec_for(seed: u64, intensity: f64) -> FaultSpec {
    let mut spec = FaultSpec::moderate(seed).scaled(intensity);
    spec.bad_spots_per_tape *= MEDIA_FACTOR;
    spec
}

/// Scheduling policy for every cell: per-tape batching, the default
/// concurrent policy and the one whose shrink-below-`d−m` rule the fault
/// path exercises.
const POLICY: PolicyKind = PolicyKind::BatchByTape;

/// Short scheme tag for the compound series labels.
fn short(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::ParallelBatch => "pbp",
        Scheme::ObjectProbability => "opp",
        Scheme::ClusterProbability => "cpp",
    }
}

/// Per-cell outcome of [`cell`].
#[derive(Debug, Clone, Copy)]
pub struct FaultCell {
    /// Mean sojourn over served requests, seconds.
    pub sojourn: f64,
    /// Fraction of drive-hours alive over the run.
    pub availability: f64,
    /// Transient read errors retried.
    pub retries: u64,
    /// Jobs redirected to a replica copy.
    pub failovers: u64,
    /// Requests that lost at least one job terminally.
    pub lost: u64,
    /// Requests served to completion.
    pub served: u64,
}

/// Runs one (scheme, intensity) cell, auditing every transcript; panics
/// on any invariant breach (an experiment must not chart a broken run).
pub fn cell(base: &ExperimentSettings, scheme: Scheme, intensity: f64) -> FaultCell {
    let system = base.system();
    let original = base.generate_workload();
    let budget = original.total_bytes().scale(REPLICA_BUDGET);
    let (workload, map) = replicate_workload(&original, ReplicationSpec { budget });
    let alternates = map.alternates();

    let placement = scheme
        .policy(base.m)
        .place(&workload, &system)
        .expect("placement");
    let spec = spec_for(base.sim_seed ^ 0xFA, intensity);
    let plan = FaultPlan::generate(&spec, &system);
    let mut sim = Simulator::with_natural_policy(placement, base.m);
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour: PER_HOUR,
            seed: base.sim_seed,
        },
        base.samples,
    )
    .with_audit(true);
    let out = run_scheduled_faulty(
        &mut sim,
        &workload,
        POLICY.build().as_ref(),
        &cfg,
        &plan,
        &alternates,
    );
    if let Some(report) = out.reports.iter().find(|r| !r.is_clean()) {
        panic!(
            "{} at intensity {intensity}: fault-path invariant breach: {report}",
            scheme.label()
        );
    }
    FaultCell {
        sojourn: out.metrics.avg_sojourn(),
        availability: out.metrics.availability(),
        retries: out.metrics.retries(),
        failovers: out.metrics.failovers(),
        lost: out.metrics.lost(),
        served: out.metrics.served(),
    }
}

/// Runs the experiment. x is the fault-intensity multiplier; y the mean
/// sojourn, plus one availability series per scheme.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let xs = intensities();
    let n = xs.len();
    let points: Vec<(Scheme, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| (0..n).map(move |i| (s, i)))
        .collect();
    let cells = sweep(points, |&(scheme, i)| cell(base, scheme, xs[i]));

    let mut result = ExperimentResult::new(
        "ext_faults",
        "Mean restore sojourn vs. fault intensity (drive/robot/media faults)",
        "fault intensity (x moderate profile)",
        "sojourn time (s)",
        xs.clone(),
    );
    for (si, &scheme) in Scheme::ALL.iter().enumerate() {
        let row = &cells[si * n..(si + 1) * n];
        result.push_series(Series::new(
            format!("{} sojourn", short(scheme)),
            row.iter().map(|c| c.sojourn).collect(),
        ));
        result.push_series(Series::new(
            format!("{} availability", short(scheme)),
            row.iter().map(|c| c.availability).collect(),
        ));
        for &i in &[n / 2, n - 1] {
            let c = &row[i];
            result.push_note(format!(
                "{} at {}x: {} served, {} lost, {} retries, {} failovers, \
                 availability {:.3}",
                scheme.label(),
                xs[i],
                c.served,
                c.lost,
                c.retries,
                c.failovers,
                c.availability,
            ));
        }
    }
    result.push_note(format!(
        "moderate fault profile scaled per point (media process x{MEDIA_FACTOR}); \
         {PER_HOUR}/h Poisson arrivals, batch policy, {:.0}% replication budget \
         for failover, auditor on at every point; {} requests per point",
        REPLICA_BUDGET * 100.0,
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn six_series_and_fault_free_anchor_is_perfect() {
        let mut s = quick_settings();
        s.samples = 25;
        let r = run(&s);
        assert_eq!(r.series.len(), 6);
        assert_eq!(r.x, intensities());
        for scheme in Scheme::ALL {
            let avail = &r
                .series_by_label(&format!("{} availability", short(scheme)))
                .unwrap()
                .values;
            assert_eq!(
                avail[0],
                1.0,
                "{}: zero faults, full availability",
                scheme.label()
            );
            for (i, a) in avail.iter().enumerate() {
                assert!(
                    *a > 0.0 && *a <= 1.0,
                    "{} availability out of range at point {i}: {a}",
                    scheme.label()
                );
            }
        }
    }

    /// Every request is either served or counted lost, at every swept
    /// intensity — the conservation law the auditor enforces per
    /// transcript, checked here end-to-end through the driver.
    #[test]
    fn sweep_conserves_requests_under_faults() {
        let mut s = quick_settings();
        s.samples = 20;
        for &intensity in &[0.0, 4.0] {
            let c = cell(&s, Scheme::ParallelBatch, intensity);
            assert_eq!(
                c.served + c.lost,
                s.samples as u64,
                "conservation at intensity {intensity}"
            );
        }
        let calm = cell(&s, Scheme::ParallelBatch, 0.0);
        assert_eq!(calm.retries, 0);
        assert_eq!(calm.failovers, 0);
        assert_eq!(calm.lost, 0);
    }
}
