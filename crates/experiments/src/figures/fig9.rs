//! Figure 9 — response-time component comparison (average request ≈160 GB).
//!
//! Paper finding: *object probability* placement pays by far the longest
//! switch time (it ignores object relationships, so a request scatters
//! over many offline tapes); average seek time is a minor component for
//! all three schemes; *object probability* has the best transfer time but
//! its switch time dominates; *cluster probability* is all transfer
//! (serial); *parallel batch* balances the three.

use crate::harness::{evaluate, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;

/// Runs the experiment. The x-axis indexes the schemes (0 = parallel
/// batch, 1 = object probability, 2 = cluster probability); the series are
/// the time components.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let mut sized = *base;
    sized.workload = sized.workload.with_target_request_size(Bytes::gb(160));
    let system = sized.system();
    let workload = sized.generate_workload();

    let runs: Vec<_> = Scheme::ALL
        .iter()
        .map(|&s| evaluate(&sized, &system, &workload, s))
        .collect();

    let mut result = ExperimentResult::new(
        "fig9",
        "Response time component comparison",
        "scheme (0=parallel batch, 1=object probability, 2=cluster probability)",
        "time (s)",
        (0..Scheme::ALL.len()).map(|i| i as f64).collect(),
    );
    result.push_series(Series::new(
        "switch",
        runs.iter().map(|r| r.avg_switch()).collect(),
    ));
    result.push_series(Series::new(
        "seek",
        runs.iter().map(|r| r.avg_seek()).collect(),
    ));
    result.push_series(Series::new(
        "transfer",
        runs.iter().map(|r| r.avg_transfer()).collect(),
    ));
    result.push_series(Series::new(
        "response",
        runs.iter().map(|r| r.avg_response()).collect(),
    ));
    result.push_note(format!(
        "average request {:.1} GB; {} samples; switch time = response − seek − transfer of the last-finishing drive",
        workload.avg_request_bytes().as_gb(),
        sized.samples
    ));
    for (scheme, run) in Scheme::ALL.iter().zip(&runs) {
        result.push_note(format!(
            "{}: response {:.1} s = switch {:.1} + seek {:.1} + transfer {:.1} (avg {:.1} exchanges/request)",
            scheme.label(),
            run.avg_response(),
            run.avg_switch(),
            run.avg_seek(),
            run.avg_transfer(),
            run.avg_switches()
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn component_shapes_match_the_paper() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        let switch = &r.series_by_label("switch").unwrap().values;
        let seek = &r.series_by_label("seek").unwrap().values;
        let transfer = &r.series_by_label("transfer").unwrap().values;
        let response = &r.series_by_label("response").unwrap().values;
        let (pbp, opp, cpp) = (0, 1, 2);

        // Object probability placement has the worst switch time, and it
        // dominates its response.
        assert!(switch[opp] > switch[pbp], "{switch:?}");
        assert!(switch[opp] > switch[cpp], "{switch:?}");
        assert!(switch[opp] > transfer[opp], "switch should dominate OPP");

        // Seek is a minor component for every scheme.
        for i in 0..3 {
            assert!(
                seek[i] < 0.25 * response[i],
                "seek {} vs response {} for scheme {i}",
                seek[i],
                response[i]
            );
        }

        // Cluster probability has the worst transfer time (serial).
        assert!(transfer[cpp] > transfer[pbp], "{transfer:?}");
        assert!(transfer[cpp] > transfer[opp], "{transfer:?}");

        // Parallel batch placement has the best response.
        assert!(response[pbp] < response[opp] && response[pbp] < response[cpp]);
    }
}
