//! Figure 6 — effective bandwidth vs. request popularity skew α.
//!
//! Paper finding: a more skewed popularity favours *parallel batch* and
//! *object probability* placement (fewer tapes accumulate more probability
//! and stay mounted), while *cluster probability* placement barely moves;
//! parallel batch placement wins everywhere. The paper runs this at an
//! average request size of ≈213 GB and then fixes α = 0.3.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};

/// The swept α values.
pub fn alphas() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Runs the experiment.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let alphas = alphas();
    let system = base.system();

    // One workload per α (same objects and request memberships — only the
    // popularity weights change; see tapesim-workload's stream splitting).
    let points: Vec<(Scheme, f64)> = Scheme::ALL
        .iter()
        .flat_map(|&s| alphas.iter().map(move |&a| (s, a)))
        .collect();
    let values = sweep(points, |&(scheme, alpha)| {
        let settings = base.with_alpha(alpha);
        let workload = settings.generate_workload();
        evaluate(&settings, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "fig6",
        "Effective bandwidth vs. alpha",
        "alpha",
        "bandwidth (MB/s)",
        alphas.clone(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * alphas.len()..(i + 1) * alphas.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    let w = base.generate_workload();
    result.push_note(format!(
        "average request size {:.0} GB; {} samples per point; m = {}",
        w.avg_request_bytes().as_gb(),
        base.samples,
        base.m
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn shape_matches_the_paper() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        assert_eq!(r.x.len(), 11);
        assert_eq!(r.series.len(), 3);

        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;

        // Parallel batch wins at every α (the paper's headline claim).
        for i in 0..r.x.len() {
            assert!(
                pbp[i] > opp[i] && pbp[i] > cpp[i],
                "α={}: pbp {:.1} opp {:.1} cpp {:.1}",
                r.x[i],
                pbp[i],
                opp[i],
                cpp[i]
            );
        }
        // Skew helps parallel batch placement: compare ends.
        assert!(
            pbp[10] > pbp[0],
            "pbp at α=1 ({:.1}) should beat α=0 ({:.1})",
            pbp[10],
            pbp[0]
        );
    }
}
