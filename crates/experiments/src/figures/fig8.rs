//! Figure 8 — effective bandwidth vs. number of tape libraries.
//!
//! Paper finding (average request ≈240 GB): *parallel batch* and *object
//! probability* placement scale with the library count, *cluster
//! probability* placement does not (it has no transfer parallelism),
//! although going from 1 to 3 libraries helps even CPP a little by
//! relieving robot contention.
//!
//! Deviation documented in EXPERIMENTS.md: each library gets 240 cartridge
//! cells instead of the L80's 80, because a single library must be able to
//! hold the entire ≈55 TB workload (the paper is silent on how its 32 TB
//! single-library point stores 57 TB of objects). Drives and robots per
//! library — the quantities that determine performance — are unchanged.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;

/// Swept library counts.
pub fn library_counts() -> Vec<u16> {
    vec![1, 2, 3, 4, 5, 6]
}

/// Runs the experiment.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let ns = library_counts();
    let mut sized = *base;
    sized.workload = sized.workload.with_target_request_size(Bytes::gb(240));
    // The single-library point must hold the whole workload by itself.
    sized.tapes_per_library = sized
        .tapes_per_library
        .max(crate::figures::cells_needed(&sized, 1));

    let points: Vec<(Scheme, u16)> = Scheme::ALL
        .iter()
        .flat_map(|&s| ns.iter().map(move |&n| (s, n)))
        .collect();
    let values = sweep(points, |&(scheme, n)| {
        let settings = sized.with_libraries(n);
        let system = settings.system();
        let workload = settings.generate_workload();
        evaluate(&settings, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "fig8",
        "Effective bandwidth vs. number of tape libraries",
        "libraries",
        "bandwidth (MB/s)",
        ns.iter().map(|&n| n as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * ns.len()..(i + 1) * ns.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    result.push_note(format!(
        "average request ≈240 GB; {} cartridge cells per library (see EXPERIMENTS.md); {} samples",
        sized.tapes_per_library, base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn pbp_scales_with_libraries_and_cpp_does_not() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        // Parallel batch placement gains substantially from 1 → 6 libraries.
        assert!(pbp[5] > pbp[0] * 1.5, "pbp should scale: {pbp:?}");
        // Cluster probability placement barely moves past n = 3 (robot
        // contention relief only).
        assert!(
            cpp[5] < cpp[2] * 1.5,
            "cpp should not keep scaling: {cpp:?}"
        );
        // Parallel batch leads at every point.
        for i in 0..6 {
            assert!(pbp[i] > cpp[i], "point {i}: {} vs {}", pbp[i], cpp[i]);
        }
    }
}
