//! One driver per paper artifact.
//!
//! Every driver takes an [`ExperimentSettings`] base (so tests and
//! benchmarks can run shrunken instances via [`quick_settings`]) and
//! returns an [`tapesim_analysis::ExperimentResult`].

pub mod ext_ablation;
pub mod ext_faults;
pub mod ext_online;
pub mod ext_queue;
pub mod ext_replication;
pub mod ext_robots;
pub mod ext_scale;
pub mod ext_sched;
pub mod ext_seek;
pub mod ext_striping;
pub mod ext_tail;
pub mod ext_technology;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

use crate::settings::ExperimentSettings;
use tapesim_model::Bytes;
use tapesim_workload::{ObjectSizeSpec, RequestSpec, WorkloadSpec};

/// A shrunken instance for tests, quick looks (`--quick`) and Criterion
/// benches: ~10× cheaper than the paper's instance with the same
/// qualitative behaviour.
///
/// What shrinks is the *request set* (the cost driver — co-access edges
/// grow with `requests × objects_per_request²`) and the sample count.
/// Object sizes and the object-to-mounted-capacity ratio stay paper-like:
/// the figures' shapes depend on the workload (here ≈52 TB) dwarfing the
/// `n×d` startup-mounted tapes (9.6 TB) and on objects being small
/// relative to a cartridge; a byte-shrunken instance would degenerate
/// into the all-mounted regime where no scheme ever exchanges a tape.
/// 150 requests keep the *requested* working set (≈16 TB) well above
/// mounted capacity, so tape switching — the object of study — occurs.
pub fn quick_settings() -> ExperimentSettings {
    ExperimentSettings {
        samples: 50,
        workload: WorkloadSpec {
            objects: 30_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::mb(1704)),
            requests: RequestSpec {
                count: 150,
                min_objects: 60,
                max_objects: 90,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: WorkloadSpec::default().seed,
        },
        ..ExperimentSettings::default()
    }
}

/// Cartridge cells per library needed to hold `settings`' workload at 85%
/// fill across `libraries` libraries (plus slack). Cell count has no
/// performance effect beyond capacity — drives and robots are per-library.
pub fn cells_needed(settings: &ExperimentSettings, libraries: u16) -> u16 {
    let total = settings.generate_workload().total_bytes().get() as f64;
    let ct = settings.system().library.tape.capacity.get() as f64;
    let cells = (total / (ct * 0.85)).ceil() as u32;
    (cells / libraries.max(1) as u32 + 8).min(u16::MAX as u32) as u16
}

/// Settings picked by the common `--quick` CLI flag.
pub fn settings_from_args() -> ExperimentSettings {
    if std::env::args().any(|a| a == "--quick") {
        quick_settings()
    } else {
        ExperimentSettings::default()
    }
}
