//! Figure 5 — effective bandwidth vs. the number of switch drives `m`.
//!
//! Paper finding: a jump from `m = 1` to `m = 2` (a single switch drive
//! serialises every miss), a maximum somewhere in `m ∈ [2, 4]` whose exact
//! position depends on α, and a decline beyond 4 (the always-mounted batch
//! shrinks, pushing more traffic through the robot). Based on this curve
//! the paper fixes `m = 4` for the rest of the evaluation.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};

/// α curves shown in the figure.
pub fn alphas() -> Vec<f64> {
    vec![0.1, 0.3, 0.6, 0.9]
}

/// Swept `m` values (`1 ..= d−1`).
pub fn ms(base: &ExperimentSettings) -> Vec<u8> {
    let d = base.system().library.drives;
    (1..d).collect()
}

/// Runs the experiment (parallel batch placement only — `m` is its knob).
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let alphas = alphas();
    let ms = ms(base);
    let system = base.system();

    let points: Vec<(f64, u8)> = alphas
        .iter()
        .flat_map(|&a| ms.iter().map(move |&m| (a, m)))
        .collect();
    let values = sweep(points, |&(alpha, m)| {
        let settings = base.with_alpha(alpha).with_m(m);
        let workload = settings.generate_workload();
        evaluate(&settings, &system, &workload, Scheme::ParallelBatch).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "fig5",
        "Bandwidth vs. number of switch drives m",
        "m (switch drives per library)",
        "bandwidth (MB/s)",
        ms.iter().map(|&m| m as f64).collect(),
    );
    for (i, &alpha) in alphas.iter().enumerate() {
        let ys = values[i * ms.len()..(i + 1) * ms.len()].to_vec();
        result.push_series(Series::new(format!("alpha={alpha}"), ys));
    }
    result.push_note(format!(
        "parallel batch placement only; {} samples per point",
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn m_one_is_poor_and_a_maximum_exists_before_the_end() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        assert_eq!(r.x.len(), 7);
        // Full scale shows the sharp m=1→2 jump on every curve (see
        // EXPERIMENTS.md). At the shrunken scale requests touch fewer
        // tapes per library, so the single-switch-drive serialisation is
        // milder; the robust shrunken-scale shapes are:
        //   (i)  on most α curves, some m ≥ 2 clearly beats m = 1,
        //   (ii) the maximum is never at m = d−1 (pinned capacity
        //        exhausted), and the largest m trails the peak.
        let mut m1_clearly_beaten = 0;
        for series in &r.series {
            let ys = &series.values;
            let best_val = ys.iter().cloned().fold(f64::MIN, f64::max);
            let best_idx = ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if best_idx > 0 && best_val > ys[0] * 1.05 {
                m1_clearly_beaten += 1;
            }
            assert!(
                best_idx < ys.len() - 1,
                "{}: maximum at the extreme m ({:?})",
                series.label,
                ys
            );
            assert!(
                *ys.last().unwrap() < best_val,
                "{}: no decline at large m ({ys:?})",
                series.label
            );
        }
        assert!(
            m1_clearly_beaten >= 3,
            "m=1 should be clearly suboptimal on most curves"
        );
    }
}
