//! Extension — workload-scale invariance (§6 closing remarks).
//!
//! "We have varied the total number of objects, the number of pre-defined
//! requests and the number of simulated requests, and found they do not
//! change the relative performance of the three schemes." This driver
//! runs those variations and verifies the ordering
//! `parallel batch > object probability > cluster probability` (by
//! effective bandwidth) holds at every point.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};

/// One scale variation.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Label for the report.
    pub name: &'static str,
    /// Object-population multiplier.
    pub objects_factor: f64,
    /// Pre-defined request-set multiplier.
    pub requests_factor: f64,
    /// Serviced-sample multiplier.
    pub samples_factor: f64,
}

/// The variations exercised.
pub fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "baseline",
            objects_factor: 1.0,
            requests_factor: 1.0,
            samples_factor: 1.0,
        },
        Variant {
            name: "objects ÷ 2",
            objects_factor: 0.5,
            requests_factor: 1.0,
            samples_factor: 1.0,
        },
        Variant {
            name: "objects × 2",
            objects_factor: 2.0,
            requests_factor: 1.0,
            samples_factor: 1.0,
        },
        Variant {
            name: "requests ÷ 2",
            objects_factor: 1.0,
            requests_factor: 0.5,
            samples_factor: 1.0,
        },
        Variant {
            name: "requests × 2",
            objects_factor: 1.0,
            requests_factor: 2.0,
            samples_factor: 1.0,
        },
        Variant {
            name: "samples ÷ 2",
            objects_factor: 1.0,
            requests_factor: 1.0,
            samples_factor: 0.5,
        },
        Variant {
            name: "samples × 2",
            objects_factor: 1.0,
            requests_factor: 1.0,
            samples_factor: 2.0,
        },
    ]
}

fn apply(base: &ExperimentSettings, v: &Variant) -> ExperimentSettings {
    let mut s = *base;
    s.workload.objects = ((base.workload.objects as f64 * v.objects_factor) as u32)
        .max(base.workload.requests.max_objects);
    s.workload.requests.count =
        ((base.workload.requests.count as f64 * v.requests_factor) as u32).max(2);
    s.samples = ((base.samples as f64 * v.samples_factor) as usize).max(10);
    // Doubling the object population doubles total bytes: give every
    // variant enough cartridge cells.
    s.tapes_per_library = base.tapes_per_library.max(240);
    s
}

/// Runs the experiment. x indexes the variant.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let vs = variants();
    let points: Vec<(Scheme, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| (0..vs.len()).map(move |i| (s, i)))
        .collect();
    let values = sweep(points, |&(scheme, i)| {
        let settings = apply(base, &vs[i]);
        let system = settings.system();
        let workload = settings.generate_workload();
        evaluate(&settings, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "ext_scale",
        "Scheme ordering across workload scales",
        "variant index",
        "bandwidth (MB/s)",
        (0..vs.len()).map(|i| i as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * vs.len()..(i + 1) * vs.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    for (i, v) in vs.iter().enumerate() {
        result.push_note(format!("variant {i}: {}", v.name));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn ordering_is_invariant_across_scales() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        for i in 0..r.x.len() {
            assert!(
                pbp[i] > opp[i] && pbp[i] > cpp[i],
                "variant {i}: pbp {:.0} opp {:.0} cpp {:.0}",
                pbp[i],
                opp[i],
                cpp[i]
            );
        }
    }
}
