//! Extension — restore-time tail latencies (beyond the paper's averages).
//!
//! The paper reports averages; a restore SLA lives in the tail. A scheme
//! whose *average* looks acceptable can still strand the unlucky request
//! behind a wall of tape exchanges. This driver reports the p50 / p95 /
//! p99 / max response time per scheme over a long sampled stream.
//!
//! Expected shape: parallel batch placement compresses the whole
//! distribution — popular requests stream switch-free from pinned tapes
//! (tight p50) and cold ones swap one batch in parallel (bounded tail) —
//! while cluster probability placement's serial transfers stretch every
//! percentile and object probability placement's exchange storms blow up
//! the tail specifically.

use crate::harness::Scheme;
use crate::settings::ExperimentSettings;
use tapesim_analysis::stats::{percentile_sorted, summarize};
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_sim::Simulator;

/// Runs the experiment. x indexes the percentile (50, 95, 99, 100).
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let system = base.system();
    let workload = base.generate_workload();
    let percentiles = [50.0, 95.0, 99.0, 100.0];

    let mut result = ExperimentResult::new(
        "ext_tail",
        "Restore response-time percentiles per scheme",
        "percentile",
        "response time (s)",
        percentiles.to_vec(),
    );
    for scheme in Scheme::ALL {
        let placement = scheme
            .policy(base.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, base.m);
        let detailed =
            sim.run_sampled_detailed(&workload, base.samples.max(100) * 2, base.sim_seed);
        let mut responses: Vec<f64> = detailed.iter().map(|m| m.response).collect();
        responses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let ys: Vec<f64> = percentiles
            .iter()
            .map(|&p| percentile_sorted(&responses, p))
            .collect();
        let s = summarize(&responses);
        result.push_note(format!(
            "{}: mean {:.0} s, p50 {:.0}, p95 {:.0}, p99 {:.0}, max {:.0} (n = {})",
            scheme.label(),
            s.mean,
            s.median,
            s.p95,
            percentile_sorted(&responses, 99.0),
            s.max,
            s.n
        ));
        result.push_series(Series::new(scheme.label(), ys));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn parallel_batch_compresses_the_whole_distribution() {
        let mut s = quick_settings();
        s.samples = 60;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        // Percentiles are non-decreasing by construction.
        for series in &r.series {
            for pair in series.values.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-9, "{}", series.label);
            }
        }
        // Parallel batch placement beats both baselines at the median AND
        // at p99 — the average win is not bought with a worse tail.
        assert!(pbp[0] < opp[0] && pbp[0] < cpp[0], "median");
        assert!(pbp[2] < opp[2] && pbp[2] < cpp[2], "p99");
    }
}
