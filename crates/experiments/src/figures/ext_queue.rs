//! Extension — restore queueing under load (beyond the §6 sparse-arrival
//! assumption).
//!
//! The paper measures isolated requests ("the request queuing time in the
//! request queue is zero"). In a busy data centre, restores arrive while
//! earlier ones are still streaming; served FCFS, a scheme's response
//! time becomes a *service* time and queueing theory takes over: mean
//! waiting time diverges as the arrival rate approaches `1/E[service]`.
//! Because parallel batch placement's services are 1.5–2× shorter, it
//! sustains proportionally higher restore rates before the queue blows
//! up — the operational payoff of the paper's bandwidth numbers.

use crate::harness::{sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_sim::queue::{run_queued, ArrivalSpec};
use tapesim_sim::Simulator;

/// Swept arrival rates, restores per hour.
pub fn rates() -> Vec<f64> {
    vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
}

/// Runs the experiment. x is the arrival rate; y the mean sojourn
/// (arrival → completion) time.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let rs = rates();
    let system = base.system();
    let workload = base.generate_workload();

    let points: Vec<(Scheme, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| (0..rs.len()).map(move |i| (s, i)))
        .collect();
    let values = sweep(points, |&(scheme, i)| {
        let placement = scheme
            .policy(base.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, base.m);
        run_queued(
            &mut sim,
            &workload,
            base.samples,
            ArrivalSpec {
                per_hour: rs[i],
                seed: base.sim_seed,
            },
        )
        .avg_sojourn()
    });

    let mut result = ExperimentResult::new(
        "ext_queue",
        "Mean restore sojourn time vs. arrival rate (FCFS queue)",
        "arrivals per hour",
        "sojourn time (s)",
        rs.clone(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * rs.len()..(i + 1) * rs.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    result.push_note(format!(
        "Poisson arrivals, FCFS, one restore in service at a time; {} requests per point",
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn queueing_amplifies_the_scheme_gap() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        // Sojourn grows with load for every scheme…
        for series in &r.series {
            assert!(
                series.values.last().unwrap() > series.values.first().unwrap(),
                "{}: no growth under load: {:?}",
                series.label,
                series.values
            );
        }
        // …parallel batch placement stays fastest at every rate…
        for i in 0..r.x.len() {
            assert!(
                pbp[i] < cpp[i],
                "rate {}: pbp {} vs cpp {}",
                r.x[i],
                pbp[i],
                cpp[i]
            );
        }
        // …and the absolute gap widens as the queue saturates.
        let gap_low = cpp[0] - pbp[0];
        let gap_high = cpp[r.x.len() - 1] - pbp[r.x.len() - 1];
        assert!(
            gap_high > 2.0 * gap_low,
            "queueing should amplify the gap: {gap_low:.0} → {gap_high:.0}"
        );
    }
}
