//! Extension — tape technology improvement (§6 closing remarks).
//!
//! "Due to page limitations, we will not show the performance of different
//! schemes when tape library technology improves, e.g., increased data
//! transfer speed and tape capacity. In general, our scheme improves more
//! than the other two schemes for these cases." This driver runs the LTO
//! generation ladder (LTO-1 → LTO-4) and reports each scheme's bandwidth,
//! checking that claim.
//!
//! Libraries get 240 cartridge cells so the fixed ≈51 TB workload fits
//! even the 100 GB LTO-1 cartridges (see EXPERIMENTS.md).

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::specs::lto_generations;

/// Runs the experiment. x indexes the LTO generation (1-based).
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let generations = lto_generations();
    // LTO-1 stores 100 GB/cartridge: 80 cells × 3 libraries = 24 TB < the
    // ~51 TB workload, so every generation runs with 720 cells per library
    // for comparability.
    let sized = base.with_tapes_per_library(base.tapes_per_library.max(720));

    let points: Vec<(Scheme, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| (0..generations.len()).map(move |g| (s, g)))
        .collect();
    let values = sweep(points, |&(scheme, g)| {
        let (_, drive, tape) = generations[g];
        let system = sized.system_with(drive, tape);
        let workload = sized.generate_workload();
        evaluate(&sized, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "ext_technology",
        "Bandwidth across LTO generations",
        "LTO generation",
        "bandwidth (MB/s)",
        (1..=generations.len()).map(|g| g as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * generations.len()..(i + 1) * generations.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    for (name, drive, tape) in &generations {
        result.push_note(format!(
            "{name}: {} native, {} cartridges",
            drive.native_rate, tape.capacity
        ));
    }
    result.push_note(format!(
        "{} cartridge cells per library so the workload fits LTO-1; {} samples",
        sized.tapes_per_library, base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn pbp_gains_most_from_technology() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        // Bandwidth grows with the generation for the parallel scheme.
        assert!(pbp[3] > pbp[0] * 1.5, "{pbp:?}");
        // Absolute improvement of PBP exceeds CPP's (the paper's claim
        // "our scheme improves more than the other two").
        assert!(
            pbp[3] - pbp[0] > cpp[3] - cpp[0],
            "pbp {pbp:?} vs cpp {cpp:?}"
        );
        // PBP leads at every generation.
        for g in 0..4 {
            assert!(pbp[g] > cpp[g], "generation {g}");
        }
    }
}
