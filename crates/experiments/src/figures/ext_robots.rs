//! Extension — what would a second robot arm buy? (§4's contention story.)
//!
//! The paper's whole trade-off space exists because "the tape load/unload
//! within a tape library is sequential due to the constraint of one robot
//! in a tape library". Larger silos ship with dual accessors; this driver
//! re-runs the three schemes with 1–3 arms per library.
//!
//! Expected shape: the switch-bound scheme (object probability placement)
//! gains the most — its exchanges queue on the arm — while cluster
//! probability placement, which hardly exchanges, gains almost nothing.
//! Parallel batch placement sits in between: it already *schedules around*
//! the single arm by spreading batches across libraries, which is exactly
//! why the paper's scheme wins without extra hardware.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};

/// Swept arm counts per library.
pub fn arm_counts() -> Vec<u8> {
    vec![1, 2, 3]
}

/// Runs the experiment. x is the number of arms per library.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let arms = arm_counts();
    let workload = base.generate_workload();

    let points: Vec<(Scheme, u8)> = Scheme::ALL
        .iter()
        .flat_map(|&s| arms.iter().map(move |&a| (s, a)))
        .collect();
    let values = sweep(points, |&(scheme, a)| {
        let mut system = base.system();
        system.library.robot.arms = a;
        evaluate(base, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "ext_robots",
        "Bandwidth vs. robot arms per library",
        "robot arms per library",
        "bandwidth (MB/s)",
        arms.iter().map(|&a| a as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * arms.len()..(i + 1) * arms.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }
    result.push_note(format!(
        "identical placements; only the per-library accessor count changes; {} samples",
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn extra_arms_help_the_switch_bound_scheme_most() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;

        // A second arm never hurts anyone.
        for series in &r.series {
            assert!(
                series.values[1] >= series.values[0] * 0.99,
                "{}: second arm regressed {:?}",
                series.label,
                series.values
            );
        }
        // OPP (exchange-bound) gains more, relatively, than CPP
        // (transfer-bound).
        let opp_gain = opp[2] / opp[0];
        let cpp_gain = cpp[2] / cpp[0];
        assert!(
            opp_gain > cpp_gain,
            "OPP gain {opp_gain:.2}× should exceed CPP gain {cpp_gain:.2}×"
        );
        // Even with triple arms, parallel batch placement keeps the lead.
        for i in 0..3 {
            assert!(pbp[i] > cpp[i], "arms {}: {} vs {}", i + 1, pbp[i], cpp[i]);
        }
    }
}
