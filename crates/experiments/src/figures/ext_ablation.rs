//! Extension — design-choice ablations of parallel batch placement (§5).
//!
//! The paper motivates each ingredient of the scheme; this driver removes
//! them one at a time and measures the damage:
//!
//! | variant | what changes |
//! |---|---|
//! | `baseline` | the full scheme (§5 defaults) |
//! | `no clustering` | step 4/5 run per-object — co-access ignored |
//! | `descending alignment` | step 6 uses front-of-tape descending order instead of organ-pipe |
//! | `round-robin balance` | Figure 3's zig-zag replaced by naive dealing |
//! | `never split` | clusters always stay on one tape (no transfer parallelism within a cluster) |
//! | `always split` | every cluster fans out, however small |

use crate::harness::{evaluate_pbp_with, sweep};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;
use tapesim_placement::schemes::parallel_batch::{Alignment, Balancing};
use tapesim_placement::ParallelBatchParams;

/// The ablation variants `(label, params)`.
pub fn variants(m: u8) -> Vec<(&'static str, ParallelBatchParams)> {
    let base = ParallelBatchParams::default().with_m(m);
    vec![
        ("baseline", base),
        (
            "no clustering",
            ParallelBatchParams {
                use_clusters: false,
                ..base
            },
        ),
        (
            "descending alignment",
            ParallelBatchParams {
                alignment: Alignment::Descending,
                ..base
            },
        ),
        (
            "round-robin balance",
            ParallelBatchParams {
                balancing: Balancing::RoundRobin,
                ..base
            },
        ),
        (
            "never split",
            ParallelBatchParams {
                min_split_bytes: Bytes::tb(100),
                ..base
            },
        ),
        (
            "always split",
            ParallelBatchParams {
                min_split_bytes: Bytes::ZERO,
                ..base
            },
        ),
    ]
}

/// Runs the ablations. x indexes the variant.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let vs = variants(base.m);
    let system = base.system();
    let workload = base.generate_workload();

    let rows = sweep(vs.clone(), |(_, params)| {
        evaluate_pbp_with(base, &system, &workload, *params)
    });

    let mut result = ExperimentResult::new(
        "ext_ablation",
        "Parallel batch placement ablations",
        "variant index",
        "bandwidth (MB/s)",
        (0..vs.len()).map(|i| i as f64).collect(),
    );
    result.push_series(Series::new(
        "bandwidth",
        rows.iter().map(|r| r.avg_bandwidth_mbs()).collect(),
    ));
    result.push_series(Series::new(
        "switch time (s)",
        rows.iter().map(|r| r.avg_switch()).collect(),
    ));
    result.push_series(Series::new(
        "transfer time (s)",
        rows.iter().map(|r| r.avg_transfer()).collect(),
    ));
    for (i, ((name, _), run)) in vs.iter().zip(&rows).enumerate() {
        result.push_note(format!(
            "variant {i} ({name}): {:.1} MB/s, response {:.1} s",
            run.avg_bandwidth_mbs(),
            run.avg_response()
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn removing_ingredients_hurts() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        let bw = &r.series_by_label("bandwidth").unwrap().values;
        let baseline = bw[0];
        // "never split" kills within-cluster transfer parallelism — it
        // must cost real bandwidth.
        assert!(
            bw[4] < baseline * 0.9,
            "never-split ({:.0}) should clearly trail baseline ({baseline:.0})",
            bw[4]
        );
        // No variant should *beat* the baseline by a wide margin (the
        // defaults are supposed to be good).
        for (i, &v) in bw.iter().enumerate() {
            assert!(
                v < baseline * 1.25,
                "variant {i} unexpectedly dominates: {v:.0} vs {baseline:.0}"
            );
        }
    }
}
