//! Extension — in-tape service order under load.
//!
//! `ext_sched` varied the scheduling policy above the tape; this figure
//! varies the planner *inside* it. Per-tape batching coalesces every
//! queued request for a mounted tape into one service pass, and the
//! order that pass visits extents is the [`tapesim_sim::SeekPolicy`]:
//! `greedy` (the default five-candidate sweep), `exact` (the polynomial
//! LTSP dynamic program, provably optimal per batch), and `approx` (the
//! ratio-2 sweep). Nine series: three placement schemes × three seek
//! policies, all under `batch` scheduling where multi-extent passes —
//! the only place the planner matters — actually form.
//!
//! The headline: per-batch optimal ordering is a second-order effect on
//! sojourn next to placement and batching, but the exact planner never
//! pays more drive seek time than the greedy sweep on any cell here
//! (the per-scheme seek budgets are recorded in the figure notes).

use crate::harness::{sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_obs::SpanKind;
use tapesim_sched::{run_scheduled, PolicyKind, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::{SeekPolicy, Simulator};

/// Swept arrival rates, restores per hour. Same log sweep as
/// `ext_sched`: batches deep enough for service order to matter only
/// form once the queue backs up, at the top of the range.
pub fn rates() -> Vec<f64> {
    vec![1.0, 4.0, 16.0, 64.0]
}

/// The compared planners, in lattice order (`exact ≤ greedy`,
/// `exact ≤ approx ≤ 2·exact` on every batch's planned seek distance).
pub const SEEKS: [SeekPolicy; 3] = [SeekPolicy::Greedy, SeekPolicy::ExactDp, SeekPolicy::Approx];

/// Short scheme tag for the compound series labels.
fn short(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::ParallelBatch => "pbp",
        Scheme::ObjectProbability => "opp",
        Scheme::ClusterProbability => "cpp",
    }
}

/// Runs one (scheme, seek policy, rate) cell under `batch` scheduling;
/// returns (mean sojourn, aggregate drive seek seconds).
pub fn cell(
    base: &ExperimentSettings,
    scheme: Scheme,
    seek: SeekPolicy,
    per_hour: f64,
) -> (f64, f64) {
    let system = base.system();
    let workload = base.generate_workload();
    let placement = scheme
        .policy(base.m)
        .place(&workload, &system)
        .expect("placement");
    let mut sim = Simulator::with_natural_policy(placement, base.m);
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour,
            seed: base.sim_seed,
        },
        base.samples,
    )
    .with_seek(seek)
    .with_obs(true);
    let out = run_scheduled(
        &mut sim,
        &workload,
        PolicyKind::BatchByTape.build().as_ref(),
        &cfg,
    );
    let budget = out.budget.expect("obs on");
    (
        out.metrics.avg_sojourn(),
        budget.drive_total(SpanKind::Seek),
    )
}

/// Runs the experiment. x is the arrival rate; y the mean sojourn time,
/// one series per placement scheme × seek policy.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let rs = rates();
    let system = base.system();
    let workload = base.generate_workload();

    let n = rs.len();
    let points: Vec<(Scheme, SeekPolicy, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| {
            SEEKS
                .iter()
                .flat_map(move |&k| (0..n).map(move |i| (s, k, i)))
        })
        .collect();
    let values: Vec<(f64, f64)> = sweep(points, |&(scheme, seek, i)| {
        let placement = scheme
            .policy(base.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, base.m);
        let cfg = SchedConfig::new(
            ArrivalSpec {
                per_hour: rs[i],
                seed: base.sim_seed,
            },
            base.samples,
        )
        .with_seek(seek)
        .with_obs(true);
        let out = run_scheduled(
            &mut sim,
            &workload,
            PolicyKind::BatchByTape.build().as_ref(),
            &cfg,
        );
        let budget = out.budget.expect("obs on");
        (
            out.metrics.avg_sojourn(),
            budget.drive_total(SpanKind::Seek),
        )
    });

    let mut result = ExperimentResult::new(
        "ext_seek",
        "Mean restore sojourn vs. arrival rate (in-tape seek policy × placement)",
        "arrivals per hour",
        "sojourn time (s)",
        rs.clone(),
    );
    let top_rate = rs.len() - 1;
    for (si, &scheme) in Scheme::ALL.iter().enumerate() {
        let mut seek_note = format!(
            "{} drive seek seconds at {}/h (batch):",
            scheme.label(),
            rs[top_rate]
        );
        for (ki, &seek) in SEEKS.iter().enumerate() {
            let off = (si * SEEKS.len() + ki) * rs.len();
            let ys = values[off..off + rs.len()].iter().map(|v| v.0).collect();
            result.push_series(Series::new(
                format!("{}/{}", short(scheme), seek.label()),
                ys,
            ));
            seek_note.push_str(&format!(
                " {} {:.0}",
                seek.label(),
                values[off + top_rate].1
            ));
        }
        result.push_note(seek_note);
    }
    result.push_note(format!(
        "Per-tape batching throughout; the seek policy reorders each \
         batch's in-tape service pass (greedy = 5-candidate sweep, exact \
         = LTSP dynamic program, approx = ratio-2 sweep); {} requests \
         per point",
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn nine_series_and_exact_never_pays_more_seek_than_greedy() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        assert_eq!(r.series.len(), 9);
        assert_eq!(r.x, rates());

        // The headline acceptance: at the highest swept rate — where the
        // deepest batches form — the exact planner's aggregate drive
        // seek time never exceeds greedy's, for every placement scheme.
        // (The per-batch guarantee is exact ≤ greedy on planned seek
        // distance; with identical batches and the linear positioning
        // model that carries through to seek seconds here.)
        let top = *rates().last().expect("rates");
        for scheme in Scheme::ALL {
            let (_, greedy_seek) = cell(&s, scheme, SeekPolicy::Greedy, top);
            let (_, exact_seek) = cell(&s, scheme, SeekPolicy::ExactDp, top);
            assert!(
                exact_seek <= greedy_seek,
                "{}: exact planner should not pay more seek at {top}/h: \
                 exact {exact_seek:.1}s vs greedy {greedy_seek:.1}s",
                scheme.label()
            );
        }
    }

    #[test]
    fn greedy_series_anchors_to_the_default_config() {
        let mut s = quick_settings();
        s.samples = 25;
        let rate = rates()[0];
        let (sojourn, _) = cell(&s, Scheme::ParallelBatch, SeekPolicy::Greedy, rate);

        let system = s.system();
        let workload = s.generate_workload();
        let placement = Scheme::ParallelBatch
            .policy(s.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, s.m);
        let cfg = SchedConfig::new(
            ArrivalSpec {
                per_hour: rate,
                seed: s.sim_seed,
            },
            s.samples,
        );
        let out = run_scheduled(
            &mut sim,
            &workload,
            PolicyKind::BatchByTape.build().as_ref(),
            &cfg,
        );
        assert_eq!(
            sojourn,
            out.metrics.avg_sojourn(),
            "explicit greedy drifted from the default config"
        );
    }
}
