//! Figure 7 — effective bandwidth vs. average request size.
//!
//! The request size is swept "by changing the object size" (§6): the
//! object-size distribution is rescaled so the popularity-and-membership
//! structure of the requests is untouched. Paper finding: bandwidth rises
//! (but not dramatically) with request size — transfer amortises the fixed
//! switch/seek costs — and parallel batch placement leads throughout.
//!
//! The driver also reproduces the §6 **extreme case**: object sizes shrunk
//! until the `n×d` startup-mounted tapes hold everything, so no request
//! ever switches. There *object probability* placement has the lowest
//! response (pure seek optimisation wins) and the interesting contrast is
//! the transfer share of the response: the paper reports ≈62% for cluster
//! probability (serial transfer) vs ≈19% for parallel batch.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;

/// Swept average request sizes (GB).
pub fn request_sizes_gb() -> Vec<u64> {
    vec![80, 120, 160, 200, 240, 280, 320]
}

/// Runs the sweep plus the extreme all-mounted case.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let sizes = request_sizes_gb();
    // Size the cartridge-cell count to the *largest* sweep point: scaling
    // object sizes up scales total bytes with them, and the cell count has
    // no performance effect beyond providing capacity (drives and robots
    // are untouched).
    let mut base = *base;
    {
        let largest = base
            .workload
            .with_target_request_size(Bytes::gb(*sizes.last().expect("non-empty sweep")));
        let total = largest.generate().total_bytes().get() as f64;
        let ct = base.system().library.tape.capacity.get() as f64;
        let cells_needed = (total / (ct * 0.85)).ceil() as u16;
        let per_library = cells_needed / base.libraries.max(1) + 8;
        base.tapes_per_library = base.tapes_per_library.max(per_library);
    }
    let system = base.system();

    let points: Vec<(Scheme, u64)> = Scheme::ALL
        .iter()
        .flat_map(|&s| sizes.iter().map(move |&gb| (s, gb)))
        .collect();
    let values = sweep(points, |&(scheme, gb)| {
        let mut settings = base;
        settings.workload = settings.workload.with_target_request_size(Bytes::gb(gb));
        let workload = settings.generate_workload();
        evaluate(&settings, &system, &workload, scheme).avg_bandwidth_mbs()
    });

    let mut result = ExperimentResult::new(
        "fig7",
        "Effective bandwidth vs. average request size",
        "average request size (GB)",
        "bandwidth (MB/s)",
        sizes.iter().map(|&g| g as f64).collect(),
    );
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let ys = values[i * sizes.len()..(i + 1) * sizes.len()].to_vec();
        result.push_series(Series::new(scheme.label(), ys));
    }

    // Extreme case: everything fits the n×d startup-mounted tapes.
    let nd = system.total_drives() as u64;
    let all_mounted_bytes = Bytes(system.library.tape.capacity.get() * nd).scale(0.9);
    let per_request = Bytes(
        (all_mounted_bytes.get() as f64 / base.workload.objects as f64
            * mean_request_objects(&base)) as u64,
    );
    let mut extreme = base;
    extreme.workload = extreme.workload.with_target_request_size(per_request);
    let workload = extreme.generate_workload();
    result.push_note(format!(
        "extreme case: avg request {:.1} GB so all data fits the {} startup-mounted tapes",
        workload.avg_request_bytes().as_gb(),
        nd
    ));
    for scheme in Scheme::ALL {
        let run = evaluate(&extreme, &system, &workload, scheme);
        result.push_note(format!(
            "extreme {}: response {:.1} s, switch share {:.0}%, transfer share {:.0}% of response",
            scheme.label(),
            run.avg_response(),
            run.avg_switch() / run.avg_response() * 100.0,
            run.avg_transfer() / run.avg_response() * 100.0,
        ));
    }
    result.push_note(format!("{} samples per point", base.samples));
    result
}

fn mean_request_objects(base: &ExperimentSettings) -> f64 {
    (base.workload.requests.min_objects + base.workload.requests.max_objects) as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn bandwidth_rises_with_request_size_and_pbp_leads() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let pbp = &r.series_by_label("parallel batch").unwrap().values;
        let opp = &r.series_by_label("object probability").unwrap().values;
        let cpp = &r.series_by_label("cluster probability").unwrap().values;
        for i in 0..r.x.len() {
            assert!(pbp[i] > opp[i] && pbp[i] > cpp[i], "point {i}");
        }
        // Rising trend: the largest request size clearly beats the smallest.
        assert!(pbp.last().unwrap() > &(pbp[0] * 1.1));
    }

    #[test]
    fn extreme_case_transfer_shares_separate_the_schemes() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        // Parse the transfer shares back out of the notes.
        let share = |needle: &str| -> f64 {
            r.notes
                .iter()
                .find(|n| n.starts_with(&format!("extreme {needle}")))
                .and_then(|n| n.split("transfer share ").nth(1))
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("missing extreme note for {needle}"))
        };
        let cpp = share("cluster probability");
        let pbp = share("parallel batch");
        // Paper: ≈62% vs ≈19%. The shrunken instance compresses the gap
        // (tiny transfers leave seeks dominating PBP's response), but the
        // separation must stay unmistakable.
        assert!(
            cpp > 1.3 * pbp,
            "serial CPP transfer share ({cpp}%) should dwarf parallel PBP ({pbp}%)"
        );
    }
}
