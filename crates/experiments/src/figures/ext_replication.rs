//! Extension — buying back the residual switches with replication.
//!
//! Even parallel batch placement cannot co-locate a *shared* object with
//! every request that wants it; at the paper's workload (~half of
//! requested objects shared) those foreign-cartridge visits are most of
//! PBP's remaining switch time. Tape capacity is the one resource the
//! system has spare (~46% of the cells are empty), so this driver spends
//! it: [`tapesim_workload::replicate_workload`] gives the most valuable
//! shared objects a private copy per requesting group, and the sweep
//! measures bandwidth and residual exchanges as the byte budget grows.

use crate::harness::{evaluate, sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_model::Bytes;
use tapesim_workload::{replicate_workload, ReplicationSpec};

/// Swept budgets as a percentage of the workload's total bytes.
pub fn budget_percents() -> Vec<f64> {
    vec![0.0, 1.0, 2.0, 5.0, 10.0, 20.0]
}

/// Runs the experiment (parallel batch placement; x = budget %).
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let pcts = budget_percents();
    let system = base.system();
    let original = base.generate_workload();
    let total = original.total_bytes();

    let rows = sweep(pcts.clone(), |&pct| {
        let budget = total.scale(pct / 100.0);
        let (workload, map) = replicate_workload(&original, ReplicationSpec { budget });
        let run = evaluate(base, &system, &workload, Scheme::ParallelBatch);
        (
            run.avg_bandwidth_mbs(),
            run.avg_switches(),
            run.avg_switch(),
            map.n_copies(),
            map.spent,
        )
    });

    let mut result = ExperimentResult::new(
        "ext_replication",
        "Replicating shared objects vs. residual switches (PBP)",
        "replication budget (% of workload bytes)",
        "bandwidth (MB/s)",
        pcts.clone(),
    );
    result.push_series(Series::new("bandwidth", rows.iter().map(|r| r.0).collect()));
    result.push_series(Series::new(
        "exchanges per request",
        rows.iter().map(|r| r.1).collect(),
    ));
    result.push_series(Series::new(
        "switch time (s)",
        rows.iter().map(|r| r.2).collect(),
    ));
    for (pct, row) in pcts.iter().zip(&rows) {
        result.push_note(format!(
            "budget {pct}%: {} copies ({} spent), {:.1} MB/s, {:.1} exchanges/request",
            row.3,
            Bytes(row.4.get()),
            row.0,
            row.1
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn replication_buys_bandwidth_with_bytes() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        let bw = &r.series_by_label("bandwidth").unwrap().values;
        let sw = &r.series_by_label("exchanges per request").unwrap().values;
        // More budget never means more exchanges (weak monotone with
        // generous slack for placement noise)…
        assert!(
            sw.last().unwrap() <= &(sw[0] * 1.05 + 0.5),
            "exchanges rose with budget: {sw:?}"
        );
        // …and a 20% budget buys a real bandwidth win over none.
        assert!(
            bw.last().unwrap() > &(bw[0] * 1.05),
            "20% budget should clearly beat 0%: {bw:?}"
        );
    }
}
