//! Table 1 — tape drive / library specifications.
//!
//! Echoes the configuration constants the whole evaluation runs on, from
//! the spec presets, so the reproduced table always reflects the code.

use tapesim_analysis::Table;
use tapesim_model::specs::paper_table1;

/// Builds the table.
pub fn run() -> Table {
    let sys = paper_table1();
    let d = sys.library.drive;
    let r = sys.library.robot;
    let mut t = Table::new(&["parameter", "value"]);
    let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
    row(
        "Average cell to drive time",
        format!("{:.1}s", r.cell_to_drive_time),
    );
    row(
        "Tape load and thread to ready",
        format!("{:.0}s", d.load_time),
    );
    row("Data transfer rate, native", format!("{}", d.native_rate));
    row(
        "Maximum/average rewind time",
        format!(
            "{:.0}/{:.0}s",
            d.full_pass_time,
            d.rewind_time(
                tapesim_model::Bytes(sys.library.tape.capacity.get() / 2),
                sys.library.tape.capacity
            )
        ),
    );
    row("Unload time", format!("{:.0}s", d.unload_time));
    row(
        "Average file access time (first file)",
        // Load + average half-pass seek under the linear model.
        format!(
            "{:.0}s (linear model; paper quotes 72s)",
            d.load_time
                + d.position_time(
                    tapesim_model::Bytes::ZERO,
                    tapesim_model::Bytes(sys.library.tape.capacity.get() / 2),
                    sys.library.tape.capacity
                )
        ),
    );
    row(
        "Number of tapes per library",
        format!("{}", sys.library.tapes),
    );
    row("Tape capacity", format!("{}", sys.library.tape.capacity));
    row("Tape drives per library", format!("{}", sys.library.drives));
    row("Number of tape libraries", format!("{}", sys.libraries));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoes_every_table1_constant() {
        let md = run().to_markdown();
        for needle in [
            "7.6s",
            "19s",
            "80.0 MB/s",
            "98/49s",
            "80",
            "400.00 GB",
            "8",
            "3",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
    }
}
