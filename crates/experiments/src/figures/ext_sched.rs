//! Extension — concurrent scheduling policies under load.
//!
//! `ext_queue` showed what happens when the paper's one-by-one assumption
//! meets a Poisson stream: FCFS on one conceptual server. This figure
//! adds the scheduling dimension on top of the placement dimension: the
//! same arrival streams run through `tapesim-sched`, where all drives
//! serve concurrently from a shared admission queue and requests for the
//! same tape can coalesce into one mount. Nine series: three placement
//! schemes × three policies (`fcfs` = the legacy baseline, `batch` =
//! per-tape coalescing, `sltf` = shortest-locate/service-time-first).
//!
//! The headline: at high arrival rates, batching strictly reduces tape
//! switches versus FCFS on the same demand (the mount counts are recorded
//! in the figure notes), and the sojourn gap between placement schemes
//! persists under every policy.

use crate::harness::{sweep, Scheme};
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_obs::SpanKind;
use tapesim_sched::{run_scheduled, PolicyKind, SchedConfig};
use tapesim_sim::queue::ArrivalSpec;
use tapesim_sim::Simulator;

/// Swept arrival rates, restores per hour. A log sweep: FCFS mount counts
/// are rate-independent (a sequential server replays the same service
/// order whatever the arrival spacing), so the interesting regime — where
/// deep queues let per-tape coalescing beat even cluster-probability's
/// naturally low switch count — only opens up at the top of the range.
pub fn rates() -> Vec<f64> {
    vec![1.0, 4.0, 16.0, 64.0]
}

/// Short scheme tag for the compound series labels.
fn short(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::ParallelBatch => "pbp",
        Scheme::ObjectProbability => "opp",
        Scheme::ClusterProbability => "cpp",
    }
}

/// Runs one (scheme, policy, rate) cell; returns (mean sojourn, mounts).
pub fn cell(
    base: &ExperimentSettings,
    scheme: Scheme,
    kind: PolicyKind,
    per_hour: f64,
) -> (f64, u64) {
    let system = base.system();
    let workload = base.generate_workload();
    let placement = scheme
        .policy(base.m)
        .place(&workload, &system)
        .expect("placement");
    let mut sim = Simulator::with_natural_policy(placement, base.m);
    let cfg = SchedConfig::new(
        ArrivalSpec {
            per_hour,
            seed: base.sim_seed,
        },
        base.samples,
    );
    let out = run_scheduled(&mut sim, &workload, kind.build().as_ref(), &cfg);
    (out.metrics.avg_sojourn(), out.metrics.mounts())
}

/// Runs the experiment. x is the arrival rate; y the mean sojourn time,
/// one series per placement scheme × scheduling policy.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let rs = rates();
    let system = base.system();
    let workload = base.generate_workload();

    let n = rs.len();
    let points: Vec<(Scheme, PolicyKind, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| {
            PolicyKind::ALL
                .iter()
                .flat_map(move |&k| (0..n).map(move |i| (s, k, i)))
        })
        .collect();
    let values: Vec<(f64, u64)> = sweep(points, |&(scheme, kind, i)| {
        let placement = scheme
            .policy(base.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, base.m);
        let cfg = SchedConfig::new(
            ArrivalSpec {
                per_hour: rs[i],
                seed: base.sim_seed,
            },
            base.samples,
        );
        let out = run_scheduled(&mut sim, &workload, kind.build().as_ref(), &cfg);
        (out.metrics.avg_sojourn(), out.metrics.mounts())
    });

    let mut result = ExperimentResult::new(
        "ext_sched",
        "Mean restore sojourn vs. arrival rate (scheduling policy × placement)",
        "arrivals per hour",
        "sojourn time (s)",
        rs.clone(),
    );
    let top_rate = rs.len() - 1;
    for (si, &scheme) in Scheme::ALL.iter().enumerate() {
        let mut mount_note = format!("{} mounts at {}/h:", scheme.label(), rs[top_rate]);
        for (ki, &kind) in PolicyKind::ALL.iter().enumerate() {
            let off = (si * PolicyKind::ALL.len() + ki) * rs.len();
            let ys = values[off..off + rs.len()].iter().map(|v| v.0).collect();
            result.push_series(Series::new(
                format!("{}/{}", short(scheme), kind.label()),
                ys,
            ));
            mount_note.push_str(&format!(" {} {}", kind.label(), values[off + top_rate].1));
        }
        result.push_note(mount_note);
    }
    // Resource-budget columns for the top-rate batch runs: where each
    // scheme's drive time actually goes, from the span accountant.
    for &scheme in Scheme::ALL.iter() {
        let placement = scheme
            .policy(base.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, base.m);
        let cfg = SchedConfig::new(
            ArrivalSpec {
                per_hour: rs[top_rate],
                seed: base.sim_seed,
            },
            base.samples,
        )
        .with_obs(true);
        let out = run_scheduled(
            &mut sim,
            &workload,
            PolicyKind::BatchByTape.build().as_ref(),
            &cfg,
        );
        let budget = out.budget.expect("obs on");
        let drive_secs = budget.makespan_s * budget.drives.len() as f64;
        let share = |kind| 100.0 * budget.drive_total(kind) / drive_secs;
        result.push_note(format!(
            "{} budget at {}/h (batch): transfer {:.1}% seek {:.1}% rewind {:.1}% \
             exchange {:.1}% idle {:.1}% | drive util {:.1}% | robot overlap {:.1}%",
            short(scheme),
            rs[top_rate],
            share(SpanKind::Transfer),
            share(SpanKind::Seek),
            share(SpanKind::Rewind),
            share(SpanKind::Exchange),
            share(SpanKind::Idle),
            budget.drive_utilisation() * 100.0,
            budget.robot_overlap_ratio() * 100.0,
        ));
    }
    result.push_note(format!(
        "Poisson arrivals into a shared admission queue, all drives serving \
         concurrently; per-tape batching under batch/sltf; {} requests per point",
        base.samples
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;
    use tapesim_sim::queue::run_queued;

    #[test]
    fn nine_series_and_batching_cuts_mounts_under_load() {
        let mut s = quick_settings();
        s.samples = 40;
        let r = run(&s);
        assert_eq!(r.series.len(), 9);
        assert_eq!(r.x, rates());

        // The headline acceptance: at the highest swept rate, per-tape
        // batching performs strictly fewer mounts than FCFS on the same
        // demand stream, for every placement scheme.
        let top = *rates().last().expect("rates");
        for scheme in Scheme::ALL {
            let (_, fcfs_mounts) = cell(&s, scheme, PolicyKind::Fcfs, top);
            let (_, batch_mounts) = cell(&s, scheme, PolicyKind::BatchByTape, top);
            assert!(
                batch_mounts < fcfs_mounts,
                "{}: batching should cut mounts at {top}/h: batch {batch_mounts} \
                 vs fcfs {fcfs_mounts}",
                scheme.label()
            );
        }
    }

    #[test]
    fn fcfs_series_anchors_to_the_legacy_queue() {
        let mut s = quick_settings();
        s.samples = 25;
        let rate = rates()[0];
        let (sojourn, _) = cell(&s, Scheme::ParallelBatch, PolicyKind::Fcfs, rate);

        let system = s.system();
        let workload = s.generate_workload();
        let placement = Scheme::ParallelBatch
            .policy(s.m)
            .place(&workload, &system)
            .expect("placement");
        let mut sim = Simulator::with_natural_policy(placement, s.m);
        let legacy = run_queued(
            &mut sim,
            &workload,
            s.samples,
            ArrivalSpec {
                per_hour: rate,
                seed: s.sim_seed,
            },
        );
        assert_eq!(sojourn, legacy.avg_sojourn(), "fcfs drifted from legacy");
    }
}
