//! Extension — long-term incremental placement (§7 future work).
//!
//! "How to make an optimal or near-optimal solution for the long-term
//! backup/retrieve operations remains to be solved." This driver runs a
//! multi-epoch campaign: every epoch the object population grows, a
//! quarter of the restore patterns churn (new ones favour recent data),
//! and two systems serve the epoch's requests:
//!
//! * **incremental** — objects already on tape never move
//!   ([`tapesim_placement::IncrementalPlacer`]); only new arrivals are
//!   placed, with the epoch's local knowledge;
//! * **oracle re-place** — a full parallel batch placement of the entire
//!   population with the epoch's request set (what a periodic full
//!   reorganisation would achieve).
//!
//! The gap between the two curves is the price of the paper's open
//! problem.

use crate::harness::evaluate_placement;
use crate::settings::ExperimentSettings;
use tapesim_analysis::{ExperimentResult, Series};
use tapesim_placement::{
    IncrementalPlacer, ParallelBatchParams, ParallelBatchPlacement, PlacementPolicy,
};
use tapesim_workload::EvolutionSpec;

/// Number of epochs simulated (epoch 0 = the bootstrap placement).
pub fn epochs() -> usize {
    6
}

/// Runs the experiment. x is the epoch index.
pub fn run(base: &ExperimentSettings) -> ExperimentResult {
    let n_epochs = epochs();
    let system = base.system();
    let params = ParallelBatchParams::default().with_m(base.m);

    let mut workload = base.generate_workload();
    let mut placer =
        IncrementalPlacer::bootstrap(&workload, &system, params).expect("bootstrap placement");

    let mut incremental = Vec::with_capacity(n_epochs);
    let mut oracle = Vec::with_capacity(n_epochs);
    for epoch in 0..n_epochs {
        if epoch > 0 {
            workload = EvolutionSpec {
                growth: 0.05,
                churn: 0.25,
                new_sizes: base.workload.sizes,
                new_requests: base.workload.requests,
                seed: base.workload.seed ^ (0xE90C_u64 + epoch as u64),
            }
            .advance(&workload);
        }
        let inc_placement = placer.advance(&workload).expect("incremental placement");
        incremental.push(evaluate_placement(base, &workload, inc_placement).avg_bandwidth_mbs());
        let oracle_placement = ParallelBatchPlacement::new(params)
            .place(&workload, &system)
            .expect("oracle placement");
        oracle.push(evaluate_placement(base, &workload, oracle_placement).avg_bandwidth_mbs());
    }

    let mut result = ExperimentResult::new(
        "ext_online",
        "Incremental placement vs. full re-placement across epochs",
        "epoch",
        "bandwidth (MB/s)",
        (0..n_epochs).map(|e| e as f64).collect(),
    );
    result.push_series(Series::new(
        "incremental (no migration)",
        incremental.clone(),
    ));
    result.push_series(Series::new("oracle full re-place", oracle.clone()));
    let final_gap =
        (oracle.last().unwrap() - incremental.last().unwrap()) / oracle.last().unwrap() * 100.0;
    result.push_note(format!(
        "5% object growth and 25% request churn per epoch; final-epoch gap {final_gap:.0}% \
         — the cost of §7's open problem"
    ));
    result.push_note(format!("{} samples per epoch", base.samples));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_settings;

    #[test]
    fn oracle_dominates_and_gap_opens() {
        let mut s = quick_settings();
        s.samples = 30;
        let r = run(&s);
        let inc = &r
            .series_by_label("incremental (no migration)")
            .unwrap()
            .values;
        let ora = &r.series_by_label("oracle full re-place").unwrap().values;
        assert_eq!(inc.len(), epochs());
        // Epoch 0: identical physical layout → identical measurement.
        assert!(
            (inc[0] - ora[0]).abs() < 1e-6,
            "epoch 0 should match exactly: {} vs {}",
            inc[0],
            ora[0]
        );
        // Later epochs: the oracle is never (meaningfully) worse, and by
        // the final epoch a real gap has opened.
        for e in 1..inc.len() {
            assert!(
                ora[e] >= inc[e] * 0.95,
                "epoch {e}: oracle {:.0} far below incremental {:.0}",
                ora[e],
                inc[e]
            );
        }
        let last = inc.len() - 1;
        assert!(
            ora[last] > inc[last],
            "no gap by the final epoch: oracle {:.0} vs incremental {:.0}",
            ora[last],
            inc[last]
        );
    }
}
