//! Shared experiment settings.
//!
//! Defaults mirror §6 "Simulation Settings": 3 StorageTek L80 libraries of
//! 8 IBM LTO-3 drives and 80 tapes each, `m = 4` switch drives, Zipf
//! α = 0.3, 30 000 objects, 300 pre-defined requests, 200 serviced request
//! samples.
//!
//! Two experiments need more cartridge cells than the physical L80 has
//! (Figure 8 must fit the whole 51 TB workload into a *single* library;
//! the LTO-1 generation stores 4× less per cartridge), so
//! `tapes_per_library` is overridable — drives and robots per library, the
//! quantities that drive performance, stay untouched. EXPERIMENTS.md
//! documents each override.

use serde::{Deserialize, Serialize};
use tapesim_model::specs::{lto3_drive, lto3_tape, stk_l80_library};
use tapesim_model::{DriveSpec, SystemConfig, TapeSpec};
use tapesim_workload::{Workload, WorkloadSpec};

/// Everything an experiment point needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSettings {
    /// Number of libraries (`n`).
    pub libraries: u16,
    /// Cartridge cells per library (`t`; Table 1: 80).
    pub tapes_per_library: u16,
    /// Switch drives per library (`m`; the paper fixes 4 after Figure 5).
    pub m: u8,
    /// Serviced requests per measurement (paper: 200).
    pub samples: usize,
    /// Seed of the request-sampling stream.
    pub sim_seed: u64,
    /// The workload generator spec.
    pub workload: WorkloadSpec,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        ExperimentSettings {
            libraries: 3,
            tapes_per_library: 80,
            m: 4,
            samples: 200,
            sim_seed: 0xD15C,
            workload: WorkloadSpec::default(),
        }
    }
}

impl ExperimentSettings {
    /// The system configuration for these settings (LTO-3 / L80 hardware).
    pub fn system(&self) -> SystemConfig {
        self.system_with(lto3_drive(), lto3_tape())
    }

    /// The system configuration with a different drive/tape generation
    /// (technology-improvement experiment).
    pub fn system_with(&self, drive: DriveSpec, tape: TapeSpec) -> SystemConfig {
        let mut lib = stk_l80_library(drive, tape);
        lib.tapes = self.tapes_per_library;
        SystemConfig::new(self.libraries, lib).expect("valid experiment configuration")
    }

    /// Generates the workload.
    pub fn generate_workload(&self) -> Workload {
        self.workload.generate()
    }

    /// Copy with a different library count.
    pub fn with_libraries(mut self, n: u16) -> Self {
        self.libraries = n;
        self
    }

    /// Copy with a different cell count per library.
    pub fn with_tapes_per_library(mut self, t: u16) -> Self {
        self.tapes_per_library = t;
        self
    }

    /// Copy with a different `m`.
    pub fn with_m(mut self, m: u8) -> Self {
        self.m = m;
        self
    }

    /// Copy with a different Zipf α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.workload = self.workload.with_alpha(alpha);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::Bytes;

    #[test]
    fn default_is_the_paper_configuration() {
        let s = ExperimentSettings::default();
        let sys = s.system();
        assert_eq!(sys.libraries, 3);
        assert_eq!(sys.library.drives, 8);
        assert_eq!(sys.library.tapes, 80);
        assert_eq!(sys.library.tape.capacity, Bytes::gb(400));
        assert_eq!(s.m, 4);
        assert_eq!(s.samples, 200);
    }

    #[test]
    fn overrides_compose() {
        let s = ExperimentSettings::default()
            .with_libraries(1)
            .with_tapes_per_library(240)
            .with_m(2)
            .with_alpha(0.9);
        let sys = s.system();
        assert_eq!(sys.libraries, 1);
        assert_eq!(sys.library.tapes, 240);
        assert_eq!(s.m, 2);
        assert!((s.workload.requests.alpha - 0.9).abs() < 1e-12);
    }

    #[test]
    fn default_workload_fits_the_default_system() {
        let s = ExperimentSettings::default();
        let w = s.generate_workload();
        let sys = s.system();
        assert!(
            w.total_bytes() < sys.total_capacity().scale(0.9),
            "workload {} must fit {} with slack",
            w.total_bytes(),
            sys.total_capacity()
        );
    }
}
