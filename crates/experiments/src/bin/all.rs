//! Runs every experiment in sequence (Table 1, Figures 5–9, extensions)
//! and writes all artifacts under `results/`. Pass `--quick` for shrunken
//! instances.

use std::time::Instant;
use tapesim_experiments::figures;
use tapesim_experiments::harness::{render_and_save, results_dir};

fn main() {
    let settings = figures::settings_from_args();
    let dir = results_dir();

    let table = figures::table1::run();
    let report = format!(
        "## table1 — Tape drive/library specifications\n\n{}",
        table.to_markdown()
    );
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("table1.md"), &report).expect("write table1");
    println!("{report}");

    type Driver =
        fn(&tapesim_experiments::ExperimentSettings) -> tapesim_analysis::ExperimentResult;
    let drivers: Vec<(&str, Driver)> = vec![
        ("fig5", figures::fig5::run),
        ("fig6", figures::fig6::run),
        ("fig7", figures::fig7::run),
        ("fig8", figures::fig8::run),
        ("fig9", figures::fig9::run),
        ("ext_technology", figures::ext_technology::run),
        ("ext_scale", figures::ext_scale::run),
        ("ext_ablation", figures::ext_ablation::run),
        ("ext_striping", figures::ext_striping::run),
        ("ext_online", figures::ext_online::run),
        ("ext_queue", figures::ext_queue::run),
        ("ext_sched", figures::ext_sched::run),
        ("ext_seek", figures::ext_seek::run),
        ("ext_robots", figures::ext_robots::run),
        ("ext_tail", figures::ext_tail::run),
        ("ext_replication", figures::ext_replication::run),
        ("ext_faults", figures::ext_faults::run),
    ];
    for (name, run) in drivers {
        let t = Instant::now();
        let result = run(&settings);
        let report = render_and_save(&result, &dir).expect("write results");
        println!("{report}");
        eprintln!("[{name} done in {:.1?}]", t.elapsed());
    }
    println!("All artifacts written to {}", dir.display());
}
