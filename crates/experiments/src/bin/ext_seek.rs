//! Regenerates the ext_seek extension experiment. Pass `--quick` for a
//! shrunken instance.

fn main() {
    let settings = tapesim_experiments::figures::settings_from_args();
    let result = tapesim_experiments::figures::ext_seek::run(&settings);
    let report = tapesim_experiments::harness::render_and_save(
        &result,
        &tapesim_experiments::harness::results_dir(),
    )
    .expect("write results");
    println!("{report}");
}
