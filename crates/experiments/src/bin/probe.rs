//! Timing/shape probe: one full-scale evaluation per scheme with stage
//! timings. Useful when sizing sweeps for a machine.

use std::time::Instant;
use tapesim_experiments::{evaluate, Scheme};

fn main() {
    let settings = tapesim_experiments::figures::settings_from_args();
    let system = settings.system();
    let t0 = Instant::now();
    let workload = settings.generate_workload();
    println!(
        "workload: {} objects, {} requests, avg request {:.1} GB, total {:.1} TB [{:.2?}]",
        workload.objects().len(),
        workload.requests().len(),
        workload.avg_request_bytes().as_gb(),
        workload.total_bytes().as_gb() / 1000.0,
        t0.elapsed()
    );
    for scheme in Scheme::ALL {
        let t = Instant::now();
        let run = evaluate(&settings, &system, &workload, scheme);
        println!(
            "{:<22} bandwidth {:>8.1} MB/s  response {:>8.1} s  switch {:>7.1} s  seek {:>6.1} s  transfer {:>8.1} s  switches/req {:>5.1}  [{:.2?}]",
            scheme.label(),
            run.avg_bandwidth_mbs(),
            run.avg_response(),
            run.avg_switch(),
            run.avg_seek(),
            run.avg_transfer(),
            run.avg_switches(),
            t.elapsed()
        );
    }
}
