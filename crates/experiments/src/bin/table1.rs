//! Regenerates Table 1 (tape drive/library specifications).

fn main() {
    let table = tapesim_experiments::figures::table1::run();
    let report = format!(
        "## table1 — Tape drive/library specifications\n\n{}",
        table.to_markdown()
    );
    let dir = tapesim_experiments::harness::results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("table1.md"), &report).expect("write table1");
    println!("{report}");
}
