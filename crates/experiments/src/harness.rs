//! The evaluation harness: scheme dispatch, single-point evaluation,
//! rayon-parallel sweeps and result output.

use crate::settings::ExperimentSettings;
use rayon::prelude::*;
use std::path::Path;
use tapesim_analysis::{ascii_chart, ExperimentResult, Table};
use tapesim_model::SystemConfig;
use tapesim_placement::{
    ClusterProbabilityPlacement, ObjectProbabilityPlacement, ParallelBatchParams,
    ParallelBatchPlacement, Placement, PlacementPolicy,
};
use tapesim_sim::{RunMetrics, Simulator, SwitchPolicy};
use tapesim_workload::Workload;

/// The three schemes under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The paper's parallel batch placement (§5).
    ParallelBatch,
    /// Object probability placement \[11\].
    ObjectProbability,
    /// Cluster probability placement \[20\].
    ClusterProbability,
}

impl Scheme {
    /// All three, in the paper's presentation order.
    pub const ALL: [Scheme; 3] = [
        Scheme::ParallelBatch,
        Scheme::ObjectProbability,
        Scheme::ClusterProbability,
    ];

    /// The figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::ParallelBatch => "parallel batch",
            Scheme::ObjectProbability => "object probability",
            Scheme::ClusterProbability => "cluster probability",
        }
    }

    /// Builds the placement policy for these settings.
    pub fn policy(&self, m: u8) -> Box<dyn PlacementPolicy + Send + Sync> {
        match self {
            Scheme::ParallelBatch => Box::new(ParallelBatchPlacement::with_m(m)),
            Scheme::ObjectProbability => Box::new(ObjectProbabilityPlacement::default()),
            Scheme::ClusterProbability => Box::new(ClusterProbabilityPlacement::default()),
        }
    }
}

/// Places `workload` under `scheme` and serves the sampled request stream.
pub fn evaluate(
    settings: &ExperimentSettings,
    system: &SystemConfig,
    workload: &Workload,
    scheme: Scheme,
) -> RunMetrics {
    let placement = scheme
        .policy(settings.m)
        .place(workload, system)
        .unwrap_or_else(|e| panic!("{} placement failed: {e}", scheme.label()));
    evaluate_placement(settings, workload, placement)
}

/// Serves the sampled request stream against an existing placement (used
/// by the ablations, which build custom [`ParallelBatchParams`]).
pub fn evaluate_placement(
    settings: &ExperimentSettings,
    workload: &Workload,
    placement: Placement,
) -> RunMetrics {
    let policy = SwitchPolicy::for_placement(&placement, settings.m);
    let mut sim = Simulator::new(placement, policy);
    sim.run_sampled(workload, settings.samples, settings.sim_seed)
}

/// Convenience for the ablation experiment: parallel batch placement with
/// explicit parameters.
pub fn evaluate_pbp_with(
    settings: &ExperimentSettings,
    system: &SystemConfig,
    workload: &Workload,
    params: ParallelBatchParams,
) -> RunMetrics {
    let placement = ParallelBatchPlacement::new(params)
        .place(workload, system)
        .expect("parallel batch placement");
    evaluate_placement(settings, workload, placement)
}

/// Runs `f` over `points` in parallel (rayon), preserving input order.
/// Each point is an independent, internally-deterministic simulation, so
/// parallelism cannot change any result.
pub fn sweep<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Send + Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    points.par_iter().map(&f).collect()
}

/// Writes a result to `<dir>/<id>.json` and `<dir>/<id>.md`, and returns
/// the human-readable report (table + chart) that binaries print.
pub fn render_and_save(result: &ExperimentResult, dir: &Path) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.json", result.id)), result.to_json())?;
    let table = Table::from_result(result);
    let mut report = String::new();
    report.push_str(&format!("## {} — {}\n\n", result.id, result.title));
    report.push_str(&table.to_markdown());
    report.push('\n');
    if result.x.len() >= 2 {
        report.push_str(&ascii_chart(result, 64, 16));
        report.push('\n');
    }
    for note in &result.notes {
        report.push_str(&format!("> {note}\n"));
    }
    std::fs::write(dir.join(format!("{}.md", result.id)), &report)?;
    Ok(report)
}

/// The default results directory: `<workspace>/results`.
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_analysis::Series;
    use tapesim_model::Bytes;
    use tapesim_workload::{ObjectSizeSpec, RequestSpec, WorkloadSpec};

    /// Small settings for fast tests.
    pub fn small_settings() -> ExperimentSettings {
        ExperimentSettings {
            samples: 30,
            workload: WorkloadSpec {
                objects: 2_000,
                sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
                requests: RequestSpec {
                    count: 50,
                    min_objects: 15,
                    max_objects: 25,
                    count_shape: 1.0,
                    alpha: 0.3,
                },
                seed: 11,
            },
            ..ExperimentSettings::default()
        }
    }

    #[test]
    fn evaluate_all_schemes_small() {
        let s = small_settings();
        let sys = s.system();
        let w = s.generate_workload();
        for scheme in Scheme::ALL {
            let run = evaluate(&s, &sys, &w, scheme);
            assert_eq!(run.count(), 30, "{}", scheme.label());
            assert!(run.avg_bandwidth_mbs() > 0.0);
        }
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let points: Vec<u32> = (0..8).collect();
        let parallel = sweep(points.clone(), |&p| p * p);
        let serial: Vec<u32> = points.iter().map(|&p| p * p).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn render_and_save_writes_files() {
        let mut r = ExperimentResult::new("testfig", "T", "x", "y", vec![1.0, 2.0]);
        r.push_series(Series::new("s", vec![3.0, 4.0]));
        r.push_note("note");
        let dir = std::env::temp_dir().join("tapesim-test-results");
        let report = render_and_save(&r, &dir).unwrap();
        assert!(report.contains("testfig"));
        assert!(dir.join("testfig.json").exists());
        assert!(dir.join("testfig.md").exists());
        let json = std::fs::read_to_string(dir.join("testfig.json")).unwrap();
        let back = ExperimentResult::from_json(&json).unwrap();
        assert_eq!(back, r);
    }
}
