//! # tapesim-experiments
//!
//! Drivers reproducing every table and figure of the ICPP 2006 evaluation
//! (§6), plus the extension experiments the paper describes in prose. Each
//! driver builds the paper's workload, runs the three placement schemes
//! through the simulator, and emits an
//! [`tapesim_analysis::ExperimentResult`] (JSON under `results/`, a
//! markdown table and an ASCII chart on stdout).
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`figures::table1`] | Table 1 — drive/library specifications |
//! | [`figures::fig5`] | Figure 5 — bandwidth vs. number of switch drives `m` |
//! | [`figures::fig6`] | Figure 6 — bandwidth vs. Zipf α |
//! | [`figures::fig7`] | Figure 7 — bandwidth vs. average request size (+ the all-mounted extreme case) |
//! | [`figures::fig8`] | Figure 8 — bandwidth vs. number of libraries |
//! | [`figures::fig9`] | Figure 9 — response-time component comparison |
//! | [`figures::ext_technology`] | §6 close — LTO generation sweep |
//! | [`figures::ext_scale`] | §6 close — workload-scale invariance |
//! | [`figures::ext_ablation`] | §5 design-choice ablations |
//!
//! Run them all with `cargo run --release -p tapesim-experiments --bin all`.

pub mod figures;
pub mod harness;
pub mod settings;

pub use harness::{evaluate, evaluate_placement, Scheme};
pub use settings::ExperimentSettings;
