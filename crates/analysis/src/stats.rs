//! Batch summary statistics.
//!
//! Complements the streaming accumulators in `tapesim_des::stats` with
//! whole-sample quantities the reports need: percentiles, confidence
//! intervals, and simple comparisons between series.

/// Summary of a finished sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
}

/// Summarises a sample.
///
/// # Panics
///
/// Panics on an empty sample or non-finite values.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarise an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    };
    Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        median: percentile_sorted(&sorted, 50.0),
        p95: percentile_sorted(&sorted, 95.0),
        max: sorted[n - 1],
    }
}

/// Percentile (nearest-rank with linear interpolation) of a **sorted**
/// sample; `p` in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p), "p out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean.
pub fn ci95_half_width(summary: &Summary) -> f64 {
    if summary.n < 2 {
        return 0.0;
    }
    1.96 * summary.stddev / (summary.n as f64).sqrt()
}

/// Relative speedup `a / b` (∞-safe: returns 0 when `b` is 0).
pub fn speedup(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Var = (4+1+0+1+4)/4 = 2.5
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert!((percentile_sorted(&sorted, 50.0) - 25.0).abs() < 1e-12);
        // p95 of 4 points: rank 2.85 → 30 + 0.85·10
        assert!((percentile_sorted(&sorted, 95.0) - 38.5).abs() < 1e-12);
    }

    #[test]
    fn single_value_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(ci95_half_width(&s), 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = summarize(&[1.0, 2.0, 3.0]);
        let values: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let large = summarize(&values);
        assert!(ci95_half_width(&large) < ci95_half_width(&small));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn speedup_safe() {
        assert_eq!(speedup(4.0, 2.0), 2.0);
        assert_eq!(speedup(4.0, 0.0), 0.0);
    }
}
