//! # tapesim-analysis
//!
//! Presentation-layer utilities for the experiment harness: summary
//! statistics ([`stats`]), markdown/CSV result tables ([`table`]), labelled
//! series with JSON round-trips ([`series`]) and terminal line charts
//! ([`plot`]) so every paper figure can be eyeballed straight from
//! `cargo run`.

pub mod plot;
pub mod series;
pub mod stats;
pub mod table;

pub use plot::ascii_chart;
pub use series::{ExperimentResult, Series};
pub use table::Table;
