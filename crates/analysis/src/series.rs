//! Labelled result series.
//!
//! An [`ExperimentResult`] is what every figure driver produces: an x-axis
//! with named [`Series`] over it, plus free-form metadata. It serialises to
//! JSON (written under `results/`) and renders to markdown/CSV through
//! [`crate::table::Table`] and to the terminal through
//! [`crate::plot::ascii_chart`].

use serde::{Deserialize, Serialize};

/// One named curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. a scheme name).
    pub label: String,
    /// y-values, aligned with the experiment's x-axis.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Series {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// A complete experiment output: shared x-axis, one or more curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment identifier, e.g. `"fig6"`.
    pub id: String,
    /// Human title, e.g. `"Bandwidth vs. alpha"`.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The x-axis values.
    pub x: Vec<f64>,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form notes (workload settings, seeds, deviations).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result frame.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<f64>,
    ) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a curve.
    ///
    /// # Panics
    ///
    /// Panics if the curve length differs from the x-axis length.
    pub fn push_series(&mut self, series: Series) {
        assert_eq!(
            series.values.len(),
            self.x.len(),
            "series '{}' length mismatch",
            series.label
        );
        self.series.push(series);
    }

    /// Adds a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a curve by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// JSON serialisation (pretty, stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialisable result")
    }

    /// Parses a result back from JSON.
    pub fn from_json(json: &str) -> Result<ExperimentResult, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new(
            "fig6",
            "Bandwidth vs alpha",
            "alpha",
            "MB/s",
            vec![0.0, 0.5, 1.0],
        );
        r.push_series(Series::new("pbp", vec![100.0, 120.0, 150.0]));
        r.push_series(Series::new("opp", vec![50.0, 60.0, 80.0]));
        r.push_note("seed 42");
        r
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn lookup() {
        let r = sample();
        assert_eq!(r.series_by_label("opp").unwrap().values[2], 80.0);
        assert!(r.series_by_label("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut r = sample();
        r.push_series(Series::new("bad", vec![1.0]));
    }
}
