//! Result tables with markdown and CSV rendering.

use crate::series::ExperimentResult;
use std::fmt::Write as _;

/// A simple column-oriented table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// GitHub-flavoured markdown rendering with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// RFC 4180-ish CSV rendering (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Builds the per-resource span table of a [`tapesim_obs::TimeBudget`]:
    /// one row per drive and arm, one column per span category plus a
    /// `total` column equal to the makespan on every row — the budget
    /// rendered for markdown/CSV artefacts where `tapesim report` prints
    /// fixed-width text.
    pub fn from_budget(budget: &tapesim_obs::TimeBudget) -> Table {
        use tapesim_obs::SpanKind;
        let mut headers = vec!["resource".to_string()];
        headers.extend(SpanKind::ALL.iter().map(|k| k.label().to_string()));
        headers.push("total".to_string());
        let mut table = Table {
            headers,
            rows: Vec::new(),
        };
        for r in budget.drives.iter().chain(budget.arms.iter()) {
            let mut row = vec![r.label.clone()];
            row.extend(
                SpanKind::ALL
                    .iter()
                    .map(|&k| format!("{:.2}", r.spans.get(k))),
            );
            row.push(format!("{:.2}", r.spans.total()));
            table.rows.push(row);
        }
        table
    }

    /// Builds the standard table of an [`ExperimentResult`]: x first, one
    /// column per series.
    pub fn from_result(result: &ExperimentResult) -> Table {
        let mut headers = vec![result.x_label.clone()];
        headers.extend(result.series.iter().map(|s| s.label.clone()));
        let mut table = Table {
            headers,
            rows: Vec::new(),
        };
        for (i, x) in result.x.iter().enumerate() {
            let mut row = vec![trim_float(*x)];
            for s in &result.series {
                row.push(format!("{:.2}", s.values[i]));
            }
            table.rows.push(row);
        }
        table
    }
}

/// Formats an f64 without trailing zero noise (`1` not `1.000`, `0.3` not
/// `0.300`).
fn trim_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        let s = format!("{x:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    #[test]
    fn markdown_render() {
        let mut t = Table::new(&["m", "bandwidth"]);
        t.push_row(vec!["1".into(), "52.1".into()]);
        t.push_row(vec!["2".into(), "203.7".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| m"));
        assert!(md.contains("| 2 | 203.7"));
        assert_eq!(md.lines().count(), 4);
        // Separator under the header.
        assert!(md.lines().nth(1).unwrap().starts_with("|-"));
    }

    #[test]
    fn csv_render_escapes() {
        let mut t = Table::new(&["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"a,b\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn from_result_shapes_columns() {
        let mut r = ExperimentResult::new("f", "t", "alpha", "MB/s", vec![0.0, 0.3]);
        r.push_series(Series::new("pbp", vec![10.0, 20.0]));
        let t = Table::from_result(&r);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("alpha"));
        assert!(md.contains("pbp"));
        assert!(md.contains("0.3"));
        assert!(!md.contains("0.3000"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn ragged_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn from_budget_shapes_rows_and_totals() {
        use tapesim_obs::{PhaseTotals, ResourceBudget, SpanSecs, TimeBudget};
        let budget = TimeBudget {
            makespan_s: 100.0,
            drives: vec![ResourceBudget {
                label: "L0:D0".into(),
                spans: SpanSecs {
                    transfer: 70.0,
                    idle: 30.0,
                    ..SpanSecs::default()
                },
            }],
            arms: vec![ResourceBudget {
                label: "L0:A0".into(),
                spans: SpanSecs {
                    exchange: 5.0,
                    idle: 95.0,
                    ..SpanSecs::default()
                },
            }],
            phases: PhaseTotals::default(),
            overlap: Vec::new(),
        };
        let t = Table::from_budget(&budget);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("L0:D0"));
        assert!(md.contains("L0:A0"));
        // Both rows total the makespan.
        assert_eq!(md.matches("100.00").count(), 2);
    }
}
