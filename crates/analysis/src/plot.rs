//! Terminal line charts.
//!
//! Every figure driver prints an ASCII rendition of its curve family so the
//! paper's figures can be eyeballed straight from the terminal without any
//! plotting toolchain.

use crate::series::ExperimentResult;

/// Renders the result as an ASCII chart of `width × height` characters
/// (plus axes). Each series gets a distinct glyph; overlapping points show
/// the later series' glyph.
pub fn ascii_chart(result: &ExperimentResult, width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    assert!(width >= 8 && height >= 4, "chart too small");
    if result.x.is_empty() || result.series.is_empty() {
        return format!("{} (no data)\n", result.title);
    }

    let xs = &result.x;
    let (xmin, xmax) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let all_y: Vec<f64> = result
        .series
        .iter()
        .flat_map(|s| s.values.iter().cloned())
        .collect();
    let ymin_raw = all_y.iter().cloned().fold(f64::INFINITY, f64::min);
    let ymax_raw = all_y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Pad degenerate ranges so everything maps into the grid.
    let (ymin, ymax) = if (ymax_raw - ymin_raw).abs() < 1e-12 {
        (ymin_raw - 1.0, ymax_raw + 1.0)
    } else {
        (ymin_raw, ymax_raw)
    };
    let xspan = if (xmax - xmin).abs() < 1e-12 {
        1.0
    } else {
        xmax - xmin
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in result.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, (&x, &y)) in xs.iter().zip(&s.values).enumerate() {
            let cx = ((x - xmin) / xspan * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
            // Connect to the previous point with a sparse line.
            if i > 0 {
                let px = ((xs[i - 1] - xmin) / xspan * (width - 1) as f64).round() as usize;
                let py = ((s.values[i - 1] - ymin) / (ymax - ymin) * (height - 1) as f64).round()
                    as usize;
                let steps = cx.abs_diff(px).max(cy.abs_diff(py));
                for t in 1..steps {
                    let fx = px as f64 + (cx as f64 - px as f64) * t as f64 / steps as f64;
                    let fy = py as f64 + (cy as f64 - py as f64) * t as f64 / steps as f64;
                    let gx = (fx.round() as usize).min(width - 1);
                    let gy = height - 1 - (fy.round() as usize).min(height - 1);
                    if grid[gy][gx] == ' ' {
                        grid[gy][gx] = '.';
                    }
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{}  [{}]\n", result.title, result.y_label));
    out.push_str(&format!("{ymax:>10.1} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in grid.iter().take(height - 1).skip(1) {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{ymin:>10.1} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("           └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "            {:<w$}{:>w2$}  ({})\n",
        fmt_num(xmin),
        fmt_num(xmax),
        result.x_label,
        w = width / 2,
        w2 = width - width / 2
    ));
    let legend: Vec<String> = result
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.label))
        .collect();
    out.push_str(&format!("            legend: {}\n", legend.join("   ")));
    out
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new("fig", "Demo", "alpha", "MB/s", vec![0.0, 0.5, 1.0]);
        r.push_series(Series::new("up", vec![1.0, 2.0, 3.0]));
        r.push_series(Series::new("down", vec![3.0, 2.0, 1.0]));
        r
    }

    #[test]
    fn renders_glyphs_and_legend() {
        let chart = ascii_chart(&sample(), 40, 10);
        assert!(chart.contains('*'), "first series glyph");
        assert!(chart.contains('o'), "second series glyph");
        assert!(chart.contains("legend: * up   o down"));
        assert!(chart.contains("(alpha)"));
        assert!(chart.contains("[MB/s]"));
    }

    #[test]
    fn handles_flat_series() {
        let mut r = ExperimentResult::new("f", "Flat", "x", "y", vec![0.0, 1.0]);
        r.push_series(Series::new("flat", vec![5.0, 5.0]));
        let chart = ascii_chart(&r, 20, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    fn handles_empty() {
        let r = ExperimentResult::new("f", "Empty", "x", "y", vec![]);
        let chart = ascii_chart(&r, 20, 6);
        assert!(chart.contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        let _ = ascii_chart(&sample(), 4, 2);
    }
}
