//! Seeded process-level chaos for the serve runtime: shard kills and
//! shard stalls, planned up front the way [`crate::FaultPlan`] plans
//! hardware faults.
//!
//! Hardware faults live in *virtual* time; process chaos cannot — a
//! shard crash is an event of the actor runtime, not of the simulated
//! tape system, and wall-clock instants are not reproducible. A
//! [`ChaosPlan`] therefore keys every event on the target shard's
//! **cumulative accepted submission count**: "kill shard 2 after its
//! 37th accepted submission". The serve supervisor is the only writer
//! of each shard's submission channel, so it can inject the event as an
//! in-band poison message immediately after the triggering submission —
//! FIFO delivery then guarantees the shard dies (or stalls) having
//! processed *exactly* that prefix of its log, no matter how OS threads
//! interleave. That is what makes a chaos run replayable from
//! `(seed, shards, chaos-seed)`.
//!
//! Restart backoff is measured in the same currency — global ingestion
//! *draws* — as a capped exponential: the `k`-th restart of a shard
//! waits `min(cap, base · 2^k)` draws after the death is detected.
//! Requests routed to the shard inside that window are shed (counted,
//! never silently dropped).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Seed-domain separator for chaos-plan generation (distinct from the
/// hardware-fault salt `0xFA07`).
const CHAOS_SEED_SALT: u64 = 0xC4A05;

/// What an injected chaos event does to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// The shard actor dies immediately: no drain, no report, its
    /// engine state is gone. The supervisor restarts it from the
    /// submission log after the backoff window.
    Kill,
    /// The shard actor wedges: it keeps consuming its channel (so
    /// ingestion never blocks on it) but does no work and never
    /// acknowledges a liveness tick again. The supervisor detects it at
    /// the next snapshot barrier — or, failing that, the drain
    /// watchdog surfaces it as a counted failure.
    Stall,
}

/// One planned chaos event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Fires when the shard's cumulative accepted submissions reach
    /// this count (1-based: `after == 1` fires right after the first
    /// accepted submission). Counts keep growing across restarts, so an
    /// event never re-fires on a replayed prefix.
    pub after: u64,
    /// Kill or stall.
    pub kind: ChaosKind,
}

/// Chaos-process parameters. Like [`crate::FaultSpec`], every rate is
/// an expectation realised by a seeded RNG; a zero rate makes no draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// RNG seed for plan generation.
    pub seed: u64,
    /// Expected kills per shard inside the horizon.
    pub kills_per_shard: f64,
    /// Expected stalls per shard inside the horizon.
    pub stalls_per_shard: f64,
    /// Events are placed uniformly over `1..=horizon_submissions`
    /// cumulative accepted submissions per shard. Events beyond a
    /// shard's actual traffic simply never fire.
    pub horizon_submissions: u64,
    /// Restart backoff base, in global ingestion draws (0 = restart at
    /// the very next draw).
    pub restart_base_draws: u64,
    /// Restart backoff cap, in global ingestion draws.
    pub restart_cap_draws: u64,
}

impl ChaosSpec {
    /// A spec that injects nothing.
    pub fn none(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            kills_per_shard: 0.0,
            stalls_per_shard: 0.0,
            horizon_submissions: 0,
            restart_base_draws: 0,
            restart_cap_draws: 0,
        }
    }

    /// A moderate spec for smoke/bench runs: a couple of kills and one
    /// stall expected per shard over `horizon` submissions, immediate
    /// first restart, capped exponential thereafter.
    pub fn moderate(seed: u64, horizon: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            kills_per_shard: 2.0,
            stalls_per_shard: 1.0,
            horizon_submissions: horizon,
            restart_base_draws: 8,
            restart_cap_draws: 256,
        }
    }

    /// Whether both chaos processes are disabled.
    pub fn is_zero(&self) -> bool {
        self.horizon_submissions == 0
            || (self.kills_per_shard <= 0.0 && self.stalls_per_shard <= 0.0)
    }
}

/// A fully realised chaos timetable: per shard, the sorted list of
/// kill/stall events. Generated once, consulted read-only by the serve
/// supervisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    spec: ChaosSpec,
    /// Per shard: events sorted by `after`, at most one per count.
    events: Vec<Vec<ChaosEvent>>,
}

impl ChaosPlan {
    /// Realises `spec` for `shards` shards. Draw order is fixed (shard
    /// by shard; kills then stalls within a shard) so plans reproduce
    /// across runs and platforms.
    pub fn generate(spec: &ChaosSpec, shards: usize) -> ChaosPlan {
        let mut rng = ChaCha12Rng::seed_from_u64(spec.seed ^ CHAOS_SEED_SALT);
        let horizon = spec.horizon_submissions;
        // Knuth's product-of-uniforms Poisson sampler, as in the
        // hardware fault plan: expected rates are small.
        fn poisson(rng: &mut ChaCha12Rng, mean: f64) -> usize {
            if mean <= 0.0 {
                return 0;
            }
            let threshold = (-mean).exp();
            let mut count = 0usize;
            let mut p = 1.0;
            loop {
                p *= rng.gen_range(f64::EPSILON..1.0f64);
                if p <= threshold {
                    return count;
                }
                count += 1;
            }
        }
        fn draw_at(rng: &mut ChaCha12Rng, horizon: u64) -> u64 {
            (1 + (rng.gen_range(0.0..1.0f64) * horizon as f64) as u64).min(horizon)
        }
        let mut events = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut slots: std::collections::BTreeMap<u64, ChaosKind> =
                std::collections::BTreeMap::new();
            if horizon > 0 {
                let kills = poisson(&mut rng, spec.kills_per_shard);
                let stalls = poisson(&mut rng, spec.stalls_per_shard);
                for _ in 0..kills {
                    let at = draw_at(&mut rng, horizon);
                    slots.entry(at).or_insert(ChaosKind::Kill);
                }
                for _ in 0..stalls {
                    let at = draw_at(&mut rng, horizon);
                    slots.entry(at).or_insert(ChaosKind::Stall);
                }
            }
            events.push(
                slots
                    .into_iter()
                    .map(|(after, kind)| ChaosEvent { after, kind })
                    .collect(),
            );
        }
        ChaosPlan {
            spec: *spec,
            events,
        }
    }

    /// The empty plan for `shards` shards: no chaos, ever. A supervised
    /// run under it is bit-identical to the unsupervised serve path.
    pub fn zero(shards: usize) -> ChaosPlan {
        ChaosPlan {
            spec: ChaosSpec::none(0),
            events: vec![Vec::new(); shards],
        }
    }

    /// The spec this plan realises.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Whether the plan contains no events at all.
    pub fn is_zero(&self) -> bool {
        self.events.iter().all(Vec::is_empty)
    }

    /// Number of shards the plan was generated for.
    pub fn shards(&self) -> usize {
        self.events.len()
    }

    /// The events of one shard, sorted ascending by `after` (empty for
    /// shards beyond the plan).
    pub fn shard_events(&self, shard: usize) -> &[ChaosEvent] {
        self.events.get(shard).map_or(&[], Vec::as_slice)
    }

    /// Total planned kills.
    pub fn n_kills(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .filter(|e| e.kind == ChaosKind::Kill)
            .count()
    }

    /// Total planned stalls.
    pub fn n_stalls(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .filter(|e| e.kind == ChaosKind::Stall)
            .count()
    }

    /// Backoff before the `restart`-th restart of a shard (0-based), in
    /// global ingestion draws: `min(cap, base · 2^restart)`.
    pub fn restart_backoff_draws(&self, restart: u64) -> u64 {
        let base = self.spec.restart_base_draws;
        let cap = self.spec.restart_cap_draws;
        if base == 0 {
            return 0;
        }
        let shift = restart.min(32) as u32;
        base.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(cap.max(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChaosSpec {
        ChaosSpec::moderate(7, 500)
    }

    #[test]
    fn zero_plan_is_empty() {
        let plan = ChaosPlan::zero(4);
        assert!(plan.is_zero());
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.n_kills(), 0);
        assert_eq!(plan.n_stalls(), 0);
        assert!(plan.shard_events(2).is_empty());
        assert!(plan.shard_events(99).is_empty());
        assert!(ChaosSpec::none(9).is_zero());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::generate(&spec(), 3);
        let b = ChaosPlan::generate(&spec(), 3);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(&ChaosSpec { seed: 8, ..spec() }, 3);
        assert_ne!(a, c, "different seeds must realise different plans");
    }

    #[test]
    fn moderate_spec_realises_events_in_range() {
        // Aggregate over seeds so both kinds appear with certainty.
        let mut kills = 0;
        let mut stalls = 0;
        for seed in 0..20 {
            let plan = ChaosPlan::generate(&ChaosSpec { seed, ..spec() }, 4);
            kills += plan.n_kills();
            stalls += plan.n_stalls();
            for s in 0..plan.shards() {
                let events = plan.shard_events(s);
                for e in events {
                    assert!((1..=500).contains(&e.after));
                }
                // Sorted, and at most one event per submission count.
                for w in events.windows(2) {
                    if let [a, b] = w {
                        assert!(a.after < b.after);
                    }
                }
            }
        }
        assert!(kills > 0 && stalls > 0);
    }

    #[test]
    fn zero_rates_make_no_events() {
        let plan = ChaosPlan::generate(&ChaosSpec::none(3), 5);
        assert!(plan.is_zero());
        assert_eq!(plan.shards(), 5);
    }

    #[test]
    fn backoff_is_capped_exponential_in_draws() {
        let plan = ChaosPlan::generate(
            &ChaosSpec {
                restart_base_draws: 4,
                restart_cap_draws: 20,
                ..spec()
            },
            1,
        );
        assert_eq!(plan.restart_backoff_draws(0), 4);
        assert_eq!(plan.restart_backoff_draws(1), 8);
        assert_eq!(plan.restart_backoff_draws(2), 16);
        assert_eq!(plan.restart_backoff_draws(3), 20); // capped
        assert_eq!(plan.restart_backoff_draws(63), 20); // shift saturates
        let immediate = ChaosPlan::zero(1);
        assert_eq!(immediate.restart_backoff_draws(5), 0);
    }
}
