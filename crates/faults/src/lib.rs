//! Seeded, deterministic fault injection for the tape simulator.
//!
//! A [`FaultPlan`] is generated *up front* from a [`FaultSpec`] and a
//! [`SystemConfig`] by a seeded RNG (ChaCha12, per the workspace
//! determinism rules): permanent drive failures (exponential first-failure
//! times), robot jams (a Poisson process of repair windows per library),
//! and per-tape media bad-spots (Poisson count, uniform offsets). No
//! randomness is drawn *during* a run — the engines consult the plan
//! through a read-only [`FaultClock`], so a zero-fault plan takes exactly
//! the code paths (and produces exactly the arithmetic) of a fault-free
//! run.
//!
//! Retry policy: a read crossing bad spots retries with capped exponential
//! backoff in simulated time (the `k`-th retry waits
//! `min(retry_cap_secs, retry_base_secs · 2^(k−1))`), repositioning and
//! re-reading the extent each time. Each job has a retry *budget* of
//! [`FaultSpec::max_retries`]; a job whose spots demand more than the
//! budget is **fatal** — the engine fails it over to a replica copy or
//! counts it as a terminal loss. See `DESIGN.md` §10.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use tapesim_des::SimTime;
use tapesim_model::{Bytes, SystemConfig};

pub mod chaos;

pub use chaos::{ChaosEvent, ChaosKind, ChaosPlan, ChaosSpec};

/// Seed-domain separator for fault-plan generation (cf. `^ 0x6A1` for
/// arrivals and `^ 0x9A3E` for request picks).
const FAULT_SEED_SALT: u64 = 0xFA07;

/// Fault-process parameters. All rates are *expected* values; the plan
/// realises them with a seeded RNG. A rate of zero disables that process
/// entirely (no RNG draws are made for it, so plans with different
/// processes enabled are independently reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// RNG seed for plan generation.
    pub seed: u64,
    /// Mean time between permanent drive failures, hours (0 = drives
    /// never fail).
    pub drive_mtbf_hours: f64,
    /// Robot-arm jam rate per library, jams/hour (0 = never jams).
    pub jams_per_hour: f64,
    /// Repair delay per jam, seconds.
    pub jam_repair_secs: f64,
    /// Expected media bad-spots per tape (0 = clean media).
    pub bad_spots_per_tape: f64,
    /// First-retry backoff, seconds.
    pub retry_base_secs: f64,
    /// Backoff cap, seconds.
    pub retry_cap_secs: f64,
    /// Per-job retry budget before a read is fatal.
    pub max_retries: u32,
    /// Faults are only generated inside `[0, horizon_hours]` of simulated
    /// time.
    pub horizon_hours: f64,
}

impl FaultSpec {
    /// A spec that injects nothing: every rate zero. The plan it
    /// generates is empty and a run under it is bit-identical to a
    /// fault-free run.
    pub fn none(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drive_mtbf_hours: 0.0,
            jams_per_hour: 0.0,
            jam_repair_secs: 0.0,
            bad_spots_per_tape: 0.0,
            retry_base_secs: 1.0,
            retry_cap_secs: 60.0,
            max_retries: 3,
            horizon_hours: 0.0,
        }
    }

    /// A moderate all-processes-on spec for smoke runs: drives fail on
    /// the order of the run length, the robot jams a few times, most
    /// tapes carry a bad spot.
    pub fn moderate(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drive_mtbf_hours: 12.0,
            jams_per_hour: 0.5,
            jam_repair_secs: 120.0,
            bad_spots_per_tape: 0.5,
            retry_base_secs: 1.0,
            retry_cap_secs: 60.0,
            max_retries: 3,
            horizon_hours: 8.0,
        }
    }

    /// Scales the three fault *rates* by `intensity` (retry policy and
    /// horizon are untouched). `intensity == 0` yields a zero-fault spec.
    pub fn scaled(mut self, intensity: f64) -> FaultSpec {
        if intensity <= 0.0 {
            self.drive_mtbf_hours = 0.0;
            self.jams_per_hour = 0.0;
            self.bad_spots_per_tape = 0.0;
        } else {
            // MTBF is inverse to the failure rate.
            self.drive_mtbf_hours /= intensity;
            self.jams_per_hour *= intensity;
            self.bad_spots_per_tape *= intensity;
        }
        self
    }

    /// Whether every fault process is disabled.
    pub fn is_zero(&self) -> bool {
        self.drive_mtbf_hours <= 0.0 && self.jams_per_hour <= 0.0 && self.bad_spots_per_tape <= 0.0
    }
}

/// One media defect: reads crossing `offset` demand `severity` retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadSpot {
    /// Position on the tape.
    pub offset: Bytes,
    /// Retries this spot demands of a read crossing it (severity greater
    /// than the job's remaining budget makes the read fatal).
    pub severity: u32,
}

/// The outcome of resolving a read's total retry demand against the
/// per-job budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Retries actually burned (never exceeds [`FaultSpec::max_retries`]).
    pub retries: u32,
    /// The demand exceeded the budget: the read fails after burning the
    /// whole budget.
    pub fatal: bool,
}

/// A fully realised fault timetable for one system: who fails, when, and
/// where the media is bad. Generated once, consulted read-only.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per dense drive index: the instant the drive permanently fails
    /// ([`SimTime::MAX`] = never).
    drive_fail: Vec<SimTime>,
    /// Per library: non-overlapping `(start, end)` jam windows, sorted.
    jams: Vec<Vec<(SimTime, SimTime)>>,
    /// Per dense tape index: bad spots sorted by offset.
    spots: Vec<Vec<BadSpot>>,
}

impl FaultPlan {
    /// Realises `spec` against `cfg` with a seeded RNG. The draw order is
    /// fixed (drives, then libraries, then tapes, each in dense-index
    /// order) so plans are reproducible across runs and platforms.
    pub fn generate(spec: &FaultSpec, cfg: &SystemConfig) -> FaultPlan {
        let mut rng = ChaCha12Rng::seed_from_u64(spec.seed ^ FAULT_SEED_SALT);
        let horizon_s = spec.horizon_hours * 3600.0;
        let exp = |rng: &mut ChaCha12Rng, mean_secs: f64| -> f64 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() * mean_secs
        };

        let mut drive_fail = vec![SimTime::MAX; cfg.total_drives()];
        if spec.drive_mtbf_hours > 0.0 {
            for fail in &mut drive_fail {
                let t = exp(&mut rng, spec.drive_mtbf_hours * 3600.0);
                if t <= horizon_s {
                    *fail = SimTime::from_secs(t);
                }
            }
        }

        let mut jams = vec![Vec::new(); cfg.libraries as usize];
        if spec.jams_per_hour > 0.0 && spec.jam_repair_secs > 0.0 {
            for windows in &mut jams {
                let mut t = 0.0;
                loop {
                    t += exp(&mut rng, 3600.0 / spec.jams_per_hour);
                    if t > horizon_s {
                        break;
                    }
                    let end = t + spec.jam_repair_secs;
                    windows.push((SimTime::from_secs(t), SimTime::from_secs(end)));
                    // The robot cannot jam again while under repair, so
                    // windows never overlap and stay sorted.
                    t = end;
                }
            }
        }

        let capacity = cfg.library.tape.capacity;
        let mut spots = vec![Vec::new(); cfg.total_tapes()];
        if spec.bad_spots_per_tape > 0.0 {
            // Knuth's product-of-uniforms Poisson sampler: the expected
            // per-tape rate is small, so the loop is short.
            let threshold = (-spec.bad_spots_per_tape).exp();
            for tape_spots in &mut spots {
                let mut count = 0usize;
                let mut p = 1.0;
                loop {
                    p *= rng.gen_range(f64::EPSILON..1.0f64);
                    if p <= threshold {
                        break;
                    }
                    count += 1;
                }
                for _ in 0..count {
                    let offset = capacity.scale(rng.gen_range(0.0..1.0f64));
                    // Uniform over 1..=max_retries+1: severity above the
                    // budget (one in max_retries+1 spots) is fatal on its
                    // own.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let span = spec.max_retries as f64 + 1.0;
                    let severity = 1 + (u * span) as u32;
                    tape_spots.push(BadSpot {
                        offset,
                        severity: severity.min(spec.max_retries + 1),
                    });
                }
                tape_spots.sort_by_key(|s| s.offset);
            }
        }

        FaultPlan {
            spec: *spec,
            drive_fail,
            jams,
            spots,
        }
    }

    /// The empty plan: nothing ever fails. Equivalent to generating from
    /// [`FaultSpec::none`].
    pub fn zero(cfg: &SystemConfig) -> FaultPlan {
        FaultPlan::generate(&FaultSpec::none(0), cfg)
    }

    /// The spec this plan realises.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether the plan contains no fault events at all.
    pub fn is_zero(&self) -> bool {
        self.drive_fail.iter().all(|&t| t == SimTime::MAX)
            && self.jams.iter().all(Vec::is_empty)
            && self.spots.iter().all(Vec::is_empty)
    }

    /// A read-only view for the engines.
    pub fn clock(&self) -> FaultClock<'_> {
        FaultClock { plan: self }
    }

    /// Number of drives that fail inside the horizon.
    pub fn n_drive_failures(&self) -> usize {
        self.drive_fail
            .iter()
            .filter(|&&t| t < SimTime::MAX)
            .count()
    }

    /// Total jam windows across all libraries.
    pub fn n_jams(&self) -> usize {
        self.jams.iter().map(Vec::len).sum()
    }

    /// Total media bad-spots across all tapes.
    pub fn n_spots(&self) -> usize {
        self.spots.iter().map(Vec::len).sum()
    }

    /// Whether the plan injects only media faults — no drive failures,
    /// no robot jams. Media-only plans have no hardware identities to
    /// act on, so a sequential (single-server) engine can honour them.
    pub fn media_only(&self) -> bool {
        self.n_drive_failures() == 0 && self.n_jams() == 0
    }

    /// A copy of the plan with every fault outside the `owned` libraries
    /// erased: drive failures reset to never, jam windows and bad spots
    /// cleared. `owned[lib]` says whether library `lib` is kept; indices
    /// beyond `owned`'s length are dropped.
    ///
    /// This is how the serve runtime hands each library shard its slice
    /// of one globally generated plan: the union of the restrictions over
    /// a partition of the libraries is the full plan, so sharded runs see
    /// exactly the faults the equivalent single-engine run sees — on the
    /// hardware each shard actually owns.
    pub fn restrict_to_libraries(&self, cfg: &SystemConfig, owned: &[bool]) -> FaultPlan {
        let drives = cfg.library.drives.max(1) as usize;
        let tapes = cfg.library.tapes.max(1) as usize;
        let owns = |lib: usize| owned.get(lib).copied().unwrap_or(false);
        let mut out = self.clone();
        for (i, fail) in out.drive_fail.iter_mut().enumerate() {
            if !owns(i / drives) {
                *fail = SimTime::MAX;
            }
        }
        for (lib, windows) in out.jams.iter_mut().enumerate() {
            if !owns(lib) {
                windows.clear();
            }
        }
        for (i, spots) in out.spots.iter_mut().enumerate() {
            if !owns(i / tapes) {
                spots.clear();
            }
        }
        out
    }
}

/// Read-only view of a [`FaultPlan`] that the engines consult. All
/// queries are pure; under a zero plan every query is the identity /
/// zero, so guarded fault handling is arithmetically invisible.
#[derive(Debug, Clone, Copy)]
pub struct FaultClock<'a> {
    plan: &'a FaultPlan,
}

impl FaultClock<'_> {
    /// Whether the underlying plan is empty.
    pub fn is_zero(&self) -> bool {
        self.plan.is_zero()
    }

    /// The per-job retry budget.
    pub fn max_retries(&self) -> u32 {
        self.plan.spec.max_retries
    }

    /// When the drive at dense index `drive` permanently fails
    /// ([`SimTime::MAX`] = never). Work must never be scheduled to finish
    /// after this instant.
    pub fn drive_fail_at(&self, drive: usize) -> SimTime {
        self.plan
            .drive_fail
            .get(drive)
            .copied()
            .unwrap_or(SimTime::MAX)
    }

    /// Jam windows of `library`, sorted and non-overlapping.
    pub fn jams(&self, library: usize) -> &[(SimTime, SimTime)] {
        self.plan.jams.get(library).map_or(&[], Vec::as_slice)
    }

    /// Pushes a robot operation of `duration` starting at `at` past any
    /// jam window it would overlap, returning the earliest start at or
    /// after `at` such that `[start, start + duration)` avoids every jam.
    pub fn robot_ready(&self, library: usize, at: SimTime, duration: SimTime) -> SimTime {
        let mut start = at;
        for &(s, e) in self.jams(library) {
            if start + duration <= s {
                break; // fits entirely before this window
            }
            if start < e {
                start = e; // overlaps: resume after the repair
            }
        }
        start
    }

    /// Total retry demand of a read covering `[lo, hi)` on the tape at
    /// dense index `tape`: the sum of severities of the bad spots in
    /// range. Zero on clean media.
    pub fn spot_demand(&self, tape: usize, lo: Bytes, hi: Bytes) -> u32 {
        let Some(spots) = self.plan.spots.get(tape) else {
            return 0;
        };
        spots
            .iter()
            .filter(|s| lo <= s.offset && s.offset < hi)
            .map(|s| s.severity)
            .sum()
    }

    /// Resolves a job's total retry `demand` against the budget: within
    /// budget the read recovers after `demand` retries; beyond it the
    /// whole budget is burned and the read is fatal.
    pub fn resolve(&self, demand: u32) -> ReadOutcome {
        let budget = self.plan.spec.max_retries;
        if demand <= budget {
            ReadOutcome {
                retries: demand,
                fatal: false,
            }
        } else {
            ReadOutcome {
                retries: budget,
                fatal: true,
            }
        }
    }

    /// Cumulative backoff of `retries` attempts, seconds: the `k`-th
    /// retry waits `min(cap, base · 2^(k−1))`.
    pub fn backoff_secs(&self, retries: u32) -> f64 {
        let base = self.plan.spec.retry_base_secs;
        let cap = self.plan.spec.retry_cap_secs;
        let mut total = 0.0;
        let mut wait = base;
        for _ in 0..retries {
            total += wait.min(cap);
            wait *= 2.0;
        }
        total
    }

    /// Whether the system is degraded at `t`: any drive already failed,
    /// or any library's robot inside a jam window.
    pub fn degraded_at(&self, t: SimTime) -> bool {
        if self
            .plan
            .drive_fail
            .iter()
            .any(|&f| f < SimTime::MAX && f <= t)
        {
            return true;
        }
        self.plan
            .jams
            .iter()
            .any(|ws| ws.iter().any(|&(s, e)| s <= t && t < e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_model::specs::paper_table1;

    fn spec() -> FaultSpec {
        FaultSpec::moderate(42)
    }

    #[test]
    fn zero_plan_is_empty_and_identity() {
        let cfg = paper_table1();
        let plan = FaultPlan::zero(&cfg);
        assert!(plan.is_zero());
        assert_eq!(plan.n_drive_failures(), 0);
        assert_eq!(plan.n_jams(), 0);
        assert_eq!(plan.n_spots(), 0);
        let clock = plan.clock();
        assert_eq!(clock.drive_fail_at(0), SimTime::MAX);
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(5.0), SimTime::from_secs(30.0)),
            SimTime::from_secs(5.0)
        );
        assert_eq!(clock.spot_demand(0, Bytes::ZERO, Bytes::tb(1)), 0);
        assert!(!clock.degraded_at(SimTime::MAX));
    }

    #[test]
    fn restrict_to_all_libraries_is_identity() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(
            &FaultSpec {
                horizon_hours: 48.0,
                ..spec()
            },
            &cfg,
        );
        let all = vec![true; cfg.libraries as usize];
        assert_eq!(plan.restrict_to_libraries(&cfg, &all), plan);

        let zero = FaultPlan::zero(&cfg);
        assert!(zero.restrict_to_libraries(&cfg, &all).is_zero());
        assert!(zero
            .restrict_to_libraries(&cfg, &vec![false; cfg.libraries as usize])
            .is_zero());
    }

    #[test]
    fn restriction_partitions_the_plan_across_shards() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(
            &FaultSpec {
                horizon_hours: 48.0,
                ..spec()
            },
            &cfg,
        );
        let n_libs = cfg.libraries as usize;
        assert!(plan.n_drive_failures() > 0 && plan.n_jams() > 0 && plan.n_spots() > 0);

        // One shard per library: the per-shard fault counts must sum to
        // the full plan's, with nothing duplicated or dropped.
        let (mut fails, mut jams, mut spots) = (0, 0, 0);
        for lib in 0..n_libs {
            let mut owned = vec![false; n_libs];
            owned[lib] = true;
            let shard = plan.restrict_to_libraries(&cfg, &owned);
            fails += shard.n_drive_failures();
            jams += shard.n_jams();
            spots += shard.n_spots();
            // The restriction only ever erases, never invents.
            assert!(shard.n_drive_failures() <= plan.n_drive_failures());
        }
        assert_eq!(fails, plan.n_drive_failures());
        assert_eq!(jams, plan.n_jams());
        assert_eq!(spots, plan.n_spots());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = paper_table1();
        let a = FaultPlan::generate(&spec(), &cfg);
        let b = FaultPlan::generate(&spec(), &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&FaultSpec { seed: 43, ..spec() }, &cfg);
        assert_ne!(a, c, "different seeds must realise different plans");
    }

    #[test]
    fn moderate_spec_injects_every_process() {
        let cfg = paper_table1();
        // Long horizon so each process realises with near certainty.
        let plan = FaultPlan::generate(
            &FaultSpec {
                horizon_hours: 1000.0,
                ..spec()
            },
            &cfg,
        );
        assert!(plan.n_drive_failures() > 0);
        assert!(plan.n_jams() > 0);
        assert!(plan.n_spots() > 0);
        assert!(!plan.is_zero());
    }

    #[test]
    fn faults_respect_the_horizon() {
        let cfg = paper_table1();
        let s = FaultSpec {
            horizon_hours: 2.0,
            ..spec()
        };
        let horizon = SimTime::from_secs(s.horizon_hours * 3600.0);
        let plan = FaultPlan::generate(&s, &cfg);
        for i in 0..cfg.total_drives() {
            let t = plan.clock().drive_fail_at(i);
            assert!(t == SimTime::MAX || t <= horizon);
        }
        for lib in 0..cfg.libraries as usize {
            for &(start, end) in plan.clock().jams(lib) {
                assert!(start <= horizon);
                assert!(end > start);
            }
        }
    }

    #[test]
    fn scaled_zero_intensity_is_a_zero_plan() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(&spec().scaled(0.0), &cfg);
        assert!(plan.is_zero());
        assert!(spec().scaled(0.0).is_zero());
    }

    #[test]
    fn higher_intensity_injects_more() {
        let cfg = paper_table1();
        let lo = FaultPlan::generate(&spec(), &cfg);
        let hi = FaultPlan::generate(&spec().scaled(8.0), &cfg);
        let weight = |p: &FaultPlan| p.n_drive_failures() + p.n_jams() + p.n_spots();
        assert!(
            weight(&hi) > weight(&lo),
            "8× intensity should inject more events: {} vs {}",
            weight(&hi),
            weight(&lo)
        );
    }

    #[test]
    fn robot_ready_pushes_past_jam_windows() {
        let cfg = paper_table1();
        let mut plan = FaultPlan::zero(&cfg);
        plan.jams[0] = vec![
            (SimTime::from_secs(100.0), SimTime::from_secs(200.0)),
            (SimTime::from_secs(300.0), SimTime::from_secs(400.0)),
        ];
        let clock = plan.clock();
        let d = SimTime::from_secs(50.0);
        // Fits before the first window.
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(10.0), d),
            SimTime::from_secs(10.0)
        );
        // Would span the first window start: pushed past the repair.
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(80.0), d),
            SimTime::from_secs(200.0)
        );
        // Inside a window: resumes at its end.
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(150.0), d),
            SimTime::from_secs(200.0)
        );
        // Pushed out of window one straight into the gap before two.
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(199.0), d),
            SimTime::from_secs(200.0)
        );
        // A long operation that cannot fit in the gap is pushed past both.
        let long = SimTime::from_secs(150.0);
        assert_eq!(
            clock.robot_ready(0, SimTime::from_secs(190.0), long),
            SimTime::from_secs(400.0)
        );
        // Other libraries are unaffected.
        assert_eq!(
            clock.robot_ready(1, SimTime::from_secs(150.0), d),
            SimTime::from_secs(150.0)
        );
    }

    #[test]
    fn spot_demand_sums_severities_in_range() {
        let cfg = paper_table1();
        let mut plan = FaultPlan::zero(&cfg);
        plan.spots[3] = vec![
            BadSpot {
                offset: Bytes::gb(10),
                severity: 2,
            },
            BadSpot {
                offset: Bytes::gb(50),
                severity: 4,
            },
        ];
        let clock = plan.clock();
        assert_eq!(clock.spot_demand(3, Bytes::ZERO, Bytes::gb(20)), 2);
        assert_eq!(clock.spot_demand(3, Bytes::ZERO, Bytes::gb(60)), 6);
        assert_eq!(clock.spot_demand(3, Bytes::gb(20), Bytes::gb(40)), 0);
        assert_eq!(clock.spot_demand(2, Bytes::ZERO, Bytes::tb(1)), 0);
        // The range is half-open: a spot exactly at `hi` does not hit.
        assert_eq!(clock.spot_demand(3, Bytes::ZERO, Bytes::gb(10)), 0);
    }

    #[test]
    fn resolve_enforces_the_budget() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(&spec(), &cfg); // max_retries = 3
        let clock = plan.clock();
        assert_eq!(
            clock.resolve(0),
            ReadOutcome {
                retries: 0,
                fatal: false
            }
        );
        assert_eq!(
            clock.resolve(3),
            ReadOutcome {
                retries: 3,
                fatal: false
            }
        );
        assert_eq!(
            clock.resolve(4),
            ReadOutcome {
                retries: 3,
                fatal: true
            }
        );
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(
            &FaultSpec {
                retry_base_secs: 2.0,
                retry_cap_secs: 5.0,
                ..spec()
            },
            &cfg,
        );
        let clock = plan.clock();
        assert_eq!(clock.backoff_secs(0), 0.0);
        assert_eq!(clock.backoff_secs(1), 2.0);
        assert_eq!(clock.backoff_secs(2), 6.0); // 2 + 4
        assert_eq!(clock.backoff_secs(3), 11.0); // 2 + 4 + min(8, 5)
        assert_eq!(clock.backoff_secs(4), 16.0); // + 5 again
    }

    #[test]
    fn degraded_tracks_failures_and_jams() {
        let cfg = paper_table1();
        let mut plan = FaultPlan::zero(&cfg);
        plan.drive_fail[2] = SimTime::from_secs(500.0);
        plan.jams[1] = vec![(SimTime::from_secs(100.0), SimTime::from_secs(150.0))];
        let clock = plan.clock();
        assert!(!clock.degraded_at(SimTime::from_secs(50.0)));
        assert!(clock.degraded_at(SimTime::from_secs(120.0))); // in jam
        assert!(!clock.degraded_at(SimTime::from_secs(200.0))); // repaired
        assert!(clock.degraded_at(SimTime::from_secs(600.0))); // drive dead
    }

    #[test]
    fn severity_spans_recoverable_and_fatal() {
        let cfg = paper_table1();
        let plan = FaultPlan::generate(
            &FaultSpec {
                bad_spots_per_tape: 5.0,
                ..spec()
            },
            &cfg,
        );
        let max = plan.spec().max_retries;
        let mut any_recoverable = false;
        let mut any_fatal = false;
        for spots in &plan.spots {
            for s in spots {
                assert!((1..=max + 1).contains(&s.severity));
                any_recoverable |= s.severity <= max;
                any_fatal |= s.severity > max;
            }
        }
        assert!(any_recoverable && any_fatal);
    }
}
