//! Parallel multi-library execution of the concurrent scheduling engine.
//!
//! A multi-library run of the concurrent gear decomposes cleanly: every
//! event after an arrival (exchanges, job completions, batch ends) is
//! confined to one library — drives, robots and tape queues are
//! per-library, and a policy's dispatch decisions only read that
//! library's state. The only *global* input is the arrival stream. So the
//! run partitions into one [`ShardEngine`] per library, each fed the
//! arrivals that touch its library, executed on its own thread under the
//! conservative time-window protocol of [`tapesim_des::parallel`]:
//!
//! * the **window schedule** comes from the precomputed arrival stream —
//!   [`window_barriers`] chunks it and each barrier is the next
//!   undelivered arrival instant (the arrival-insertion horizon);
//! * within a round every partition submits its arrivals below the
//!   barrier and pumps its event loop to the last *globally* delivered
//!   arrival (strictly below the barrier), so no partition ever executes
//!   an event that a future submission could precede;
//! * after the last window the partitions drain and their
//!   [`ShardReport`]s are **merged back into the monolithic result, bit
//!   for bit** (golden fingerprints, audit verdicts and metric bits are
//!   pinned identical by the equivalence tests).
//!
//! # The determinism argument (lockstep)
//!
//! Let `E` be the monolithic engine's event sequence and `E_p` partition
//! `p`'s. Every non-arrival event belongs to exactly one library;
//! arrivals are duplicated into each library they touch. Claim: `E_p`
//! equals the subsequence of `E` restricted to library `p`, with
//! identical timestamps and state effects. Induction over `E`: the
//! monolithic queue orders events by `(time, class, seq)`; two events of
//! the same library keep their relative `seq` order in the partition
//! (both are scheduled by the same chain of same-library handlers, in the
//! same handler order), and events of *different* libraries never read or
//! write each other's state, so reordering across libraries cannot change
//! what any handler computes. The one cross-library handler is the shared
//! arrival, which visits its libraries in ascending index order in both
//! worlds. Hence every partition computes exactly the monolithic
//! library-restricted run — same floats, same records, same trace.
//!
//! What the decomposition does *not* preserve is the **interleaving** of
//! order-sensitive global folds: the monolithic engine accumulates busy
//! time and picks each request's `first_start` in global event order,
//! and float addition does not commute. The engines therefore log those
//! operations tagged with an [`OpKey`] — `(time, class, library)`, the
//! event's position in the monolithic order (ascending-library tie order
//! per the lockstep argument) — and the merge replays them by sorted key:
//! the exact monolithic fold order, reproduced across partitions.
//!
//! # Eligibility
//!
//! The decomposition is sound only when nothing crosses libraries after
//! arrival. [`run_partitioned`] declines (returns `None`, the caller
//! falls back to the monolithic gear) when: the system has one library;
//! the policy is sequential (the FCFS regression baseline mutates the
//! simulator); span accounting is on (one global `TimeBudget` cannot be
//! rebuilt from partition budgets); or the run combines a non-zero fault
//! plan with replica alternates — a failover may re-home work to another
//! library, which would pierce partition isolation.

use crate::engine::{
    run_concurrent, run_sequential, run_sequential_faulty, OpKey, SchedConfig, SchedOutcome,
    ShardEngine, ShardReport,
};
use crate::metrics::{RequestRecord, SchedMetrics};
use crate::policy::SchedPolicy;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;
use tapesim_des::audit::AuditReport;
use tapesim_des::parallel::{run_windowed, window_barriers, WindowPartition, WindowTrace};
use tapesim_des::SimTime;
use tapesim_faults::FaultPlan;
use tapesim_model::{ObjectId, SystemConfig};
use tapesim_sim::catalog::{tape_jobs, TapeJob};
use tapesim_sim::Simulator;
use tapesim_workload::{RequestStream, Workload};

/// Arrivals delivered per synchronization round when
/// [`ParallelConfig::window`] is 0. Large enough to amortise the round
/// barrier, small enough that partitions stay time-synchronised.
const DEFAULT_WINDOW: usize = 64;

/// How (and whether) a scheduled run may execute in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Master switch. Off routes every run through the monolithic gears.
    pub enabled: bool,
    /// Worker threads (0 = one per available CPU, clamped to the
    /// partition count either way).
    pub threads: usize,
    /// Arrivals delivered per window round (0 = [`DEFAULT_WINDOW`]).
    pub window: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::off()
    }
}

impl ParallelConfig {
    /// Parallel execution disabled.
    pub fn off() -> ParallelConfig {
        ParallelConfig {
            enabled: false,
            threads: 0,
            window: 0,
        }
    }

    /// Parallel execution enabled with automatic thread count and the
    /// default window.
    pub fn on() -> ParallelConfig {
        ParallelConfig {
            enabled: true,
            threads: 0,
            window: 0,
        }
    }

    /// Sets the worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> ParallelConfig {
        self.threads = threads;
        self
    }

    /// Sets the arrivals-per-round window (0 = default).
    pub fn with_window(mut self, window: usize) -> ParallelConfig {
        self.window = window;
        self
    }

    /// The process-wide configuration from the environment, read once:
    /// `TAPESIM_PARALLEL` (`1`/`on`/`true`/`yes`) enables, and
    /// `TAPESIM_THREADS` pins the worker count. This is what the plain
    /// [`crate::run_scheduled`] entry consults, so existing callers and
    /// the whole tier-1 suite can opt in without code changes.
    pub fn from_env() -> ParallelConfig {
        static CACHE: OnceLock<ParallelConfig> = OnceLock::new();
        *CACHE.get_or_init(|| {
            let enabled = std::env::var("TAPESIM_PARALLEL")
                .map(|v| matches!(v.trim(), "1" | "on" | "true" | "yes"))
                .unwrap_or(false);
            let threads = std::env::var("TAPESIM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            ParallelConfig {
                enabled,
                threads,
                window: 0,
            }
        })
    }
}

/// [`crate::run_scheduled`] with an explicit parallel configuration:
/// eligible runs execute one partition per library under the
/// conservative window protocol; everything else falls back to the
/// monolithic gears. Results are bit-identical either way.
pub fn run_scheduled_parallel(
    sim: &mut Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    par: &ParallelConfig,
) -> SchedOutcome {
    if policy.sequential() {
        return run_sequential(sim, workload, cfg);
    }
    let plan = FaultPlan::zero(sim.placement().config());
    let alternates = BTreeMap::new();
    match run_partitioned(sim, workload, policy, cfg, &plan, &alternates, par) {
        Some((outcome, _)) => outcome,
        None => run_concurrent(sim, workload, policy, cfg, &plan, &alternates),
    }
}

/// [`crate::run_scheduled_faulty`] with an explicit parallel
/// configuration. Routing mirrors the monolithic entry exactly;
/// partitioned execution additionally requires the fault plan and
/// replica map to never re-home work across libraries (see the module
/// docs on eligibility).
pub fn run_scheduled_faulty_parallel(
    sim: &mut Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
    par: &ParallelConfig,
) -> SchedOutcome {
    if policy.sequential() {
        return if plan.is_zero() {
            run_sequential(sim, workload, cfg)
        } else if plan.media_only() {
            run_sequential_faulty(sim, workload, cfg, plan, alternates)
        } else {
            run_concurrent(sim, workload, policy, cfg, plan, alternates)
        };
    }
    match run_partitioned(sim, workload, policy, cfg, plan, alternates, par) {
        Some((outcome, _)) => outcome,
        None => run_concurrent(sim, workload, policy, cfg, plan, alternates),
    }
}

/// One per-library partition driven by the window protocol: its slice of
/// the arrival stream, the engine executing it, and the pre-computed
/// per-round pump watermark (the last globally delivered arrival, always
/// strictly below the round's barrier).
struct Partition<'s, 'e> {
    engine: Option<ShardEngine<'e>>,
    /// This partition's submissions `(arrival, catalog rank)`, a
    /// nondecreasing subsequence of the global stream.
    subs: &'s [(SimTime, usize)],
    cursor: usize,
    /// Per-round pump bound, aligned with the barrier schedule.
    watermarks: &'s [SimTime],
    round: usize,
    report: Option<ShardReport>,
}

impl WindowPartition for Partition<'_, '_> {
    fn advance(&mut self, barrier: SimTime) {
        // Both misses are protocol violations the runner never commits
        // (advance after drain, more rounds than the schedule holds);
        // doing nothing keeps the partition safely *behind* the barrier.
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        let Some(&watermark) = self.watermarks.get(self.round) else {
            return;
        };
        self.round += 1;
        while let Some(&(at, rank)) = self.subs.get(self.cursor) {
            if at >= barrier {
                break;
            }
            engine.submit(at, rank);
            self.cursor += 1;
        }
        engine.pump(watermark);
    }

    fn drain(&mut self) {
        // A second drain finds the engine gone and keeps the first
        // drain's report.
        let Some(mut engine) = self.engine.take() else {
            return;
        };
        for &(at, rank) in self.subs.get(self.cursor..).unwrap_or_default() {
            engine.submit(at, rank);
        }
        self.cursor = self.subs.len();
        self.report = Some(engine.finish());
    }

    fn clock(&self) -> SimTime {
        self.engine.as_ref().map_or(SimTime::ZERO, ShardEngine::now)
    }
}

/// Runs the partitioned gear if the run is eligible, returning the
/// merged outcome and the window trace (for the barrier-correctness
/// tests); `None` means "use the monolithic gear".
pub(crate) fn run_partitioned(
    sim: &Simulator,
    workload: &Workload,
    policy: &dyn SchedPolicy,
    cfg: &SchedConfig,
    plan: &FaultPlan,
    alternates: &BTreeMap<ObjectId, Vec<ObjectId>>,
    par: &ParallelConfig,
) -> Option<(SchedOutcome, WindowTrace)> {
    let system = sim.placement().config();
    let nparts = system.libraries as usize;
    if !par.enabled || nparts < 2 || policy.sequential() || cfg.obs {
        return None;
    }
    if !plan.is_zero() && !alternates.is_empty() {
        // A failover may re-home a job to a replica in another library,
        // piercing partition isolation.
        return None;
    }

    let placement = sim.placement();
    let catalog: Vec<Vec<TapeJob>> = workload
        .requests()
        .iter()
        .map(|r| tape_jobs(placement, &r.objects))
        .collect();

    // The full demand stream, drawn exactly as the monolithic gear draws
    // it — the window schedule needs it up front anyway.
    let mut stream = RequestStream::new(cfg.arrivals, workload);
    let draws: Vec<(SimTime, usize)> = (0..cfg.samples)
        .map(|_| {
            let (at, ridx) = stream.next_request();
            (SimTime::from_secs(at), ridx)
        })
        .collect();

    // Per-library views: the catalog restricted to each library's tapes,
    // and the fault plan restricted to each library's hardware (their
    // union over the partition is the full plan).
    let catalogs: Vec<Vec<Vec<TapeJob>>> = (0..nparts)
        .map(|p| {
            catalog
                .iter()
                .map(|jobs| {
                    jobs.iter()
                        .filter(|j| j.tape.library.idx() == p)
                        .cloned()
                        .collect()
                })
                .collect()
        })
        .collect();
    let plans: Vec<FaultPlan> = (0..nparts)
        .map(|p| {
            let owned: Vec<bool> = (0..nparts).map(|lib| lib == p).collect();
            plan.restrict_to_libraries(system, &owned)
        })
        .collect();

    // Fan the stream out: every draw goes to each library its jobs
    // touch; an empty request (nothing to stream) is recorded by a
    // deterministic home partition. `globals` joins a partition's local
    // submission indices back to global ones for the merge.
    let mut subs: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); nparts];
    let mut globals: Vec<Vec<usize>> = vec![Vec::new(); nparts];
    for (g, &(at, rank)) in draws.iter().enumerate() {
        if catalog.get(rank).is_none_or(Vec::is_empty) {
            let p = rank % nparts;
            if let (Some(sub), Some(glob)) = (subs.get_mut(p), globals.get_mut(p)) {
                sub.push((at, rank));
                glob.push(g);
            }
            continue;
        }
        for (cat, (sub, glob)) in catalogs.iter().zip(subs.iter_mut().zip(globals.iter_mut())) {
            if cat.get(rank).is_some_and(|jobs| !jobs.is_empty()) {
                sub.push((at, rank));
                glob.push(g);
            }
        }
    }
    let total_subs: usize = subs.iter().map(Vec::len).sum();

    let window = if par.window == 0 {
        DEFAULT_WINDOW
    } else {
        par.window
    };
    let times: Vec<SimTime> = draws.iter().map(|&(at, _)| at).collect();
    let barriers = window_barriers(&times, window);
    // Each round pumps to the last arrival below its barrier: safe for
    // every partition (all its sub-barrier submissions are in), and
    // strictly below the barrier by `window_barriers`' construction.
    let watermarks: Vec<SimTime> = barriers
        .iter()
        .map(|&b| {
            times
                .get(..times.partition_point(|&t| t < b))
                .and_then(<[SimTime]>::last)
                .copied()
                .unwrap_or(SimTime::ZERO)
        })
        .collect();

    let mut parts: Vec<Partition> = plans
        .iter()
        .zip(catalogs.iter())
        .zip(subs.iter())
        .enumerate()
        .map(|(p, ((lib_plan, lib_catalog), lib_subs))| {
            let mut engine = ShardEngine::new_owned(
                sim,
                policy,
                cfg,
                lib_plan,
                alternates,
                lib_catalog,
                Some(p),
            );
            engine.enable_merge_log();
            Partition {
                engine: Some(engine),
                subs: lib_subs,
                cursor: 0,
                watermarks: &watermarks,
                round: 0,
                report: None,
            }
        })
        .collect();

    let threads = if par.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        par.threads
    };
    let trace = run_windowed(&mut parts, &barriers, threads);

    let reports: Vec<ShardReport> = parts.into_iter().filter_map(|p| p.report).collect();
    if reports.len() != nparts {
        // A partition was never drained — a runner bug; fall back to
        // the monolithic gear rather than merge a partial result.
        return None;
    }
    let outcome = merge(
        system, plan, &draws, &catalog, total_subs, &globals, reports,
    );
    Some((outcome, trace))
}

/// Rebuilds the monolithic [`SchedOutcome`] from the partition reports.
///
/// Order-free quantities (mounts, retries, events, availability inputs)
/// sum or max across partitions; order-sensitive ones replay in
/// monolithic event order via [`OpKey`]s: busy time folds by sorted key,
/// each request's `first_start` comes from its minimum first-plan key,
/// and completion records are re-emitted in the order the monolithic
/// engine would have pushed them (last-completing event's key).
fn merge(
    system: &SystemConfig,
    plan: &FaultPlan,
    draws: &[(SimTime, usize)],
    catalog: &[Vec<TapeJob>],
    total_subs: usize,
    globals: &[Vec<usize>],
    reports: Vec<ShardReport>,
) -> SchedOutcome {
    let clock = plan.clock();
    let n_drives = system.total_drives();

    // A request lost in any partition is lost in the monolithic run: its
    // last job can never complete there either.
    let mut lost: BTreeSet<usize> = BTreeSet::new();
    for (rep, glob) in reports.iter().zip(globals.iter()) {
        for &local in &rep.lost {
            if let Some(&g) = glob.get(local) {
                lost.insert(g);
            }
        }
    }

    // Per-partition first-plan keys, addressable by local submission
    // index (the records' `request` field).
    let first_keys: Vec<Vec<Option<OpKey>>> = reports
        .iter()
        .zip(globals.iter())
        .map(|(rep, glob)| {
            let mut keys = vec![None; glob.len()];
            if let Some(ops) = &rep.merge {
                for &(local, key) in &ops.first_plans {
                    if let Some(slot) = keys.get_mut(local) {
                        *slot = Some(key);
                    }
                }
            }
            keys
        })
        .collect();

    // Fold each global request's partition records: the monolithic
    // finish is the latest partition finish (ties to the higher library
    // — the later event in monolithic order), and the monolithic
    // first_start is the one planned by the smallest OpKey.
    #[derive(Clone, Copy)]
    struct Agg {
        seen: bool,
        arrival: SimTime,
        finish: SimTime,
        lib: u16,
        first_key: Option<OpKey>,
        first_start: SimTime,
    }
    let mut agg = vec![
        Agg {
            seen: false,
            arrival: SimTime::ZERO,
            finish: SimTime::ZERO,
            lib: 0,
            first_key: None,
            first_start: SimTime::ZERO,
        };
        draws.len()
    ];
    for (p, (rep, (glob, keys))) in reports
        .iter()
        .zip(globals.iter().zip(first_keys.iter()))
        .enumerate()
    {
        for rec in &rep.records {
            let Some(&g) = glob.get(rec.request) else {
                continue;
            };
            let key = keys.get(rec.request).copied().flatten();
            let Some(a) = agg.get_mut(g) else {
                continue;
            };
            if !a.seen {
                *a = Agg {
                    seen: true,
                    arrival: rec.arrival,
                    finish: rec.finish,
                    lib: p as u16,
                    first_key: key,
                    first_start: rec.first_start,
                };
                continue;
            }
            if (rec.finish, p as u16) > (a.finish, a.lib) {
                a.finish = rec.finish;
                a.lib = p as u16;
            }
            let earlier = match (key, a.first_key) {
                (Some(k), Some(have)) => k < have,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if earlier {
                a.first_key = key;
                a.first_start = rec.first_start;
            }
        }
    }

    // Re-emit records in monolithic push order. Iterating partitions in
    // index order keeps same-key records (necessarily same-partition, by
    // the lockstep argument) in their local completion order; the stable
    // sort then interleaves across partitions by the completing event's
    // key. Empty requests complete inside their (class −1) arrival event
    // and tie-break by submission order.
    struct Entry {
        at: SimTime,
        class: i8,
        lib: u16,
        global: usize,
        record: RequestRecord,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for (p, (rep, glob)) in reports.iter().zip(globals.iter()).enumerate() {
        for rec in &rep.records {
            let Some(&g) = glob.get(rec.request) else {
                continue;
            };
            let Some(a) = agg.get(g) else {
                continue;
            };
            if lost.contains(&g) || a.lib as usize != p {
                continue;
            }
            let empty = draws
                .get(g)
                .and_then(|&(_, rank)| catalog.get(rank))
                .is_none_or(Vec::is_empty);
            entries.push(Entry {
                at: a.finish,
                class: if empty { -1 } else { 0 },
                lib: if empty { 0 } else { a.lib },
                global: g,
                record: RequestRecord {
                    request: g,
                    arrival: a.arrival,
                    first_start: a.first_start,
                    finish: a.finish,
                },
            });
        }
    }
    entries.sort_by(|x, y| {
        (x.at, x.class, x.lib).cmp(&(y.at, y.class, y.lib)).then(
            if x.class == -1 && y.class == -1 {
                // Same-instant empty arrivals push records in submission
                // order (their Arrive events tie-break by sequence).
                x.global.cmp(&y.global)
            } else {
                std::cmp::Ordering::Equal
            },
        )
    });

    let mut metrics = SchedMetrics::new(n_drives as u32);
    for e in &entries {
        metrics.record(&e.record);
        if clock.degraded_at(e.record.arrival) {
            metrics.record_degraded_sojourn(&e.record);
        }
    }

    // Busy time is a float fold in event order: k-way merge the keyed
    // deltas (stable, so same-key deltas — same-library, already locally
    // ordered — keep their order) and replay the fold.
    let mut busy_ops: Vec<(OpKey, SimTime)> = Vec::new();
    for rep in &reports {
        if let Some(ops) = &rep.merge {
            busy_ops.extend_from_slice(&ops.busy);
        }
    }
    busy_ops.sort_by_key(|&(key, _)| key);
    let mut busy = SimTime::ZERO;
    for &(_, delta) in &busy_ops {
        busy += delta;
    }
    metrics.add_busy_time(busy);

    let mut mounts = 0u64;
    let mut events = 0u64;
    let mut retries = 0u64;
    let mut failovers = 0u64;
    let mut end = SimTime::ZERO;
    let mut audit_reports = Vec::new();
    for rep in reports {
        mounts += rep.outcome.metrics.mounts();
        events += rep.outcome.metrics.events();
        retries += rep.outcome.metrics.retries();
        failovers += rep.outcome.metrics.failovers();
        end = end.max(rep.end);
        audit_reports.extend(rep.outcome.reports);
    }
    metrics.add_mounts(mounts);
    // Arrivals fanned out to several partitions dispatch one Arrive
    // event each; the monolithic engine dispatches exactly one.
    metrics.set_events(events - (total_subs - draws.len()) as u64);
    metrics.add_retries(retries);
    metrics.add_failovers(failovers);
    metrics.add_lost(lost.len() as u64);

    // The monolithic gear audits the whole interleaved trace and emits
    // ONE report; the partitions audit their sub-traces, which partition
    // that trace exactly (lockstep + owned prologue). Every counter is
    // an order-free sum over the entries, so folding the per-library
    // reports reproduces the monolithic report verbatim; violations
    // (never expected) concatenate in library order.
    let audit_reports = if audit_reports.is_empty() {
        audit_reports
    } else {
        let merged = audit_reports
            .into_iter()
            .fold(AuditReport::default(), |mut acc, r| {
                acc.entries += r.entries;
                acc.jobs += r.jobs;
                acc.transfers += r.transfers;
                acc.exchanges += r.exchanges;
                acc.faults += r.faults;
                acc.losses += r.losses;
                acc.failovers += r.failovers;
                acc.violations.extend(r.violations);
                acc
            });
        vec![merged]
    };

    let first = draws.first().map_or(SimTime::ZERO, |&(at, _)| at);
    metrics.set_horizon_time(end.saturating_sub(first));
    if !clock.is_zero() {
        // Availability over the full fleet and the global span — the
        // monolithic formula verbatim.
        let span = end.saturating_sub(first);
        let mut healthy = SimTime::ZERO;
        for drive in 0..n_drives {
            let alive_until = clock.drive_fail_at(drive).min(end).max(first);
            healthy += alive_until.saturating_sub(first);
        }
        metrics.set_availability(healthy, span);
    }

    SchedOutcome {
        metrics,
        reports: audit_reports,
        budget: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchByTape, Fcfs, PolicyKind, SltfTape};
    use tapesim_faults::FaultSpec;
    use tapesim_model::specs::{paper_table1, paper_table1_with_libraries};
    use tapesim_model::Bytes;
    use tapesim_placement::{ParallelBatchPlacement, PlacementPolicy};
    use tapesim_workload::{ArrivalSpec, ObjectSizeSpec, RequestSpec, WorkloadSpec};

    /// The engine tests' heavy fixture: the working set overflows the
    /// initially mounted capacity, so runs exchange tapes across all
    /// three of `paper_table1`'s libraries.
    fn heavy_setup() -> (Simulator, Workload) {
        let w = WorkloadSpec {
            objects: 4_000,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(8)),
            requests: RequestSpec {
                count: 60,
                min_objects: 30,
                max_objects: 50,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 17,
        }
        .generate();
        let cfg = paper_table1();
        let p = ParallelBatchPlacement::with_m(4).place(&w, &cfg).unwrap();
        (Simulator::with_natural_policy(p, 4), w)
    }

    fn spec(seed: u64) -> ArrivalSpec {
        ArrivalSpec {
            per_hour: 40.0,
            seed,
        }
    }

    /// Bitwise equality on everything a [`SchedOutcome`] carries. Audit
    /// reports are compared by their *summed* entry counts (the golden
    /// wall's view): the monolithic engine emits one report where the
    /// partitioned run emits one per library, but the concatenation must
    /// cover exactly the same trace.
    fn assert_identical(par: &SchedOutcome, mono: &SchedOutcome) {
        let (p, m) = (&par.metrics, &mono.metrics);
        assert_eq!(p.served(), m.served());
        assert_eq!(p.mounts(), m.mounts());
        assert_eq!(p.events(), m.events());
        assert_eq!(p.lost(), m.lost());
        assert_eq!(p.retries(), m.retries());
        assert_eq!(p.failovers(), m.failovers());
        assert_eq!(p.degraded_served(), m.degraded_served());
        assert_eq!(p.avg_wait().to_bits(), m.avg_wait().to_bits());
        assert_eq!(p.avg_service().to_bits(), m.avg_service().to_bits());
        assert_eq!(p.avg_sojourn().to_bits(), m.avg_sojourn().to_bits());
        assert_eq!(p.utilisation().to_bits(), m.utilisation().to_bits());
        assert_eq!(p.availability().to_bits(), m.availability().to_bits());
        for pct in [0.5, 0.95, 0.99] {
            assert_eq!(
                p.wait_percentile(pct).to_bits(),
                m.wait_percentile(pct).to_bits()
            );
            assert_eq!(
                p.sojourn_percentile(pct).to_bits(),
                m.sojourn_percentile(pct).to_bits()
            );
            assert_eq!(
                p.degraded_sojourn_percentile(pct).to_bits(),
                m.degraded_sojourn_percentile(pct).to_bits()
            );
        }
        // The per-request sojourn vector must match element for element:
        // records were re-emitted in monolithic completion order.
        let pv = p.sojourn_seconds();
        let mv = m.sojourn_seconds();
        assert_eq!(pv.len(), mv.len());
        for (i, (a, b)) in pv.iter().zip(mv.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sojourn[{i}] differs");
        }
        assert_eq!(par.is_clean(), mono.is_clean());
        // The folded per-library audit must equal the monolithic audit
        // verbatim — same shape (one report), same counts over the
        // whole trace, no violations on either side.
        assert_eq!(par.reports, mono.reports, "audit reports diverge");
    }

    #[test]
    fn parallel_matches_monolithic_bit_for_bit() {
        for policy in [&BatchByTape as &dyn SchedPolicy, &SltfTape] {
            let cfg = SchedConfig::new(spec(11), 40).with_audit(true);
            let (mut mono_sim, w) = heavy_setup();
            let mono =
                run_scheduled_parallel(&mut mono_sim, &w, policy, &cfg, &ParallelConfig::off());
            let (mut par_sim, _) = heavy_setup();
            let par = run_scheduled_parallel(&mut par_sim, &w, policy, &cfg, &ParallelConfig::on());
            assert_identical(&par, &mono);
        }
    }

    #[test]
    fn thread_and_window_counts_never_change_the_bits() {
        let cfg = SchedConfig::new(spec(23), 32).with_audit(true);
        let (mut mono_sim, w) = heavy_setup();
        let mono = run_scheduled_parallel(
            &mut mono_sim,
            &w,
            &BatchByTape,
            &cfg,
            &ParallelConfig::off(),
        );
        for threads in [1, 2, 8] {
            for window in [1, 7, 64] {
                let par_cfg = ParallelConfig::on()
                    .with_threads(threads)
                    .with_window(window);
                let (mut sim, _) = heavy_setup();
                let par = run_scheduled_parallel(&mut sim, &w, &BatchByTape, &cfg, &par_cfg);
                assert_identical(&par, &mono);
            }
        }
    }

    #[test]
    fn faulty_parallel_matches_monolithic_bit_for_bit() {
        let plan = FaultPlan::generate(&FaultSpec::moderate(29), &paper_table1());
        let alternates = BTreeMap::new();
        for policy in [&BatchByTape as &dyn SchedPolicy, &SltfTape] {
            let cfg = SchedConfig::new(spec(7), 40).with_audit(true);
            let (mut mono_sim, w) = heavy_setup();
            let mono = run_scheduled_faulty_parallel(
                &mut mono_sim,
                &w,
                policy,
                &cfg,
                &plan,
                &alternates,
                &ParallelConfig::off(),
            );
            let (mut par_sim, _) = heavy_setup();
            let par = run_scheduled_faulty_parallel(
                &mut par_sim,
                &w,
                policy,
                &cfg,
                &plan,
                &alternates,
                &ParallelConfig::on().with_threads(3),
            );
            assert_identical(&par, &mono);
        }
    }

    /// Satellite 4's invariant, asserted on the engine's own trace: no
    /// partition ever executes an event at or above a window barrier.
    #[test]
    fn no_partition_executes_at_or_above_a_barrier() {
        let cfg = SchedConfig::new(spec(5), 48).with_audit(true);
        let (sim, w) = heavy_setup();
        let plan = FaultPlan::zero(sim.placement().config());
        let alternates = BTreeMap::new();
        let (_, trace) = run_partitioned(
            &sim,
            &w,
            &BatchByTape,
            &cfg,
            &plan,
            &alternates,
            &ParallelConfig::on().with_threads(2).with_window(4),
        )
        .expect("three-library fixture must be eligible");
        assert!(!trace.rounds.is_empty(), "windowed run recorded no rounds");
        assert!(
            trace.is_conservative(),
            "a partition clock reached a window barrier"
        );
    }

    #[test]
    fn ineligible_runs_fall_back_to_the_monolithic_gear() {
        let cfg = SchedConfig::new(spec(3), 16);
        let (sim, w) = heavy_setup();
        let plan = FaultPlan::zero(sim.placement().config());
        let alternates = BTreeMap::new();
        let on = ParallelConfig::on();

        // Disabled switch.
        assert!(run_partitioned(
            &sim,
            &w,
            &BatchByTape,
            &cfg,
            &plan,
            &alternates,
            &ParallelConfig::off()
        )
        .is_none());
        // Sequential (FCFS baseline) policy.
        assert!(run_partitioned(&sim, &w, &Fcfs, &cfg, &plan, &alternates, &on).is_none());
        // Span accounting on: one global budget cannot be partitioned.
        assert!(run_partitioned(
            &sim,
            &w,
            &BatchByTape,
            &cfg.with_obs(true),
            &plan,
            &alternates,
            &on
        )
        .is_none());
        // Faults combined with replica alternates may re-home work.
        let faulty = FaultPlan::generate(&FaultSpec::moderate(1), sim.placement().config());
        let mut alts = BTreeMap::new();
        alts.insert(ObjectId(0), vec![ObjectId(1)]);
        assert!(run_partitioned(&sim, &w, &BatchByTape, &cfg, &faulty, &alts, &on).is_none());

        // Single-library systems have nothing to partition.
        let single = paper_table1_with_libraries(1);
        let w1 = WorkloadSpec {
            objects: 400,
            sizes: ObjectSizeSpec::default().calibrated(Bytes::gb(2)),
            requests: RequestSpec {
                count: 20,
                min_objects: 5,
                max_objects: 12,
                count_shape: 1.0,
                alpha: 0.3,
            },
            seed: 9,
        }
        .generate();
        let p1 = ParallelBatchPlacement::with_m(4)
            .place(&w1, &single)
            .unwrap();
        let sim1 = Simulator::with_natural_policy(p1, 4);
        let plan1 = FaultPlan::zero(sim1.placement().config());
        assert!(
            run_partitioned(&sim1, &w1, &BatchByTape, &cfg, &plan1, &alternates, &on).is_none()
        );
    }

    /// The fallback still *serves* the run: parallel entry + ineligible
    /// shape produces the monolithic answer, not a panic or an empty
    /// outcome — for every policy, including the sequential baseline.
    #[test]
    fn fallback_outcomes_match_the_plain_entry_points() {
        let cfg = SchedConfig::new(spec(13), 12).with_audit(true);
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            let (mut a, w) = heavy_setup();
            let base =
                run_scheduled_parallel(&mut a, &w, policy.as_ref(), &cfg, &ParallelConfig::off());
            let (mut b, _) = heavy_setup();
            let obs_cfg = cfg.with_obs(false);
            let via = run_scheduled_parallel(
                &mut b,
                &w,
                policy.as_ref(),
                &obs_cfg,
                &ParallelConfig::on().with_threads(1),
            );
            assert_identical(&via, &base);
        }
    }
}
