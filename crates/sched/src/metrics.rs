//! Per-request scheduling metrics with percentiles.
//!
//! [`SchedMetrics`] extends the legacy `sim::queue::QueueMetrics` shape
//! (mean wait/service/sojourn, utilisation, served count) with retained
//! samples for percentile queries and scheduler-level counters (mounts,
//! events processed). The FCFS regression baseline requires the Welford
//! accumulators to be fed in exactly the legacy push order — see
//! [`SchedMetrics::record_seconds`].

use serde::{Deserialize, Serialize};
use tapesim_des::stats::{Samples, Welford};
use tapesim_des::SimTime;

/// One served request: its arrival, first service instant and completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Submission index of the request within its run (the `i` of the
    /// `i`-th accepted arrival). Lets external collectors — the serve
    /// runtime's shard join — map a record back to the request it
    /// answers; purely an identifier, never part of the metric bits.
    pub request: usize,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the first byte of the request started streaming.
    pub first_start: SimTime,
    /// When the last job of the request completed.
    pub finish: SimTime,
}

impl RequestRecord {
    /// Seconds from arrival to first service — the metrics-boundary
    /// conversion external aggregators (registries, histograms) consume.
    pub fn wait_secs(&self) -> f64 {
        (self.first_start - self.arrival).as_secs()
    }

    /// Seconds from arrival to completion.
    pub fn sojourn_secs(&self) -> f64 {
        (self.finish - self.arrival).as_secs()
    }
}

/// Aggregated per-request metrics of one scheduled run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchedMetrics {
    wait: Welford,
    service: Welford,
    sojourn: Welford,
    wait_samples: Samples,
    sojourn_samples: Samples,
    mounts: u64,
    busy: f64,
    horizon: f64,
    servers: u32,
    events: u64,
    retries: u64,
    failovers: u64,
    lost: u64,
    availability: f64,
    degraded_samples: Samples,
}

impl SchedMetrics {
    /// Empty metrics for a run on `servers` concurrently-serving drives.
    /// A fault-free run never degrades, so availability starts at 1.
    pub fn new(servers: u32) -> SchedMetrics {
        SchedMetrics {
            servers,
            availability: 1.0,
            ..SchedMetrics::default()
        }
    }

    /// Records one served request from its timeline.
    ///
    /// Public so external record collectors (the serve runtime's merge of
    /// per-shard records) can rebuild the exact per-request accumulator
    /// state: feeding the same records in the same order reproduces a
    /// batch run's Welford/percentile bits.
    pub fn record(&mut self, r: &RequestRecord) {
        let wait = (r.first_start - r.arrival).as_secs();
        let sojourn = (r.finish - r.arrival).as_secs();
        self.record_seconds(wait, sojourn - wait, sojourn);
    }

    /// Records one served request from pre-computed seconds. The push
    /// order (wait, service, sojourn) matches the legacy queue loop so
    /// FCFS reproduces its Welford state bit for bit.
    pub(crate) fn record_seconds(&mut self, wait: f64, service: f64, sojourn: f64) {
        self.wait.push(wait);
        self.service.push(service);
        self.sojourn.push(sojourn);
        self.wait_samples.push(wait);
        self.sojourn_samples.push(sojourn);
    }

    pub(crate) fn add_mounts(&mut self, n: u64) {
        self.mounts += n;
    }

    pub(crate) fn add_busy(&mut self, seconds: f64) {
        self.busy += seconds;
    }

    pub(crate) fn add_busy_time(&mut self, time: SimTime) {
        self.busy += time.as_secs();
    }

    pub(crate) fn set_horizon(&mut self, seconds: f64) {
        self.horizon = seconds;
    }

    pub(crate) fn set_horizon_time(&mut self, time: SimTime) {
        self.horizon = time.as_secs();
    }

    pub(crate) fn set_events(&mut self, events: u64) {
        self.events = events;
    }

    pub(crate) fn add_retries(&mut self, n: u64) {
        self.retries += n;
    }

    pub(crate) fn add_failovers(&mut self, n: u64) {
        self.failovers += n;
    }

    pub(crate) fn add_lost(&mut self, n: u64) {
        self.lost += n;
    }

    /// Records the sojourn of a request that arrived while the system
    /// was degraded (a drive dead or a robot jammed). Public for the same
    /// reason as [`SchedMetrics::record`]: external collectors replay the
    /// engine's exact recording sequence.
    pub fn record_degraded_sojourn(&mut self, r: &RequestRecord) {
        self.degraded_samples.push((r.finish - r.arrival).as_secs());
    }

    /// Sets availability from per-drive healthy time: the sum over drives
    /// of the time each was alive inside the run span, over
    /// `servers × span`. 1.0 when nothing failed.
    pub(crate) fn set_availability(&mut self, healthy: SimTime, span: SimTime) {
        let denom = span.as_secs() * self.servers.max(1) as f64;
        self.availability = if denom <= 0.0 {
            1.0
        } else {
            (healthy.as_secs() / denom).clamp(0.0, 1.0)
        };
    }

    /// Folds another run's scheduler-level counters into `self`: mounts,
    /// busy time, events, retries, failovers and losses add; the horizon
    /// keeps the maximum (shards share one virtual time axis); the
    /// availability keeps the minimum (the merged fleet is no healthier
    /// than its least-healthy shard). The per-request accumulators are
    /// *not* touched — rebuild those with [`SchedMetrics::record`] in a
    /// deterministic record order.
    pub fn merge_counters(&mut self, other: &SchedMetrics) {
        self.mounts += other.mounts;
        self.busy += other.busy;
        self.horizon = self.horizon.max(other.horizon);
        self.events += other.events;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.lost += other.lost;
        self.availability = self.availability.min(other.availability);
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.sojourn.count()
    }

    /// Mean time from arrival to first service, seconds.
    pub fn avg_wait(&self) -> f64 {
        self.wait.mean()
    }

    /// Mean service time (sojourn minus wait), seconds.
    pub fn avg_service(&self) -> f64 {
        self.service.mean()
    }

    /// Mean time from arrival to completion, seconds.
    pub fn avg_sojourn(&self) -> f64 {
        self.sojourn.mean()
    }

    /// The `p`-th percentile of per-request wait, seconds.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        self.wait_samples.percentile(p)
    }

    /// The `p`-th percentile of per-request sojourn, seconds.
    pub fn sojourn_percentile(&self, p: f64) -> f64 {
        self.sojourn_samples.percentile(p)
    }

    /// Raw per-request sojourn samples in recording order, for feeding
    /// external aggregators (registries, histograms).
    pub fn sojourn_seconds(&self) -> &[f64] {
        self.sojourn_samples.values()
    }

    /// Tape mounts (exchanges) performed over the run.
    pub fn mounts(&self) -> u64 {
        self.mounts
    }

    /// DES events processed. The concurrent gear counts its own event
    /// loop; the sequential FCFS gear sums the per-request engine's
    /// events across all served requests.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total read retries burned over the run.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Jobs that failed over to a replica copy.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Requests terminally lost (retries exhausted with no replica, or
    /// stranded by dead drives).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Fraction of drive-hours the fleet was alive over the run span
    /// (1.0 when no drive failed).
    pub fn availability(&self) -> f64 {
        self.availability
    }

    /// Requests that arrived while the system was degraded.
    pub fn degraded_served(&self) -> u64 {
        self.degraded_samples.len() as u64
    }

    /// The `p`-th percentile of sojourn among requests that arrived while
    /// the system was degraded, seconds (0 if none did).
    pub fn degraded_sojourn_percentile(&self, p: f64) -> f64 {
        self.degraded_samples.percentile(p)
    }

    /// Aggregate drive busy time over the run span, normalised by server
    /// count: `busy / (horizon × servers)`. With one server this is the
    /// legacy queue's utilisation expression exactly.
    pub fn utilisation(&self) -> f64 {
        if self.horizon <= 0.0 {
            0.0
        } else {
            self.busy / (self.horizon * self.servers.max(1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn record_decomposes_timeline() {
        let mut m = SchedMetrics::new(1);
        m.record(&RequestRecord {
            request: 0,
            arrival: t(10.0),
            first_start: t(15.0),
            finish: t(40.0),
        });
        assert_eq!(m.served(), 1);
        assert!((m.avg_wait() - 5.0).abs() < 1e-12);
        assert!((m.avg_service() - 25.0).abs() < 1e-12);
        assert!((m.avg_sojourn() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_come_from_samples() {
        let mut m = SchedMetrics::new(2);
        for (w, s) in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)] {
            m.record_seconds(w, s - w, s);
        }
        assert_eq!(m.wait_percentile(50.0), 2.0);
        assert_eq!(m.sojourn_percentile(100.0), 30.0);
    }

    #[test]
    fn fault_counters_and_availability() {
        let mut m = SchedMetrics::new(4);
        assert_eq!(m.availability(), 1.0, "fault-free default");
        assert_eq!((m.retries(), m.failovers(), m.lost()), (0, 0, 0));

        m.add_retries(3);
        m.add_failovers(1);
        m.add_lost(2);
        assert_eq!((m.retries(), m.failovers(), m.lost()), (3, 1, 2));

        // One of four drives dead for half the span: 7/8 availability.
        m.set_availability(t(350.0), t(100.0));
        assert!((m.availability() - 0.875).abs() < 1e-12);
        // Degenerate span: defined as fully available.
        m.set_availability(SimTime::ZERO, SimTime::ZERO);
        assert_eq!(m.availability(), 1.0);

        m.record_degraded_sojourn(&RequestRecord {
            request: 0,
            arrival: t(0.0),
            first_start: t(5.0),
            finish: t(30.0),
        });
        assert_eq!(m.degraded_served(), 1);
        assert_eq!(m.degraded_sojourn_percentile(50.0), 30.0);
    }

    #[test]
    fn utilisation_normalises_by_servers() {
        let mut m = SchedMetrics::new(4);
        m.add_busy(100.0);
        m.set_horizon(50.0);
        assert!((m.utilisation() - 0.5).abs() < 1e-12);

        let empty = SchedMetrics::new(4);
        assert_eq!(empty.utilisation(), 0.0);
    }
}
